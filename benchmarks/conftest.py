"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artefact (figure, quantitative
claim, or Section V trend) and prints a paper-vs-measured table.  Run
with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="shrink sweep benchmark workloads so CI finishes in seconds",
    )


@pytest.fixture
def quick(request):
    """True when the run should use the scaled-down benchmark sizes."""
    return bool(request.config.getoption("--quick", default=False))


@pytest.fixture
def once(benchmark):
    """Run a scenario exactly once under the benchmark timer.

    Campaign simulations are deterministic and heavy; statistical
    repetition adds nothing, so a single timed round is the right
    measurement.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run


def show(table):
    """Print a comparison table (visible with -s)."""
    print(table)
