"""FIG3 — Figure 3: leveraging a Microsoft certificate to sign code.

The figure's flow: enterprise activates a TSLS with Microsoft ->
Microsoft issues a limited (license-verification-only) certificate ->
attackers exploit the flawed signing algorithm to forge a code-signing
certificate -> hosts accept attacker binaries as Microsoft-signed ->
advisory 2718704 (untrusted store) kills the vector.
"""

import pytest

from repro.certs import (
    ForgeryFailed,
    PkiWorld,
    TerminalServicesLicensingServer,
    forge_code_signing_certificate,
)
from repro.certs.certificate import KEY_USAGE_CODE_SIGNING
from repro.core import comparison_table
from repro.crypto import generate_keypair
from conftest import show


def _run():
    world = PkiWorld()
    tsls = TerminalServicesLicensingServer("Enterprise Corp")
    legit = tsls.activate(world.licensing_ca)           # flawed algorithm
    attacker_key = generate_keypair("fig3-attacker")
    rogue = forge_code_signing_certificate(legit, "MS", attacker_key.public)
    chain = [rogue] + world.licensing_chain_tail()

    store_before = world.make_trust_store()
    verdict_limited = store_before.verify_chain(
        [legit] + world.licensing_chain_tail(), usage=KEY_USAGE_CODE_SIGNING)
    verdict_forged = store_before.verify_chain(chain,
                                               usage=KEY_USAGE_CODE_SIGNING)

    store_after = world.make_trust_store()
    store_after.mark_untrusted(world.licensing_ca_cert)   # advisory 2718704
    verdict_after = store_after.verify_chain(chain,
                                             usage=KEY_USAGE_CODE_SIGNING)

    # The ablation leg: a fixed (sha256) licensing flow refuses outright.
    fixed_tsls = TerminalServicesLicensingServer("Fixed Corp")
    fixed_cert = fixed_tsls.activate(world.licensing_ca, algorithm="sha256")
    try:
        forge_code_signing_certificate(fixed_cert, "MS")
        fixed_resists = False
    except ForgeryFailed:
        fixed_resists = True

    return {
        "limited_cannot_sign_code": not verdict_limited,
        "forged_verifies": bool(verdict_forged),
        "advisory_blocks": not verdict_after,
        "fixed_resists": fixed_resists,
        "rogue_algorithm": rogue.signature_algorithm,
    }


def test_fig3_certificate_leveraging(once):
    result = once(_run)
    assert result["limited_cannot_sign_code"]
    assert result["forged_verifies"]
    assert result["advisory_blocks"]
    assert result["fixed_resists"]

    show(comparison_table("FIG3 - certificate leveraging (paper Fig. 3)", [
        ("TSLS certificate usable for code signing?",
         "no (limited use only)",
         "refused" if result["limited_cannot_sign_code"] else "accepted",
         result["limited_cannot_sign_code"]),
        ("forgery via flawed signing algorithm",
         "code signed 'by Microsoft'",
         "chain verifies (alg=%s)" % result["rogue_algorithm"],
         result["forged_verifies"]),
        ("advisory 2718704 (untrusted store)",
         "code signed by them invalid",
         "chain rejected" if result["advisory_blocks"] else "still valid",
         result["advisory_blocks"]),
        ("collision-resistant licensing chain (ablation)",
         "attack impossible",
         "ForgeryFailed raised" if result["fixed_resists"] else "forged anyway",
         result["fixed_resists"]),
    ]))
