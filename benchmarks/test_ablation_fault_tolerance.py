"""ABLATION — fault tolerance: exfil success vs C&C takedown fraction.

The fault-injection engine takes down a growing fraction of Flame's
domain fleet (defaults first — researchers sinkhole the domains found
in samples before the rest) and measures whether exfiltration still
succeeds with the failover stack (domain rotation + retry + USB
courier fallback) enabled vs disabled.  A separate scenario kills every
domain a client knows and shows the pending backlog still exits on a
USB stick via a newer deployment, exactly the §III.B courier channel.

Two runs with the same kernel seed must produce byte-identical traces:
fault schedules, packet-loss dice, and retry jitter all draw from
forked, labelled RNG streams.
"""

from repro import CampaignWorld, comparison_table
from repro.core import build_flame_infrastructure, build_office_lan
from repro.malware.flame import Flame, FlameConfig
from repro.sim import RetryPolicy
from repro.usb.drive import UsbDrive
from conftest import show

DAY = 86400.0
DOMAIN_COUNT = 40
SERVER_COUNT = 10
TAKEDOWN_FRACTIONS = (0.0, 0.25, 0.5, 0.75)

#: The disabled arm: no rotation, no backoff, no courier fallback.
_NO_FAILOVER = dict(rotate_domains=False, enable_usb_fallback=False,
                    retry_policy=RetryPolicy(max_attempts=1))


def _flame_config(failover):
    kwargs = {} if failover else dict(_NO_FAILOVER)
    return FlameConfig(enable_wu_mitm=False, enable_bluetooth=False,
                       beacon_interval=6 * 3600.0,
                       collect_interval=24 * 3600.0, **kwargs)


def _takedown_order(infra):
    """Defaults first, then the rest of the pool in seeded order."""
    pool = infra["pool"]
    defaults = list(infra["default_domains"])
    rng = pool._rng.fork("takedown-order")
    rest = rng.shuffle([d for d in pool.domains() if d not in defaults])
    return defaults + rest


def _rotation_run(seed, fraction, failover):
    """One campaign: warm up, take down ``fraction`` of domains, measure."""
    world = CampaignWorld(seed=seed)
    kernel = world.kernel
    infra = build_flame_infrastructure(world, domain_count=DOMAIN_COUNT,
                                       server_count=SERVER_COUNT)
    lan, hosts = build_office_lan(world, "office", host_count=2,
                                  docs_per_host=4, microphone_fraction=0.0,
                                  bluetooth_fraction=0.0)
    flame = Flame(kernel, world.pki,
                  default_domains=infra["default_domains"],
                  coordinator_public_key=infra["center"].coordinator_public_key,
                  config=_flame_config(failover))
    flame.infect(hosts[0], via="initial")
    kernel.run_for(2.0 * DAY)  # healthy warm-up: contact + learn rotation
    uploaded_before = flame.stats["entries_uploaded"]

    doomed = _takedown_order(infra)
    count = int(round(fraction * DOMAIN_COUNT))
    kernel.faults.inject_takedown_campaign(doomed[:count],
                                           start=kernel.now, interval=600.0)
    kernel.run_for(8.0 * DAY)

    uploaded_after = flame.stats["entries_uploaded"] - uploaded_before
    pending = len(flame._states[hosts[0].hostname].pending_entries)
    return {
        "world": world,
        "warmed_up": uploaded_before > 0,
        "uploaded_after_takedown": uploaded_after,
        "pending": pending,
        "success_rate": (uploaded_after / float(uploaded_after + pending)
                         if (uploaded_after + pending) else 0.0),
    }


def _usb_fallback_run(seed, failover):
    """Kill every domain one deployment knows; measure the courier path.

    A second, newer deployment on another LAN ships the pool's last five
    domains — the ones the takedown spares — so the stick that collects
    the dead client's backlog can flush through a live C&C.
    """
    world = CampaignWorld(seed=seed)
    kernel = world.kernel
    infra = build_flame_infrastructure(world, domain_count=DOMAIN_COUNT,
                                       server_count=SERVER_COUNT)
    lan_a, hosts_a = build_office_lan(world, "cutoff", host_count=1,
                                      docs_per_host=4, microphone_fraction=0.0,
                                      bluetooth_fraction=0.0)
    lan_b, hosts_b = build_office_lan(world, "fresh", host_count=1,
                                      docs_per_host=4, microphone_fraction=0.0,
                                      bluetooth_fraction=0.0)
    victim, carrier = hosts_a[0], hosts_b[0]
    pool_domains = infra["pool"].domains()
    key = infra["center"].coordinator_public_key
    flame_old = Flame(kernel, world.pki,
                      default_domains=infra["default_domains"],
                      coordinator_public_key=key,
                      config=_flame_config(failover))
    flame_new = Flame(kernel, world.pki, default_domains=pool_domains[-5:],
                      coordinator_public_key=key,
                      config=_flame_config(True))
    flame_old.infect(victim, via="initial")
    flame_new.infect(carrier, via="initial")
    kernel.run_for(2.0 * DAY)

    # Everything except the newer build's five domains goes dark.
    kernel.faults.inject_takedown_campaign(pool_domains[:-5],
                                           start=kernel.now, interval=300.0)
    kernel.run_for(3.0 * DAY)  # retries exhaust; backlog accumulates

    stick = UsbDrive("courier")
    victim.insert_usb(stick)
    victim.remove_usb(stick)
    carrier.insert_usb(stick)
    kernel.run_for(1.0 * DAY)
    return {
        "cnc_unreachable": flame_old._states[victim.hostname].cnc_unreachable,
        "fallback_entries": flame_old.stats["fallback_entries"],
        "couriered_out": flame_new.stats["courier_documents"],
    }


def _run(seed=23):
    rotation = {}
    for fraction in TAKEDOWN_FRACTIONS:
        rotation[fraction] = {
            "on": _rotation_run(seed, fraction, failover=True),
            "off": _rotation_run(seed, fraction, failover=False),
        }
    usb = {
        "on": _usb_fallback_run(seed, failover=True),
        "off": _usb_fallback_run(seed, failover=False),
    }
    return {"rotation": rotation, "usb": usb}


def test_ablation_fault_tolerance(once):
    results = once(_run)
    rotation, usb = results["rotation"], results["usb"]

    for fraction in TAKEDOWN_FRACTIONS:
        for arm in ("on", "off"):
            assert rotation[fraction][arm]["warmed_up"]
    # With nothing taken down both arms keep exfiltrating.
    assert rotation[0.0]["on"]["uploaded_after_takedown"] > 0
    assert rotation[0.0]["off"]["uploaded_after_takedown"] > 0
    # Acceptance: at 50% takedown the failover stack keeps exfil alive;
    # the pinned/no-retry client is dead (its domain fell in the first
    # wave) and its backlog just grows.
    assert rotation[0.5]["on"]["uploaded_after_takedown"] > 0
    assert rotation[0.5]["off"]["uploaded_after_takedown"] == 0
    assert rotation[0.5]["off"]["pending"] > 0
    # Failover never does worse than the disabled arm at any fraction.
    for fraction in TAKEDOWN_FRACTIONS:
        assert (rotation[fraction]["on"]["success_rate"]
                >= rotation[fraction]["off"]["success_rate"])

    # Total blackout: the backlog walks out on the stick — but only with
    # the fallback enabled.
    assert usb["on"]["cnc_unreachable"]
    assert usb["on"]["fallback_entries"] > 0
    assert usb["on"]["couriered_out"] > 0
    assert usb["off"]["fallback_entries"] == 0
    assert usb["off"]["couriered_out"] == 0

    rows = []
    for fraction in TAKEDOWN_FRACTIONS:
        on, off = rotation[fraction]["on"], rotation[fraction]["off"]
        rows.append((
            "takedown %d%% of %d domains" % (int(fraction * 100),
                                             DOMAIN_COUNT),
            "survives via rotation+retry" if fraction else "baseline",
            "failover on: %.0f%% exfil / off: %.0f%%"
            % (100 * on["success_rate"], 100 * off["success_rate"]),
            True,
        ))
    rows.append((
        "all known domains dead",
        "USB hidden-db courier (III.B)",
        "%d entries couriered out via stick" % usb["on"]["couriered_out"],
        True,
    ))
    show(comparison_table("ABLATION - fault tolerance vs takedown", rows))


def test_fault_tolerance_trace_determinism():
    """Same seed, same scenario => byte-identical event traces."""
    run_a = _rotation_run(seed=23, fraction=0.5, failover=True)
    run_b = _rotation_run(seed=23, fraction=0.5, failover=True)
    trace_a = run_a["world"].kernel.trace.dump()
    trace_b = run_b["world"].kernel.trace.dump()
    assert trace_a.encode("utf-8") == trace_b.encode("utf-8")
    assert (run_a["world"].kernel.faults.schedule()
            == run_b["world"].kernel.faults.schedule())
