"""EXT-GAUSS — the Godel payload: targeting by cryptography.

§I introduces Gauss as a Flame-factory data stealer; its encrypted
payload (which analysts never managed to decrypt for want of the right
victim configuration) is the strongest form of the paper's §V.B
targeting trend.  The experiment infects a mixed population; the
warhead decrypts on exactly the machines matching the sealed
configuration and yields ciphertext noise everywhere else, while the
banking-stealer half collects from everyone.
"""

from repro import CampaignWorld, comparison_table
from repro.malware.gauss import Gauss, GaussConfig, derive_godel_key
from repro.malware.gauss.gauss import seal_godel_payload
from conftest import show

POPULATION = 40
TARGETS = 2


def _run():
    world = CampaignWorld(seed=40, with_internet=False)
    rng = world.kernel.rng.fork("gauss-pop")
    hosts = []
    for index in range(POPULATION):
        host = world.make_host("PC-%03d" % index)
        host.banking_credentials = [
            {"bank": "bank-%d" % rng.randint(0, 3), "user": "u%d" % index}
        ]
        # Varied configurations: different software stacks per host.
        for package in rng.sample(["office", "autocad", "sap", "ie",
                                   "matlab", "scada-view"],
                                  rng.randint(0, 3)):
            host.installed_software.add(package)
        hosts.append(host)
    # The two intended targets share the exact special configuration
    # (the key is derived from the *whole* software stack, so the
    # attacker seals against one precise build image).
    for host in hosts[:TARGETS]:
        host.installed_software.clear()
        host.installed_software.add("step7")
        host.vfs.write("c:\\program files\\targetapp\\app.exe", b"")

    warhead = seal_godel_payload(derive_godel_key(hosts[0]),
                                 b"stage-two logic")
    gauss = Gauss(world.kernel, world.pki,
                  GaussConfig(godel_ciphertext=warhead))
    for host in hosts:
        gauss.infect(host, via="usb-lnk")
    world.kernel.run_for(3 * 86400.0)
    return gauss, hosts


def test_ext_gauss_godel_targeting(once):
    gauss, hosts = once(_run)

    assert gauss.godel_attempts == POPULATION
    assert sorted(gauss.godel_detonations) == sorted(
        h.hostname for h in hosts[:TARGETS])
    # The stealer half is indiscriminate: credentials from everyone.
    assert gauss.total_credentials_stolen() == POPULATION
    precision = len(gauss.godel_detonations) / gauss.godel_attempts

    show(comparison_table("EXT-GAUSS - the Godel warhead (SI, SV.B)", [
        ("population infected", "banking-info stealing everywhere",
         "%d hosts, %d credential sets" % (POPULATION,
                                           gauss.total_credentials_stolen()),
         True),
        ("warhead decryption attempts", "on every infection",
         gauss.godel_attempts, gauss.godel_attempts == POPULATION),
        ("detonations", "only the sealed configuration",
         "%d (the %d intended targets)" % (len(gauss.godel_detonations),
                                           TARGETS),
         len(gauss.godel_detonations) == TARGETS),
        ("targeting precision", "analysts couldn't even decrypt it",
         "%.1f%% of infections" % (100 * precision), precision < 0.1),
    ]))
