"""EXT-DUQU — per-infection compilation vs byte-signature coverage.

§V.D: "Duqu malware used an extreme version of this feature as new
modules are compiled and built specifically for every new infection."
This extension experiment quantifies why that matters: a signature built
from any one captured sample detects exactly that one infection and no
other, while the same strategy against a monomorphic build (the
ablation) covers the whole fleet.
"""

from repro import CampaignWorld, comparison_table
from repro.analysis import Signature, SignatureEngine
from repro.malware.duqu import Duqu
from conftest import show

FLEET = 20


def _run():
    world = CampaignWorld(seed=36, with_internet=False)
    duqu = Duqu(world.kernel, world.pki)
    hosts = []
    for index in range(FLEET):
        host = world.make_host("TARGET-%02d" % index)
        duqu.spear_phish(host)
        hosts.append(host)

    # The vendor captures ONE sample (from the first victim) and builds
    # a byte rule from it.
    captured = hosts[0].vfs.read(
        hosts[0].system_dir + "\\netp191.pnf", raw=True)
    engine = SignatureEngine([
        Signature("duqu-captured-sample", "duqu",
                  byte_patterns=[captured[:128]]),
    ])
    detected_poly = sum(
        1 for host in hosts if engine.scan_host(host, raw=True))

    # Ablation: a monomorphic build (same bytes everywhere).
    mono_hosts = []
    mono_body = b"duqu monomorphic module body" * 100
    for index in range(FLEET):
        host = world.make_host("MONO-%02d" % index)
        host.vfs.write(host.system_dir + "\\netp191.pnf", mono_body,
                       origin="duqu")
        mono_hosts.append(host)
    mono_engine = SignatureEngine([
        Signature("duqu-mono-sample", "duqu",
                  byte_patterns=[mono_body[:128]]),
    ])
    detected_mono = sum(
        1 for host in mono_hosts if mono_engine.scan_host(host, raw=True))
    return duqu, detected_poly, detected_mono


def test_ext_duqu_per_infection_builds(once):
    duqu, detected_poly, detected_mono = once(_run)

    assert duqu.builds_are_unique()
    assert detected_poly == 1          # only the captured infection
    assert detected_mono == FLEET      # the whole monomorphic fleet

    show(comparison_table("EXT-DUQU - per-infection compilation (SV.D)", [
        ("unique builds across %d infections" % FLEET,
         "new modules per infection", "all distinct",
         duqu.builds_are_unique()),
        ("fleet coverage of a one-sample byte rule (Duqu)",
         "signatures cannot generalise",
         "%d/%d hosts" % (detected_poly, FLEET), detected_poly == 1),
        ("fleet coverage against a monomorphic build (ablation)",
         "n/a", "%d/%d hosts" % (detected_mono, FLEET),
         detected_mono == FLEET),
        ("the §V.B consequence", "no timely protection for targeted malware",
         "coverage ratio 1:%d" % FLEET, True),
    ]))
