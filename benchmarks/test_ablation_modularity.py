"""ABLATION — self-updating evasion vs a static build.

DESIGN.md design choice #3.  §V.D: Flame's continuously updated evasion
module "allowed Flame to remain undetected for a long period of time".
The ablation races two builds against the same AV vendor: a static build
whose on-disk bytes never change, and a modular build that re-obfuscates
its files whenever adventcfg sees AV scrutiny, resetting the vendor's
signature clock.  The measured output is days-until-stable-detection.
"""

from repro import CampaignWorld, comparison_table
from repro.analysis import AntivirusProduct, AvVendor
from conftest import show

DAYS = 120
VENDOR_LAG_DAYS = 10.0
REOBFUSCATE_EVERY_DAYS = 7.0
MARKER_PATH = "c:\\windows\\system32\\implant.ocx"


class _Implant:
    """A minimal self-updating implant for the race."""

    def __init__(self, host, modular):
        self.host = host
        self.modular = modular
        self.version = 1
        self._write()

    def _body(self):
        return b"implant body v%04d unique-marker" % self.version

    def _write(self):
        self.host.vfs.write(MARKER_PATH, self._body(), origin="implant")

    def maybe_update(self):
        """The attack center ships a re-obfuscated build."""
        if not self.modular:
            return
        self.version += 1
        self._write()


def _race(modular):
    world = CampaignWorld(seed=33, with_internet=False)
    kernel = world.kernel
    host = world.make_host("VICTIM-%s" % modular)
    implant = _Implant(host, modular=modular)
    vendor = AvVendor(kernel, response_days=VENDOR_LAG_DAYS)
    product = AntivirusProduct(kernel, host, vendor, scan_interval=86400.0)

    first_detection_day = None
    detection_days = 0
    for day in range(DAYS):
        kernel.run_for(86400.0)
        # The vendor constantly collects the *current* sample from the
        # field (honeypots, submissions) and queues a rule for it.
        vendor.submit_sample("implant",
                             host.vfs.read(MARKER_PATH, raw=True))
        detected_today = bool(
            vendor.engine.scan_host(host, at_time=kernel.clock.now))
        if detected_today:
            detection_days += 1
            if first_detection_day is None:
                first_detection_day = day
            implant.maybe_update()  # adventcfg reacts to the scrutiny
    return {
        "first_detection_day": first_detection_day,
        "detection_days": detection_days,
        "undetected_days": DAYS - detection_days,
        "versions_shipped": implant.version,
    }


def test_ablation_modular_evasion(once):
    static = _race(modular=False)
    modular = once(_race, modular=True)

    # Static: once the signature ships, it is detected forever.
    assert static["first_detection_day"] is not None
    assert static["detection_days"] > DAYS * 0.7
    # Modular: every detection triggers a re-obfuscation that resets the
    # vendor's clock, so detected days stay a small fraction.
    assert modular["undetected_days"] > static["undetected_days"]
    assert modular["detection_days"] < static["detection_days"] * 0.5
    assert modular["versions_shipped"] > 3

    show(comparison_table("ABLATION - self-updating evasion vs static build", [
        ("days undetected / %d (static build)" % DAYS, "baseline",
         static["undetected_days"], True),
        ("days undetected / %d (self-updating)" % DAYS,
         "years in the wild (SV.D)", modular["undetected_days"],
         modular["undetected_days"] > static["undetected_days"]),
        ("days flagged by AV", "static caught for good",
         "%d static vs %d modular" % (static["detection_days"],
                                      modular["detection_days"]),
         modular["detection_days"] < static["detection_days"]),
        ("module versions shipped", "continuous updates",
         modular["versions_shipped"], modular["versions_shipped"] > 3),
    ]))
