"""ABLATION — Stuxnet's PLC fingerprint vs an indiscriminate payload.

DESIGN.md design choice #2.  §II.C: "not any PLC will trigger Stuxnet
damaging payload" — only the Natanz drive-vendor configuration.  The
ablation runs the same malware against a mixed population of plants;
the targeted build damages exactly the fingerprint match, while the
indiscriminate build wrecks every plant it can reach, producing the
collateral (and detection surface) the real operators avoided.
"""

from repro import CampaignWorld, comparison_table
from repro.malware.stuxnet.plc_payload import PlcAttackPayload
from repro.plc import (
    CentrifugeCascade,
    FrequencyConverterDrive,
    ProfibusBus,
    ProgrammableLogicController,
    FARARO_PAYA,
    VACON,
)
from conftest import show

#: Plant configurations: one Natanz-like, the rest innocent bystanders.
PLANTS = [
    ("natanz", (FARARO_PAYA, VACON)),
    ("water-plant", (VACON, VACON)),
    ("factory-a", (FARARO_PAYA, FARARO_PAYA)),
    ("factory-b", ("Siemens", "Siemens")),
]


def _build_plants(world):
    plants = []
    for name, vendors in PLANTS:
        bus = ProfibusBus()
        for index, vendor in enumerate(vendors):
            cascade = CentrifugeCascade(
                "%s-%d" % (name, index), 50,
                rng=world.kernel.rng.fork("%s:%d" % (name, index)))
            bus.attach(FrequencyConverterDrive(
                "%s-drv-%d" % (name, index), vendor, cascade,
                world.kernel.clock))
        plc = ProgrammableLogicController(world.kernel, "PLC-%s" % name,
                                          bus).power_on()
        plants.append((name, plc, bus))
    return plants


def _attack(world, targeted):
    plants = _build_plants(world)
    world.kernel.run_for(3600.0)
    armed = []
    for name, plc, bus in plants:
        payload = PlcAttackPayload(world.kernel, plc, max_cycles=2,
                                   inter_attack_wait=86400.0)
        if payload.install(force=not targeted):
            armed.append(name)
    world.kernel.run_for(10 * 86400.0)
    damage = {}
    for name, plc, bus in plants:
        bus.sync_all()
        destroyed = sum(d.cascade.destroyed_count() for d in bus.devices())
        damage[name] = destroyed
    return armed, damage


def test_ablation_targeting_discipline(once):
    world_t = CampaignWorld(seed=31, with_internet=False)
    armed_t, damage_t = _attack(world_t, targeted=True)
    world_i = CampaignWorld(seed=31, with_internet=False)
    armed_i, damage_i = once(_attack, world_i, targeted=False)

    # Targeted: only the fingerprint match is attacked.
    assert armed_t == ["natanz"]
    assert damage_t["natanz"] > 0
    assert all(damage_t[name] == 0 for name in damage_t if name != "natanz")
    # Indiscriminate: every plant is armed; collateral damage everywhere
    # the operating band matches.
    assert len(armed_i) == len(PLANTS)
    collateral = sum(v for k, v in damage_i.items() if k != "natanz")
    assert collateral > 0

    show(comparison_table("ABLATION - targeted vs indiscriminate payload", [
        ("plants armed (targeted)", "only the Natanz configuration",
         ",".join(armed_t), armed_t == ["natanz"]),
        ("plants armed (indiscriminate)", "n/a (ablation)",
         "%d/%d plants" % (len(armed_i), len(PLANTS)), True),
        ("damage at the intended target", "centrifuges destroyed",
         "%d rotors (targeted) vs %d (indiscriminate)"
         % (damage_t["natanz"], damage_i["natanz"]), True),
        ("collateral damage", "none - stays under the radar (SV.B)",
         "0 rotors (targeted) vs %d rotors (indiscriminate)" % collateral,
         collateral > 0),
    ]))
