"""Sweep engine scaling: warm-pool parallel vs serial, identical results.

Runs the same quick Stuxnet ensemble through the serial path and the
warm worker pool, asserts the two paths produce bit-identical
per-replica measurements and trace digests, and writes the wall-time
comparison to ``BENCH_sweep.json`` at the repository root so CI can
track the perf trajectory across PRs.

Timing methodology mirrors ``test_perf_luavm.py``: interleaved
serial/parallel rounds, keeping each side's minimum, reporting the
ratio of minimums — the minimum of several rounds converges on the
true cost, and interleaving cancels machine-load drift.  One deliberate
difference: the luavm benchmark times ``process_time`` (CPU), but a
process pool does its work in *children*, which ``process_time`` never
sees — so this benchmark must time wall clock (``perf_counter``).

A warm-up round runs first, so the timed rounds measure the steady
state the warm pool exists for: spec already shipped, compile caches
hot, pool reused round after round (``pool_reused`` is asserted).

The >= 1.5x speedup floor is asserted with 2 workers wherever 2+ cores
are actually available (CI runners have 4); on a single effective core
a process pool is physically pure overhead and only the identity
guarantees and the benchmark artefact are checked.  ``--quick``
shrinks the replica count so CI finishes in seconds.
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.core.ensemble import CampaignSpec
from repro.sim.sweep import SweepConfig, run_sweep
from repro.sim.workerpool import pool_start_method

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"

#: Acceptance criterion: warm-pool parallel dispatch with 2 workers
#: must beat serial by at least this factor on the quick workload.
SPEEDUP_FLOOR = 1.5

#: Cores the floor needs to be meaningful: 2 workers want 2 cores.
MIN_CORES_FOR_SPEEDUP = 2

WORKERS = 2
BASE_SEED = 2013


def effective_cores():
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _interleaved_minimums(serial_fn, parallel_fn, rounds):
    """Alternate the two dispatch paths and keep each side's best
    wall time (children do the parallel work, so CPU time would lie)."""
    serial_times, parallel_times = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        serial_fn()
        serial_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        parallel_fn()
        parallel_times.append(time.perf_counter() - start)
    return min(serial_times), min(parallel_times)


def test_sweep_scaling_serial_vs_warm_pool(quick):
    replicas = 6 if quick else 16
    rounds = 3 if quick else 5
    cores = effective_cores()
    spec = CampaignSpec.quick("stuxnet")

    serial_config = SweepConfig(replicas=replicas, workers=1,
                                mode="serial", base_seed=BASE_SEED)
    # chunk_size=1 + fallback=False pins the pure pool path: no serial
    # probe inside the timed region, every replica through a worker.
    parallel_config = SweepConfig(replicas=replicas, workers=WORKERS,
                                  mode="parallel", base_seed=BASE_SEED,
                                  chunk_size=1, fallback=False)

    # Warm-up round: ships the spec, builds the shared pool, fills the
    # compile caches — and proves the engine's core guarantee before
    # any timing: the pool changes wall time, never results.
    serial = run_sweep(spec, serial_config)
    parallel = run_sweep(spec, parallel_config)
    assert serial.measurements() == parallel.measurements()
    assert serial.digests() == parallel.digests()
    assert [r.seed for r in serial.replicas] == \
        [r.seed for r in parallel.replicas]
    assert parallel.dispatch["path"] == "warm-pool"

    reused = []

    def timed_parallel():
        result = run_sweep(spec, parallel_config)
        reused.append(result.dispatch["pool_reused"])

    serial_s, parallel_s = _interleaved_minimums(
        lambda: run_sweep(spec, serial_config),
        timed_parallel,
        rounds,
    )
    # The steady state being measured is the *warm* pool: every timed
    # round must have reused the pool the warm-up round built.
    assert all(reused)

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    asserted = cores >= MIN_CORES_FOR_SPEEDUP
    payload = {
        "benchmark": "sweep-scaling",
        "campaign": "stuxnet",
        "quick": quick,
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count() or 1,
        "effective_cores": cores,
        "start_method": pool_start_method(),
        "replicas": replicas,
        "workers": WORKERS,
        "chunk_size": 1,
        "rounds": rounds,
        "pool_reused_every_round": all(reused),
        "serial_wall_seconds": serial_s,
        "parallel_wall_seconds": parallel_s,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": asserted,
        "identical_measurements": True,
        "mean_replica_wall_seconds": (
            sum(r.wall_seconds for r in serial.replicas) / replicas),
        "events_dispatched_total": (
            sum(r.events_dispatched for r in serial.replicas)),
    }
    # The artefact lands before the floor assertion on purpose: a slow
    # run must still leave the measurement for the CI upload to find.
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print("sweep scaling (%d replicas, %d effective cores, %s): "
          "serial %.2fs, warm-pool %.2fs with %d workers -> %.2fx"
          % (replicas, cores, pool_start_method(), serial_s, parallel_s,
             WORKERS, speedup))
    print("wrote %s" % BENCH_PATH)

    if asserted:
        assert speedup >= SPEEDUP_FLOOR, (
            "warm-pool sweep only %.2fx faster than serial on %d "
            "effective cores (floor: %.1fx)"
            % (speedup, cores, SPEEDUP_FLOOR))
