"""Sweep engine scaling: serial vs parallel wall time, identical results.

Runs the same 16-replica Stuxnet ensemble through the serial fallback
and the worker pool, asserts the two paths produce bit-identical
per-replica measurements and trace digests, and writes the wall-time
comparison to ``BENCH_sweep.json`` at the repository root so CI can
track the perf trajectory across PRs.

The >= 1.5x speedup assertion only applies on machines with at least
four cores (on fewer, a process pool is pure overhead and only the
identity guarantees are checked).  ``--quick`` shrinks the replica
count for CI smoke runs.
"""

import json
import os
import sys
from pathlib import Path

from repro.core.ensemble import CampaignSpec
from repro.sim.sweep import SweepConfig, run_sweep

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"

#: Cores below which the speedup assertion is vacuous (matches the
#: acceptance criterion: ">= 1.5x ... on >= 4 cores").
MIN_CORES_FOR_SPEEDUP = 4

SPEEDUP_FLOOR = 1.5


def test_sweep_scaling_serial_vs_parallel(quick):
    replicas = 6 if quick else 16
    cores = os.cpu_count() or 1
    workers = min(4, cores) if cores > 1 else 2
    spec = CampaignSpec.quick("stuxnet")

    serial = run_sweep(spec, SweepConfig(
        replicas=replicas, workers=1, mode="serial", base_seed=2013))
    parallel = run_sweep(spec, SweepConfig(
        replicas=replicas, workers=workers, mode="parallel", base_seed=2013))

    # The engine's core guarantee: the pool changes wall time, never
    # results.
    assert serial.measurements() == parallel.measurements()
    assert serial.digests() == parallel.digests()
    assert [r.seed for r in serial.replicas] == \
        [r.seed for r in parallel.replicas]

    speedup = (serial.wall_seconds / parallel.wall_seconds
               if parallel.wall_seconds else float("inf"))
    payload = {
        "benchmark": "sweep-scaling",
        "campaign": "stuxnet",
        "quick": quick,
        "python": sys.version.split()[0],
        "cpu_count": cores,
        "replicas": replicas,
        "workers": parallel.workers,
        "chunk_size": parallel.chunk_size,
        "serial_wall_seconds": serial.wall_seconds,
        "parallel_wall_seconds": parallel.wall_seconds,
        "speedup": speedup,
        "speedup_asserted": cores >= MIN_CORES_FOR_SPEEDUP,
        "identical_measurements": True,
        "mean_replica_wall_seconds": (
            sum(r.wall_seconds for r in serial.replicas) / replicas),
        "events_dispatched_total": (
            sum(r.events_dispatched for r in serial.replicas)),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print("sweep scaling (%d replicas, %d cores): serial %.2fs, "
          "parallel %.2fs with %d workers -> %.2fx"
          % (replicas, cores, serial.wall_seconds, parallel.wall_seconds,
             parallel.workers, speedup))
    print("wrote %s" % BENCH_PATH)

    if cores >= MIN_CORES_FOR_SPEEDUP:
        assert speedup >= SPEEDUP_FLOOR, (
            "parallel sweep only %.2fx faster than serial on %d cores "
            "(floor: %.1fx)" % (speedup, cores, SPEEDUP_FLOOR))
