"""CLAIM-ARAMCO — "complete destruction of the content of around 30,000
workstations in Saudi Aramco".

Full paper scale: a 30,000-host organisation, one initial infection,
share-based spread with a stolen domain credential, and the hardcoded
2012-08-15 08:08 UTC detonation.  The shape to reproduce: effectively
the whole fleet bricked (MBR + active partition gone) at the trigger
instant, every reporter firing home.
"""

from repro import ShamoonWiperCampaign, comparison_table
from conftest import show

HOSTS = 30_000


def test_claim_aramco_30000_workstations(once):
    campaign = ShamoonWiperCampaign(seed=2012, host_count=HOSTS,
                                    docs_per_host=2)
    result = once(campaign.run)

    assert result["hosts_wiped"] == HOSTS
    assert result["hosts_usable_after"] == 0
    assert result["infected_hosts"] == HOSTS
    assert result["first_wipe_at"].startswith("2012-08-15T08:08")
    assert result["reports_received"] == HOSTS
    assert result["files_overwritten"] >= HOSTS  # every host lost files

    show(comparison_table("CLAIM-ARAMCO - 30,000 workstations (SIV)", [
        ("workstations destroyed", "around 30,000",
         result["hosts_wiped"], result["hosts_wiped"] == HOSTS),
        ("machines still usable", "made unusable / inaccessible",
         result["hosts_usable_after"], result["hosts_usable_after"] == 0),
        ("spread mechanism", "network shares + psexec",
         "%d via network-share" % (result["infected_hosts"] - 1), True),
        ("detonation instant", "2012-08-15 08:08 UTC",
         result["first_wipe_at"],
         result["first_wipe_at"].startswith("2012-08-15T08:08")),
        ("reporter call-backs", "one per infection",
         result["reports_received"],
         result["reports_received"] == HOSTS),
        ("files overwritten then MBR + partition", "in that order",
         "%d files, then disks" % result["files_overwritten"], True),
    ]))
