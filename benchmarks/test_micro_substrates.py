"""Micro-benchmarks of the substrates themselves.

Not paper artefacts — these time the building blocks every experiment
rests on, so performance regressions in the kernel, the PE codec, the
Lua VM, or the sealing path show up here rather than as mysteriously
slow campaign benches.
"""

from repro.crypto import generate_keypair, seal, unseal
from repro.luavm import LuaVM
from repro.pe import PeBuilder, parse_pe
from repro.sim import Kernel
from repro.winsim import VirtualFileSystem

_KEYPAIR = generate_keypair("micro-bench")


def test_micro_kernel_event_throughput(benchmark):
    """Dispatch 10,000 chained events through the kernel."""

    def run():
        kernel = Kernel(seed=0)
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < 10_000:
                kernel.call_later(1.0, tick)

        kernel.call_later(1.0, tick)
        kernel.run()
        return state["count"]

    assert benchmark(run) == 10_000


def test_micro_pe_round_trip(benchmark):
    """Build + parse a resource-heavy 256 KiB image."""

    def run():
        builder = PeBuilder()
        builder.add_code_section(b"x" * 4096)
        for index in range(16):
            builder.add_encrypted_resource("RES%02d" % index,
                                           b"r" * 2048, b"\xba")
        image = builder.build(target_size=256 * 1024)
        return parse_pe(image)

    pe = benchmark(run)
    assert len(pe.resources) == 16


def test_micro_luavm_fibonacci(benchmark):
    """Interpret a recursive fib(18) — parser + call machinery."""
    vm = LuaVM()
    vm.run("""
    function fib(n)
      if n < 2 then return n end
      return fib(n - 1) + fib(n - 2)
    end
    """)
    assert benchmark(vm.call, "fib", 18) == 2584


def test_micro_seal_unseal_1mb(benchmark):
    """Seal + unseal a 1 MiB stolen document."""
    payload = b"\x42" * (1024 * 1024)

    def run():
        blob = seal(_KEYPAIR.public, payload, nonce=b"bench")
        return unseal(_KEYPAIR, blob)

    assert benchmark(run) == payload


def test_micro_vfs_walk_1000_files(benchmark):
    """Walk a 1,000-file tree through the rootkit-filter path."""
    vfs = VirtualFileSystem()
    for index in range(1000):
        vfs.write("c:\\users\\u%d\\documents\\f%04d.docx"
                  % (index % 10, index), b"x")
    vfs.hide_filters.append(lambda record: record.origin == "nothing")
    result = benchmark(vfs.walk, "c:\\users")
    assert len(result) == 1000
