"""Lua VM benchmarks: bytecode backend vs the tree-walking reference.

Two measurements, written together to ``BENCH_luavm.json`` at the
repository root so CI can track the perf trajectory across PRs:

1. **Module workload** — a full Flame replica lifecycle through
   ``FlameModuleManager``: load FLASK + JIMMY, run a ``collect``, scan
   a file batch, hot-swap JIMMY to v2 (§V.D self-updating modularity),
   scan again.  Run on both backends; the acceptance floor (bytecode
   >= 3x faster) is asserted here.
2. **Module load** — loading an already-compiled script into a fresh
   replica.  The tree walker re-parses per replica; the bytecode
   backend hits the process-wide compile cache keyed by source digest,
   so this is where sweeps with many replicas win big.

Timing methodology: this must stay meaningful on noisy shared boxes,
so each measurement interleaves tree/bytecode rounds, times them with
``time.process_time`` (CPU, not wall), and reports the ratio of
per-backend minimums.  The minimum of several rounds converges on the
true cost; a single wall-clock pair can swing 2x either way.

``--quick`` shrinks round/repetition counts so CI finishes in seconds.
"""

import json
import sys
import time
from pathlib import Path

from repro.luavm.compiler import clear_compile_cache, compile_cache_stats
from repro.luavm.interpreter import _to_lua
from repro.malware.flame.modules import FlameModuleManager
from repro.malware.flame.scripts import (
    FLASK_SOURCE,
    JIMMY_SOURCE,
    JIMMY_V2_SOURCE,
    warm_compile_cache,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_luavm.json"

#: Acceptance criterion: the bytecode backend must beat the tree walker
#: by at least this factor on the Flame module workload.
MODULE_WORKLOAD_FLOOR = 3.0

#: The per-replica load path (warm compile cache vs tree re-parse)
#: measures far higher (~20-30x); assert a conservative slice of it.
MODULE_LOAD_FLOOR = 5.0

#: Files per JIMMY scan.  Matches the per-collect batch a campaign
#: replica sees, and keeps the (backend-independent) host-boundary
#: conversion from drowning out the VM execution being compared.
FILE_BATCH = 8

_EXTS = ("doc", "pdf", "jpg", "txt", "xls", "ppt", "dwg", "zip")


def _update_bench(section, payload):
    """Merge one section into BENCH_luavm.json (tests run in any order)."""
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except ValueError:
            data = {}
    data["benchmark"] = "luavm-bytecode"
    data["python"] = sys.version.split()[0]
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _host_fixtures():
    """Sysinfo + file batch shaped like the campaign's host model,
    pre-converted to LuaTable so both backends measure VM execution
    rather than the shared python->Lua conversion layer."""
    sysinfo = _to_lua({
        "os": "WinXP", "hostname": "victim-01", "volumes": ["c", "d"],
        "tcp_connections": ["10.0.0.7:445"], "cookies": ["session"],
        "software": ["office", "autocad"],
    })
    files = _to_lua([
        {"name": "f%d.%s" % (i, _EXTS[i % len(_EXTS)]),
         "ext": _EXTS[i % len(_EXTS)],
         "size": 1000 + 37 * i,
         "path": "/home/user/secret_design_%d" % i}
        for i in range(FILE_BATCH)
    ])
    return sysinfo, files


def _replica_lifecycle(backend, sysinfo, files):
    """One Flame replica's module lifecycle; returns the scan results."""
    manager = FlameModuleManager(backend=backend)
    manager.load("flask", FLASK_SOURCE)
    manager.load("jimmy", JIMMY_SOURCE)
    manager.call("flask", "collect", sysinfo)
    first = manager.call("jimmy", "scan", files)
    assert manager.hot_swap("jimmy", JIMMY_V2_SOURCE, at_time=1.0)
    second = manager.call("jimmy", "scan", files)
    return first, second


def _interleaved_minimums(tree_fn, byte_fn, rounds):
    """Alternate the two workloads and keep each side's best CPU time."""
    tree_times, byte_times = [], []
    for _ in range(rounds):
        start = time.process_time()
        tree_fn()
        tree_times.append(time.process_time() - start)
        start = time.process_time()
        byte_fn()
        byte_times.append(time.process_time() - start)
    return min(tree_times), min(byte_times)


def test_module_workload_speedup(quick):
    repetitions = 8 if quick else 20
    rounds = 5 if quick else 9
    sysinfo, files = _host_fixtures()

    clear_compile_cache()
    warm_compile_cache()
    # Warmup + equivalence: both backends must produce identical scan
    # results before their speed is compared.
    tree_result = _replica_lifecycle("tree", sysinfo, files)
    byte_result = _replica_lifecycle("bytecode", sysinfo, files)
    assert byte_result == tree_result

    tree_s, byte_s = _interleaved_minimums(
        lambda: [_replica_lifecycle("tree", sysinfo, files)
                 for _ in range(repetitions)],
        lambda: [_replica_lifecycle("bytecode", sysinfo, files)
                 for _ in range(repetitions)],
        rounds,
    )
    speedup = tree_s / byte_s if byte_s else float("inf")
    cache = compile_cache_stats()

    _update_bench("module_workload", {
        "file_batch": FILE_BATCH,
        "repetitions": repetitions,
        "rounds": rounds,
        "quick": quick,
        "tree_cpu_seconds": tree_s,
        "bytecode_cpu_seconds": byte_s,
        "speedup": speedup,
        "speedup_floor": MODULE_WORKLOAD_FLOOR,
        "compile_cache": cache,
    })
    print()
    print("module workload: tree %.4fs, bytecode %.4fs -> %.2fx "
          "(cache: %d entries, %d hits)"
          % (tree_s, byte_s, speedup, cache["entries"], cache["hits"]))
    print("wrote %s" % BENCH_PATH)

    # Every replica re-loads the three Flame scripts, so the shared
    # cache must have absorbed all but the first compilations.
    assert cache["entries"] == 3
    assert cache["hits"] > cache["misses"]

    assert speedup >= MODULE_WORKLOAD_FLOOR, (
        "bytecode backend only %.2fx faster than the tree walker on the "
        "Flame module workload (floor: %.1fx)"
        % (speedup, MODULE_WORKLOAD_FLOOR))


def test_module_load_speedup(quick):
    repetitions = 30 if quick else 80
    rounds = 5 if quick else 9

    clear_compile_cache()
    warm_compile_cache()

    def load_all(backend):
        manager = FlameModuleManager(backend=backend)
        manager.load("flask", FLASK_SOURCE)
        manager.load("jimmy", JIMMY_SOURCE)
        manager.load("jimmy2", JIMMY_V2_SOURCE)

    load_all("tree")
    load_all("bytecode")

    tree_s, byte_s = _interleaved_minimums(
        lambda: [load_all("tree") for _ in range(repetitions)],
        lambda: [load_all("bytecode") for _ in range(repetitions)],
        rounds,
    )
    speedup = tree_s / byte_s if byte_s else float("inf")

    _update_bench("module_load", {
        "repetitions": repetitions,
        "rounds": rounds,
        "quick": quick,
        "tree_cpu_seconds": tree_s,
        "bytecode_cpu_seconds": byte_s,
        "speedup": speedup,
        "speedup_floor": MODULE_LOAD_FLOOR,
    })
    print()
    print("module load: tree %.4fs, bytecode %.4fs -> %.2fx"
          % (tree_s, byte_s, speedup))

    assert speedup >= MODULE_LOAD_FLOOR, (
        "cached bytecode module load only %.2fx faster than tree "
        "re-parse (floor: %.1fx)" % (speedup, MODULE_LOAD_FLOOR))
