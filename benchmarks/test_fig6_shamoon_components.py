"""FIG6 — Figure 6: Shamoon malware components.

The figure decomposes TrkSvr.exe into the dropper, the wiper, the
reporter, and the encrypted 64-bit variant.  This benchmark dissects the
synthetic sample exactly as an analyst would: parse the PE, enumerate
encrypted resources, break the XOR cipher, and recover each component.
"""

from repro.analysis import analyze_pe
from repro.certs import PkiWorld
from repro.core import comparison_table
from repro.malware.shamoon import (
    RESOURCE_REPORTER,
    RESOURCE_WIPER,
    RESOURCE_X64,
    TRKSVR_SIZE,
    XOR_KEY,
    build_trksvr_image,
)
from repro.pe import parse_pe
from conftest import show


def _dissect():
    image = build_trksvr_image()
    pe = parse_pe(image)
    world = PkiWorld()
    report = analyze_pe(image, trust_store=world.make_trust_store())
    recovered = {
        name: pe.resource(name).decrypt()
        for name in (RESOURCE_WIPER, RESOURCE_REPORTER, RESOURCE_X64)
    }
    x64 = parse_pe(recovered[RESOURCE_X64])
    return image, pe, report, recovered, x64


def test_fig6_shamoon_components(once):
    image, pe, report, recovered, x64 = once(_dissect)

    assert len(image) == TRKSVR_SIZE == 900 * 1024
    assert pe.machine_label == "x86"
    encrypted = [r.name for r in pe.encrypted_resources()]
    assert encrypted == [RESOURCE_WIPER, RESOURCE_REPORTER, RESOURCE_X64]
    assert all(r.xor_key == XOR_KEY for r in pe.encrypted_resources())
    assert b"wiper" in recovered[RESOURCE_WIPER]
    assert b"reporter" in recovered[RESOURCE_REPORTER]
    assert x64.machine_label == "x64"
    assert report.suspicion_score >= 6

    show(comparison_table("FIG6 - Shamoon components (paper Fig. 6)", [
        ("main file size", "900KB PE",
         "%d bytes" % len(image), len(image) == 900 * 1024),
        ("encryption of resources", "simple Xor cipher",
         "single-byte XOR key %r" % XOR_KEY, True),
        ("dropper", "plain, in main file",
         "code section, unencrypted", True),
        ("wiper", "encrypted resource",
         "resource %s recovered" % RESOURCE_WIPER, True),
        ("reporter", "encrypted resource",
         "resource %s recovered" % RESOURCE_REPORTER, True),
        ("64-bit variant", "last encrypted resource",
         "resource %s -> %s PE" % (RESOURCE_X64, x64.machine_label),
         x64.machine_label == "x64"),
        ("triage verdict", "suspicious sample",
         "suspicion %d/10" % report.suspicion_score,
         report.suspicion_score >= 6),
    ]))
