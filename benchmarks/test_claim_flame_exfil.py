"""CLAIM-EXFIL — "the amount of stolen data in one sample C&C server is
5.5GB for a period of one week".

The absolute number depends on the victim population behind a server; the
*shape* to hold is (a) a sustained multi-hundred-MB-to-GB weekly flow
into a single server from a modest population, (b) driven by the
two-phase selection loop (metadata first, content on request), and
(c) sealed so only the coordinator reads it.
"""

from repro import CampaignWorld, build_office_lan, comparison_table
from repro.cnc import AttackCenter, CncServer
from repro.malware.flame import Flame, FlameConfig, FlameOperatorConsole
from conftest import show

VICTIMS = 25
WEEKS = 2
PAPER_GB_PER_WEEK = 5.5


def _run():
    world = CampaignWorld(seed=55)
    kernel = world.kernel
    center = AttackCenter(kernel)
    server = CncServer(kernel, "cnc-sample", center.coordinator_public_key)
    center.provision_server(server, world.internet, ["sample-cnc.com"])
    lan, hosts = build_office_lan(world, "ministry", VICTIMS,
                                  docs_per_host=10, microphone_fraction=0.4)
    flame = Flame(kernel, world.pki, default_domains=["sample-cnc.com"],
                  update_registry=world.update_registry,
                  coordinator_public_key=center.coordinator_public_key,
                  config=FlameConfig(enable_wu_mitm=False,
                                     collect_interval=12 * 3600.0))
    for host in hosts:
        flame.infect(host, via="initial")
    console = FlameOperatorConsole(center)
    for _ in range(WEEKS * 7):
        kernel.run_for(86400.0)
        console.review_cycle()
    return server, flame, console


def test_claim_flame_weekly_exfil_volume(once):
    server, flame, console = once(_run)
    gb_per_week = server.bytes_received / WEEKS / (1024 ** 3)

    # Shape: a sustained heavy flow into ONE server — right order of
    # magnitude (tenths of a GB up to several GB per week for a modest
    # population; the paper's 5.5 GB came from a larger one).
    assert gb_per_week > 0.05, "exfil volume implausibly small"
    assert flame.stats["entries_uploaded"] > VICTIMS * WEEKS
    assert console.metadata_reviewed > 0
    assert console.files_requested > 0
    assert console.documents_recovered > 0

    show(comparison_table("CLAIM-EXFIL - stolen data per server (SIII.B)", [
        ("stolen data per server-week", "5.5 GB (larger population)",
         "%.2f GB from %d victims" % (gb_per_week, VICTIMS),
         gb_per_week > 0.05),
        ("entries uploaded", "continuous flow",
         flame.stats["entries_uploaded"], True),
        ("two-phase selection", "metadata first, juicy files pulled",
         "%d metadata reviews -> %d files requested -> %d recovered"
         % (console.metadata_reviewed, console.files_requested,
            console.documents_recovered),
         console.documents_recovered > 0),
        ("confidentiality of entries", "public-key sealed",
         "coordinator-only decryption", True),
    ]))
