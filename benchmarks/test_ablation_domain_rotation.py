"""ABLATION — C&C domain-rotation width vs takedown resilience.

DESIGN.md design choice #4.  The paper's infrastructure (Fig. 4) spends
80 domains on 22 servers.  The ablation applies a growing *absolute* takedown effort (research
sinkholes cost per domain) to each configuration and measures whether a
client still reaches a live C&C: wide rotations survive effort levels
that annihilate narrow ones.
"""

from repro import CampaignWorld, comparison_table
from repro.cnc import CncClient, CncServer, DomainPool
from repro.cnc.attack_center import AttackCenter
from repro.netsim import Lan
from conftest import show

WIDTHS = (5, 10, 80)
TAKEDOWN_EFFORTS = (2, 8, 32, 79)  # domains sinkholed


def _survival(world, width):
    kernel = world.kernel
    center = AttackCenter(kernel, label="abl-%d" % width)
    pool = DomainPool(kernel.rng.fork("pool-%d" % width))
    server_ips = [world.internet.allocate_ip()
                  for _ in range(max(1, width // 4))]
    pool.register_many(width, server_ips)
    for index, ip in enumerate(server_ips):
        domains = pool.domains_for_server(ip)
        server = CncServer(kernel, "abl%d-%02d" % (width, index),
                           center.coordinator_public_key,
                           extra_domains=domains[1:])
        center.provision_server(server, world.internet, domains,
                                server_ip=ip)
    lan = Lan(kernel, "victims-%d" % width, internet=world.internet)
    host = world.make_host("V-%d" % width)
    lan.attach(host)
    client = CncClient("uid-%d" % width, pool.domains()[:5])
    client.get_news(lan, host)  # learn the rotation

    reachable_at = {}
    doomed = world.kernel.rng.fork("takedown-%d" % width).shuffle(
        list(pool.domains()))
    downed = 0
    for effort in TAKEDOWN_EFFORTS:
        target = min(effort, len(doomed))
        while downed < target:
            world.internet.dns.sinkhole(doomed[downed])
            downed += 1
        reachable_at[effort] = client.get_news(lan, host) is not None
    return reachable_at


def _run():
    world = CampaignWorld(seed=80)
    return {width: _survival(world, width) for width in WIDTHS}


def test_ablation_domain_rotation_width(once):
    results = once(_run)

    # Survival is monotone in width at every effort level.
    for effort in TAKEDOWN_EFFORTS:
        alive = [results[w][effort] for w in WIDTHS]
        assert alive == sorted(alive), (
            "wider rotations must survive at least as long (effort %d)"
            % effort)
    # The paper-scale fleet survives effort that kills the narrow ones.
    assert results[80][32]
    assert not results[5][8]
    assert not results[10][32]

    rows = []
    for width in WIDTHS:
        survived = [e for e in TAKEDOWN_EFFORTS if results[width][e]]
        rows.append((
            "rotation width %d domains" % width,
            "80 domains deployed (Fig. 4)" if width == 80 else "ablation",
            "survives %s domains sinkholed"
            % (("up to %d" % max(survived)) if survived else "none"),
            True,
        ))
    show(comparison_table("ABLATION - domain rotation vs takedown", rows))
