"""FIG1 — Figure 1: overview of Stuxnet malware operation.

The figure shows the three-level kill chain: compromise Windows (USB
LNK, network spread, rootkit, C&C), compromise the Step 7 application
(DLL swap), compromise the PLC (fingerprint, frequency payload, PLC
rootkit).  This benchmark runs the whole chain in the Natanz-like plant
and checks that every stage of the figure appears — in order — in the
event trace.
"""

from repro import StuxnetNatanzCampaign, comparison_table
from conftest import show


def test_fig1_stuxnet_operation(once):
    campaign = StuxnetNatanzCampaign(seed=2010, centrifuge_count=984,
                                     workstation_count=3, duration_days=365)
    result = once(campaign.run)
    trace = campaign.world.kernel.trace

    # Level 1: Windows compromise.
    usb = trace.first(action="lnk-exploit-fired")
    rootkit = trace.first(action="rootkit-installed")
    spread = trace.first(action="spooler-files-dropped")
    # Level 2: Step 7 compromise.
    dll_swap = trace.first(action="s7otbxdx-swapped")
    project = trace.first(action="step7-project-infected")
    # Level 3: PLC compromise.
    armed = trace.first(actor="stuxnet", action="plc-payload-armed")
    attack = trace.first(actor="stuxnet", action="plc-attack-start")

    stages = [usb, rootkit, dll_swap, armed, attack]
    assert all(stage is not None for stage in stages), "kill chain incomplete"
    times = [stage.time for stage in stages]
    assert times == sorted(times), "figure stages out of order"
    assert spread is not None and project is not None

    show(comparison_table("FIG1 - Stuxnet operation (paper Fig. 1)", [
        ("Windows compromised via USB LNK (MS10-046)", "yes",
         "t=%.0fs" % usb.time, True),
        ("signed rootkit drivers installed", "JMicron+Realtek",
         "t=%.0fs" % rootkit.time, True),
        ("network spread via print spooler (MS10-061)", "yes",
         "t=%.0fs" % spread.time, True),
        ("Step 7 s7otbxdx.dll swapped", "yes",
         "t=%.0fs" % dll_swap.time, True),
        ("PLC payload armed after fingerprint", "Natanz config only",
         "t=%.0fs" % armed.time, True),
        ("frequency attack cycles run", ">=1",
         result["attack_cycles"], result["attack_cycles"] >= 1),
        ("centrifuges destroyed", "physical damage",
         "%d/%d" % (result["centrifuges_destroyed"],
                    result["centrifuges_total"]),
         result["centrifuges_destroyed"] > 0),
        ("operator & safety system blind", "see normal values",
         "%.0f Hz, tripped=%s" % (result["operator_view_hz"],
                                  result["safety_tripped"]),
         not result["safety_tripped"]),
    ]))
