"""FIG4 — Figure 4: the command-and-control platform behind Flame.

Paper numbers: a fresh client ships with 5 domains, expands to ~10 after
first contact; 80 registered domains total (fake identities, mostly
Germany/Austria, a variety of registrars) pointing at 22 C&C server IPs;
all controlled by a single attack center.
"""

from repro import CampaignWorld, build_flame_infrastructure, comparison_table
from repro.cnc import CncClient
from repro.netsim import Lan
from conftest import show


def _run():
    world = CampaignWorld(seed=4)
    infra = build_flame_infrastructure(world, domain_count=80,
                                       server_count=22,
                                       default_domain_count=5)
    lan = Lan(world.kernel, "victims", internet=world.internet)
    host = world.make_host("V-1")
    lan.attach(host)
    client = CncClient("uid-v-1", infra["default_domains"])
    domains_before = len(client.domains)
    client.get_news(lan, host)
    domains_after = len(client.domains)
    return world, infra, client, domains_before, domains_after


def test_fig4_cnc_platform(once):
    world, infra, client, before, after = once(_run)
    pool = infra["pool"]
    histogram = pool.country_histogram()
    de_at = histogram.get("DE", 0) + histogram.get("AT", 0)

    assert len(pool) == 80
    assert len(pool.server_ips()) == 22
    assert before == 5
    assert 6 <= after <= 15          # "updated to reach around 10"
    assert de_at / len(pool) > 0.6   # "mostly in Germany and Austria"
    assert pool.registrar_count() >= 3
    assert len(infra["servers"]) == 22
    # One attack center steers every server.
    assert infra["center"].servers == infra["servers"]

    show(comparison_table("FIG4 - C&C platform (paper Fig. 4)", [
        ("default domains in a fresh client", 5, before, before == 5),
        ("domains after first contact", "around 10", after,
         6 <= after <= 15),
        ("total registered domains", 80, len(pool), len(pool) == 80),
        ("C&C server IPs", 22, len(pool.server_ips()),
         len(pool.server_ips()) == 22),
        ("registrant addresses in DE/AT", "mostly",
         "%d/%d" % (de_at, len(pool)), de_at / len(pool) > 0.6),
        ("variety of registrars", "yes", pool.registrar_count(),
         pool.registrar_count() >= 3),
        ("attack centers", 1, 1, True),
    ]))
