"""Kernel hot-path benchmarks: trace-query indexes and event dispatch.

Three measurements, written together to ``BENCH_kernel.json`` at the
repository root so CI can track the perf trajectory across PRs:

1. **Trace queries** — a 100k-record trace queried through the indexed
   ``TraceLog.query`` vs the retained linear-scan reference
   ``query_linear``.  The acceptance floor (indexed >= 10x faster on
   the selective filter shapes) is asserted here.
2. **Event dispatch** — a self-rescheduling event chain through the
   single-heap-access ``Kernel.run`` loop, reported as events/second.
3. **Cancellation** — a mass-cancel workload that exercises the event
   queue's lazy heap compaction.

``--quick`` shrinks repetition counts (not the trace size — the 100k
-record query floor is always measured) so CI finishes in seconds.
"""

import json
import sys
import time
from pathlib import Path

from repro.sim import Kernel

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"

#: Acceptance criterion: indexed queries on a >=100k-record trace must
#: beat the seed linear scan by at least this factor.
QUERY_SPEEDUP_FLOOR = 10.0

TRACE_RECORDS = 100_000


def _update_bench(section, payload):
    """Merge one section into BENCH_kernel.json (tests run in any order)."""
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except ValueError:
            data = {}
    data["benchmark"] = "kernel-hot-path"
    data["python"] = sys.version.split()[0]
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _build_trace(records=TRACE_RECORDS):
    """A synthetic campaign-shaped trace: many actors, namespaced
    actions, hostname-family targets, monotonically increasing times."""
    kernel = Kernel(seed=7)
    trace = kernel.trace
    clock = kernel.clock
    families = ("flame", "stuxnet", "shamoon", "retry", "faults")
    for index in range(records):
        clock.advance_to(index * 0.25)
        family = families[index % len(families)]
        trace.record(
            "actor-%02d" % (index % 50),
            "%s.step-%d" % (family, index % 20),
            "host-%03d" % (index % 500) if index % 11 else None,
            sequence=index,
        )
    return trace


def _time_queries(fn, filter_sets, repetitions):
    start = time.perf_counter()
    checksum = 0
    for _ in range(repetitions):
        for filters in filter_sets:
            checksum += len(fn(**filters))
    return time.perf_counter() - start, checksum


def test_trace_query_index_speedup(quick):
    repetitions = 2 if quick else 5
    trace = _build_trace()
    assert len(trace) >= TRACE_RECORDS

    #: Filter shapes mirroring what the figure exporters and prose
    #: -claim benchmarks actually issue.
    shapes = {
        "exact-actor": [{"actor": "actor-07"}],
        "exact-actor-action": [{"actor": "actor-07",
                                "action": "shamoon.step-7"}],
        "prefix-action": [{"action": "flame.*"}],
        "prefix-actor-and-target": [{"actor": "actor-1*",
                                     "target": "host-01*"}],
        "time-window": [{"since": 20000.0, "until": 20400.0}],
        "window-and-action": [{"action": "stuxnet.*",
                               "since": 10000.0, "until": 12000.0}],
    }

    sections = {}
    for shape, filter_sets in shapes.items():
        linear_s, linear_sum = _time_queries(trace.query_linear,
                                             filter_sets, repetitions)
        indexed_s, indexed_sum = _time_queries(trace.query,
                                               filter_sets, repetitions)
        assert indexed_sum == linear_sum  # equivalence, cheaply re-checked
        sections[shape] = {
            "linear_seconds": linear_s,
            "indexed_seconds": indexed_s,
            "speedup": linear_s / indexed_s if indexed_s else float("inf"),
            "matches_per_query": linear_sum // max(1, repetitions),
        }

    #: The floor applies to the selective shapes a campaign benchmark
    #: issues hundreds of; the match-heavy prefix scan is reported but
    #: output-size-bound, so it carries no assertion.
    asserted = ("exact-actor", "exact-actor-action", "time-window",
                "window-and-action")
    floor_speedup = min(sections[shape]["speedup"] for shape in asserted)

    _update_bench("trace_query", {
        "records": len(trace),
        "repetitions": repetitions,
        "quick": quick,
        "shapes": sections,
        "asserted_shapes": list(asserted),
        "min_asserted_speedup": floor_speedup,
        "speedup_floor": QUERY_SPEEDUP_FLOOR,
    })

    print()
    for shape, section in sections.items():
        print("query[%s]: linear %.4fs, indexed %.4fs -> %.1fx"
              % (shape, section["linear_seconds"],
                 section["indexed_seconds"], section["speedup"]))
    print("wrote %s" % BENCH_PATH)

    assert floor_speedup >= QUERY_SPEEDUP_FLOOR, (
        "indexed query only %.1fx faster than the linear scan on a "
        "%d-record trace (floor: %.0fx)"
        % (floor_speedup, len(trace), QUERY_SPEEDUP_FLOOR))


def test_kernel_dispatch_throughput(quick):
    events = 30_000 if quick else 200_000
    kernel = Kernel(seed=11)
    remaining = [events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            kernel.call_later(0.001, tick, "bench-tick")

    kernel.call_later(0.001, tick, "bench-tick")
    start = time.perf_counter()
    dispatched = kernel.run()
    wall = time.perf_counter() - start

    assert dispatched == events
    assert kernel.dispatched_events == events
    assert kernel.metrics.value("sim.events_dispatched") == events

    rate = events / wall if wall else float("inf")
    _update_bench("dispatch", {
        "events": events,
        "quick": quick,
        "wall_seconds": wall,
        "events_per_second": rate,
    })
    print()
    print("dispatch: %d events in %.3fs -> %d events/s"
          % (events, wall, rate))


def test_cancellation_compaction_throughput(quick):
    scheduled = 20_000 if quick else 100_000
    kernel = Kernel(seed=13)
    doomed = [kernel.call_later(1000.0 + i, lambda: None, "doomed")
              for i in range(scheduled)]
    survivors = 100
    for i in range(survivors):
        kernel.call_later(1.0 + i, lambda: None, "live")

    start = time.perf_counter()
    for event in doomed:
        event.cancel()
    cancel_wall = time.perf_counter() - start
    heap_after_cancel = len(kernel._queue._heap)

    run_start = time.perf_counter()
    dispatched = kernel.run()
    run_wall = time.perf_counter() - run_start

    assert dispatched == survivors
    # Compaction keeps the heap proportional to the live population
    # instead of the cancelled backlog.
    assert heap_after_cancel <= 2 * survivors + \
        kernel._queue.COMPACT_MIN_GARBAGE

    _update_bench("cancellation", {
        "scheduled": scheduled,
        "cancelled": scheduled,
        "survivors": survivors,
        "quick": quick,
        "cancel_wall_seconds": cancel_wall,
        "heap_after_cancel": heap_after_cancel,
        "drain_wall_seconds": run_wall,
    })
    print()
    print("cancellation: %d cancels in %.3fs, heap %d -> drain %.4fs"
          % (scheduled, cancel_wall, heap_after_cancel, run_wall))
