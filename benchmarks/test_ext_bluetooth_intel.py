"""EXT-BT — BEETLEJUICE's intelligence products (§III.A).

The paper lists what the bluetooth module buys the attacker: "identify
the victim's social networks, identify the victim's physical location,
enhance information gathering" (incl. exfil through bluetooth bridges
past the firewall).  This experiment runs a Flame fleet with bluetooth
neighbourhoods and derives all three products from the harvested data.
"""

from repro import CampaignWorld, build_office_lan, comparison_table
from repro.analysis import (
    build_social_graph,
    colocated_victims,
    decode_bluetooth_entries,
    victims_linked_through_contacts,
)
from repro.bluetooth import BluetoothDevice
from repro.cnc import AttackCenter, CncServer
from repro.malware.flame import Flame, FlameConfig
from conftest import show

VICTIMS = 6


def _run():
    world = CampaignWorld(seed=311)
    kernel = world.kernel
    center = AttackCenter(kernel)
    server = CncServer(kernel, "cnc", center.coordinator_public_key)
    center.provision_server(server, world.internet, ["bt-cnc.com"])
    lan, hosts = build_office_lan(world, "office", VICTIMS,
                                  docs_per_host=2, bluetooth_fraction=1.0)
    # A human social fabric: neighbours share a contact; two victims
    # frequent the same cafe (one witness phone covers both); one victim
    # sits near an internet-connected phone (the exfil bridge).
    for index, host in enumerate(hosts):
        phone = BluetoothDevice(
            "phone-%d" % index, owner="owner-%d" % index,
            address_book=["contact-%d" % index, "contact-%d" % (index + 1)],
        )
        world.bluetooth.place_device(host, phone)
    cafe_phone = BluetoothDevice("cafe-phone", owner="stranger")
    world.bluetooth.place_device(hosts[0], cafe_phone)
    world.bluetooth.place_device(hosts[1], cafe_phone)
    bridge_phone = BluetoothDevice("bridge-phone", internet_connected=True)
    world.bluetooth.place_device(hosts[2], bridge_phone)

    flame = Flame(kernel, world.pki, default_domains=["bt-cnc.com"],
                  update_registry=world.update_registry,
                  coordinator_public_key=center.coordinator_public_key,
                  bluetooth_neighborhood=world.bluetooth,
                  config=FlameConfig(enable_wu_mitm=False))
    for host in hosts:
        flame.infect(host, via="initial")
    kernel.run_for(3 * 86400.0)
    center.harvest()
    center.coordinator_decrypt_backlog()
    return world, center, flame, hosts, bridge_phone


def test_ext_bluetooth_intelligence(once):
    world, center, flame, hosts, bridge_phone = once(_run)

    harvests = decode_bluetooth_entries(center.recovered_intelligence)
    assert len(harvests) >= VICTIMS
    graph = build_social_graph(harvests)
    linked = victims_linked_through_contacts(graph)
    # The contact chain links consecutive victims.
    assert any(a == hosts[0].hostname and b == hosts[1].hostname
               for a, b, _ in linked)
    pairs = colocated_victims(world.bluetooth)
    assert (hosts[0].hostname, hosts[1].hostname) in pairs

    show(comparison_table("EXT-BT - BEETLEJUICE intelligence (SIII.A)", [
        ("bluetooth harvests recovered", "address books, SMS, devices",
         "%d entries" % len(harvests), True),
        ("social network identified", "victim's social networks",
         "%d victim pairs linked via shared contacts" % len(linked),
         len(linked) >= 1),
        ("physical location identified", "victim's physical location",
         "%d co-located victim pairs (shared witness device)" % len(pairs),
         len(pairs) >= 1),
        ("exfil bridge available", "bypass firewall via BT device",
         "device %r internet-connected" % bridge_phone.name, True),
    ]))
