"""Epidemic-tier benchmarks: aggregate stepping throughput at scale.

Two measurements, written to ``BENCH_epidemic.json`` at the repository
root so CI tracks the hybrid tier's perf trajectory across PRs:

1. **Aggregate stepping** — the 10^6-host Stuxnet scenario through the
   pool tier, reported as host-epochs per second of wall time.  The
   acceptance floor (>= 10^5 hosts/second) is asserted here: below it,
   the struct-of-arrays tier has regressed to object-tier costs and the
   whole point of the hybrid design is gone.
2. **Fidelity ratio** — the same profile at oracle-scale (full
   ``WindowsHost`` objects, per-host recounting) vs the pool tier,
   reported for context.  No floor: the ratio is informative, the
   aggregate floor above is the contract.

``--quick`` shrinks the epoch count (never the 10^6 population — the
floor is only meaningful at scale) so CI finishes in seconds.
"""

import json
import sys
import time
from pathlib import Path

from repro.core import CampaignWorld
from repro.epidemic import EpidemicModel, FullFidelityEpidemic
from repro.epidemic.scenarios import stuxnet_profile
from repro.sim import Kernel

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_epidemic.json"

#: Acceptance criterion: the aggregate tier must step at least this
#: many host-epochs per second of wall time on the 10^6-host scenario.
HOSTS_PER_SECOND_FLOOR = 100_000.0

POOL_HOSTS = 1_000_000
ORACLE_HOSTS = 200


def _update_bench(section, payload):
    """Merge one section into BENCH_epidemic.json (any test order)."""
    data = {}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except ValueError:
            data = {}
    data["benchmark"] = "epidemic-hybrid-tier"
    data["python"] = sys.version.split()[0]
    data[section] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _run_pool(hosts, epochs, seed=2010):
    """Build (untimed) then run (timed) one pool-tier epidemic."""
    kernel = Kernel(seed=seed)
    model = EpidemicModel(kernel, stuxnet_profile(), hosts, epochs)
    model.seed_initial(5)
    model.start()
    start = time.perf_counter()
    kernel.run(until=model.horizon_seconds())
    elapsed = time.perf_counter() - start
    return model, elapsed


def test_aggregate_stepping_meets_hosts_per_second_floor(quick):
    epochs = 6 if quick else 30
    model, elapsed = _run_pool(POOL_HOSTS, epochs)
    assert model.finished
    assert model.curve[-1]["cumulative"] > 5, "epidemic never spread"
    host_epochs = POOL_HOSTS * epochs
    rate = host_epochs / elapsed
    _update_bench("aggregate_stepping", {
        "hosts": POOL_HOSTS,
        "epochs": epochs,
        "seconds": round(elapsed, 4),
        "host_epochs_per_second": round(rate, 1),
        "floor": HOSTS_PER_SECOND_FLOOR,
        "cumulative_infections": model.curve[-1]["cumulative"],
    })
    assert rate >= HOSTS_PER_SECOND_FLOOR, (
        "aggregate tier stepped %d hosts x %d epochs at %.0f "
        "host-epochs/s — below the %.0f floor"
        % (POOL_HOSTS, epochs, rate, HOSTS_PER_SECOND_FLOOR))


def test_fidelity_ratio_is_reported(quick):
    """Pool vs oracle at a population the oracle can afford; context
    only — the differential suite owns correctness, the floor above
    owns performance."""
    epochs = 4 if quick else 8
    model, pool_elapsed = _run_pool(ORACLE_HOSTS, epochs, seed=31)

    world = CampaignWorld(seed=31)
    oracle = FullFidelityEpidemic(world, stuxnet_profile(), ORACLE_HOSTS,
                                  epochs)
    oracle.seed_initial(5)
    start = time.perf_counter()
    oracle.run()
    oracle_elapsed = time.perf_counter() - start

    assert oracle.curve == model.curve
    _update_bench("fidelity_ratio", {
        "hosts": ORACLE_HOSTS,
        "epochs": epochs,
        "pool_seconds": round(pool_elapsed, 4),
        "oracle_seconds": round(oracle_elapsed, 4),
        "oracle_over_pool": round(oracle_elapsed / max(pool_elapsed,
                                                       1e-9), 2),
    })
