"""CLAIM-SUICIDE — Flame "went dark overnight".

§III.A: in the last week of May 2012 the C&C servers sent an update
commanding every infected system to delete itself completely, overwriting
with random characters; "since the triggering of the suicide operation,
there were no reported active infections".  The shape: a fleet-wide kill
in one beacon interval, zero forensic residue, while unrelated user data
survives.
"""

from repro import CampaignWorld, build_office_lan, comparison_table
from repro.cnc import AttackCenter, CncServer
from repro.malware.flame import Flame, FlameConfig
from repro.malware.flame.suicide import forensic_residue
from conftest import show

VICTIMS = 20


def _run():
    world = CampaignWorld(seed=522)
    kernel = world.kernel
    center = AttackCenter(kernel)
    server = CncServer(kernel, "cnc", center.coordinator_public_key)
    center.provision_server(server, world.internet, ["cnc.example.com"])
    lan, hosts = build_office_lan(world, "fleet", VICTIMS, docs_per_host=4)
    flame = Flame(kernel, world.pki, default_domains=["cnc.example.com"],
                  update_registry=world.update_registry,
                  coordinator_public_key=center.coordinator_public_key,
                  config=FlameConfig(enable_wu_mitm=False))
    for host in hosts:
        flame.infect(host, via="initial")
    kernel.run_for(5 * 86400.0)  # steady-state espionage
    footprint_before = sum(flame.footprint_bytes(h) for h in hosts)
    active_before = len(flame.active_infections())
    user_files_before = sum(
        len([r for r in h.vfs.walk("c:\\users") if r.origin == "user"])
        for h in hosts)

    center.broadcast_suicide()
    kernel.run_for(86400.0)      # one beacon interval later...

    residue = sum(len(forensic_residue(h)) for h in hosts)
    user_files_after = sum(
        len([r for r in h.vfs.walk("c:\\users") if r.origin == "user"])
        for h in hosts)
    return {
        "active_before": active_before,
        "active_after": len(flame.active_infections()),
        "footprint_before": footprint_before,
        "residue_files": residue,
        "user_files_before": user_files_before,
        "user_files_after": user_files_after,
        "still_registered": sum(1 for h in hosts if h.is_infected_by("flame")),
    }


def test_claim_suicide_leaves_nothing(once):
    r = once(_run)
    assert r["active_before"] == VICTIMS
    assert r["active_after"] == 0
    assert r["still_registered"] == 0
    assert r["footprint_before"] > VICTIMS * 19 * 1024 * 1024
    assert r["residue_files"] == 0
    assert r["user_files_after"] == r["user_files_before"]

    show(comparison_table("CLAIM-SUICIDE - the kill switch (SIII.A)", [
        ("active infections before broadcast", VICTIMS,
         r["active_before"], True),
        ("active infections after", "none reported since",
         r["active_after"], r["active_after"] == 0),
        ("on-disk footprint removed", "~20 MB per host, every file",
         "%.0f MB shredded" % (r["footprint_before"] / 1048576.0), True),
        ("forensic residue (raw disk scan)",
         "random characters only", "%d flame files" % r["residue_files"],
         r["residue_files"] == 0),
        ("collateral to user data", "none (targeted shredding)",
         "%d -> %d user files" % (r["user_files_before"],
                                  r["user_files_after"]),
         r["user_files_after"] == r["user_files_before"]),
    ]))
