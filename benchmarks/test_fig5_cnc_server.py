"""FIG5 — Figure 5: inside one C&C server.

The figure's components, exercised live: LAMP-style server hardened by
the admin automation (LogWiper.sh, scheduled cleanup); the newsforyou
dead-drop with ads/news/entries; GET_NEWS / ADD_ENTRY verbs; the MySQL
database tracking clients, packages, settings, and panel users; and the
role separation — operator moves sealed data, only the coordinator
decrypts.
"""

from repro import CampaignWorld, comparison_table
from repro.cnc import AttackCenter, CncClient, CncServer
from repro.netsim import Lan
from conftest import show


def _run():
    world = CampaignWorld(seed=5)
    kernel = world.kernel
    center = AttackCenter(kernel)
    server = CncServer(kernel, "cnc-01", center.coordinator_public_key,
                       extra_domains=["alt.example.com"])
    logging_before = server.logging_enabled
    center.provision_server(server, world.internet, ["drop.example.com"])

    lan = Lan(kernel, "victims", internet=world.internet)
    host = world.make_host("V-1")
    lan.attach(host)
    client = CncClient("uid-v-1", ["drop.example.com"])

    center.push_command("update-1", b"module bytes")               # news
    center.push_command("steal-x", b"[]", client_id="uid-v-1")     # ads
    packages = client.get_news(lan, host)
    client.add_entry(lan, host, b"stolen document body",
                     center.coordinator_public_key)
    pending_before_harvest = server.pending_entry_count()
    center.harvest()
    operator_readable = any(
        b"stolen document body" in blob for _, _, blob in center.sealed_backlog
    )
    center.coordinator_decrypt_backlog()
    coordinator_got = center.recovered_intelligence[0]["data"]
    kernel.run_for(45 * 60)  # cleanup task fires at the 30-minute mark
    return {
        "logging_before": logging_before,
        "logging_after": server.logging_enabled,
        "logs_present": "/var/log/syslog" in server.files,
        "logwiper_present": "/root/LogWiper.sh" in server.files,
        "package_names": sorted(p["name"] for p in packages),
        "db_tables": server.db.tables(),
        "pending_before": pending_before_harvest,
        "pending_after_cleanup": server.pending_entry_count(),
        "operator_readable": operator_readable,
        "coordinator_got": coordinator_got,
        "clients_known": server.db.count("clients"),
    }


def test_fig5_cnc_server_internals(once):
    r = once(_run)
    assert r["logging_before"] and not r["logging_after"]
    assert not r["logs_present"] and not r["logwiper_present"]
    assert r["package_names"] == ["steal-x", "update-1"]
    assert set(r["db_tables"]) >= {"clients", "packages", "settings",
                                   "panel_users"}
    assert r["pending_before"] == 1 and r["pending_after_cleanup"] == 0
    assert not r["operator_readable"]
    assert r["coordinator_got"] == b"stolen document body"

    show(comparison_table("FIG5 - C&C server internals (paper Fig. 5)", [
        ("LogWiper.sh stops logging, shreds logs, deletes itself",
         "yes", "logging=%s, logs gone, script gone" % r["logging_after"],
         not r["logging_after"]),
        ("ads folder: per-client packages", "specific client",
         "steal-x delivered", "steal-x" in r["package_names"]),
        ("news folder: broadcast packages", "all clients",
         "update-1 delivered", "update-1" in r["package_names"]),
        ("entries folder: sealed uploads", "stolen data",
         "%d pending" % r["pending_before"], r["pending_before"] == 1),
        ("30-min cleanup of retrieved files", "every 30 minutes",
         "%d left after cleanup" % r["pending_after_cleanup"],
         r["pending_after_cleanup"] == 0),
        ("MySQL tables", "clients/packages/settings/auth",
         ",".join(r["db_tables"]), True),
        ("operator can read stolen data", "no (no private key)",
         "sealed bytes only", not r["operator_readable"]),
        ("coordinator decrypts", "yes", "plaintext recovered", True),
    ]))
