"""TREND-MATRIX — Section V: the six recent-malware trends.

Runs a compact campaign of all three families, scores the six trends
from measured artefacts, adds the paper's reported rows for Duqu and
Gauss, and checks the orderings the paper asserts: the state-built
weapons tower over Shamoon in sophistication; Flame leads modularity;
USB is a first-class vector for Stuxnet/Flame; everyone but Shamoon can
commit suicide.
"""

from repro import comparison_table
from repro.analysis import TREND_NAMES, score_campaign
from repro.analysis.trends import literature_rows
from repro.core import CampaignWorld, build_office_lan
from repro.malware.flame import Flame, FlameConfig
from repro.malware.shamoon import Shamoon, ShamoonConfig
from repro.malware.stuxnet import Stuxnet
from repro.cnc import AttackCenter, CncServer
from repro.usb import UsbDrive
from conftest import show


def _run():
    world = CampaignWorld(seed=5)
    kernel = world.kernel

    # Stuxnet leg: USB infection of an XP box.
    stux = Stuxnet(kernel, world.pki)
    xp = world.make_host("XP-ENG", os_version="xp")
    xp.insert_usb(stux.weaponize_drive(UsbDrive("stick")))

    # Flame leg: small fleet with C&C, one module update, then suicide.
    center = AttackCenter(kernel)
    server = CncServer(kernel, "cnc", center.coordinator_public_key)
    center.provision_server(server, world.internet, ["trend-cnc.com"])
    lan, hosts = build_office_lan(world, "fleet", 4, docs_per_host=3)
    flame = Flame(kernel, world.pki, default_domains=["trend-cnc.com"],
                  update_registry=world.update_registry,
                  coordinator_public_key=center.coordinator_public_key,
                  config=FlameConfig(enable_wu_mitm=False))
    flame.infect(hosts[0], via="initial")
    stick = UsbDrive("flame-stick")
    hosts[0].insert_usb(stick, open_in_explorer=False)  # EUPHORIA weaponises
    # The stick walks to two further machines: one legacy (autorun), one
    # unpatched XP (LNK) — both campaign USB vectors measured live.
    legacy = world.make_host("LEGACY-PC", autorun_enabled=True)
    lan.attach(legacy)
    legacy.insert_usb(stick, open_in_explorer=False)
    xp_victim = world.make_host("XP-OFFICE", os_version="xp")
    lan.attach(xp_victim)
    xp_victim.insert_usb(stick)
    from repro.malware.flame.scripts import JIMMY_V2_SOURCE

    center.push_module_update("jimmy", JIMMY_V2_SOURCE)
    kernel.run_for(2 * 86400.0)
    center.broadcast_suicide()
    kernel.run_for(86400.0)

    # Shamoon leg: infect and detonate a small org.
    org_lan, org_hosts = build_office_lan(world, "org", 5, docs_per_host=2)
    sham = Shamoon(kernel, world.pki, org_lan.domain_admin_credential,
                   ShamoonConfig())
    sham.infect(org_hosts[0], via="initial")
    kernel.run_for(4 * 3600.0)
    for host in org_hosts:
        sham.detonate(host)

    matrix = score_campaign(
        stuxnet=stux, flame=flame, shamoon=sham,
        flame_facts={"infrastructure_domains": 80},
    )
    for row in literature_rows():
        matrix.add(row)
    return matrix


def test_trend_matrix_orderings(once):
    matrix = once(_run)
    assert set(matrix.families()) == {"stuxnet", "flame", "shamoon",
                                      "duqu", "gauss"}

    s = matrix.score
    # §V.A: sophistication — the state-grade families far above Shamoon.
    assert s("stuxnet", "sophistication") >= 4
    assert s("flame", "sophistication") >= 4
    assert s("shamoon", "sophistication") <= 2
    # §V.B: Stuxnet is the targeting archetype among the dissected three
    # (Duqu's reported row may legitimately tie or exceed it).
    assert s("stuxnet", "targeting") >= 3
    assert s("stuxnet", "targeting") >= s("flame", "targeting")
    assert s("stuxnet", "targeting") >= s("shamoon", "targeting")
    # §V.C: every family abuses certificates somehow.
    assert all(s(f, "certified") >= 1
               for f in ("stuxnet", "flame", "shamoon", "duqu"))
    # §V.D: Flame leads modularity (self-updating modules).
    assert s("flame", "modularity") >= s("stuxnet", "modularity")
    assert s("flame", "modularity") >= s("shamoon", "modularity")
    # §V.E: USB is a first-class vector for Stuxnet and Flame, not Shamoon.
    assert s("stuxnet", "usb_spreading") >= 2
    assert s("flame", "usb_spreading") >= 2
    assert s("shamoon", "usb_spreading") == 0
    # §V.F: all except Shamoon have an uninstall module; Flame used its.
    assert s("shamoon", "suicide") == 0
    assert s("flame", "suicide") == 5
    assert s("stuxnet", "suicide") >= 3

    print()
    print(matrix.as_table())
    show(comparison_table("TREND-MATRIX - Section V orderings", [
        ("sophistication: weapons >> Shamoon", "SV.A",
         "%d/%d vs %d" % (matrix.score("stuxnet", "sophistication"),
                          matrix.score("flame", "sophistication"),
                          matrix.score("shamoon", "sophistication")), True),
        ("targeting archetype", "Stuxnet (SV.B)",
         "stuxnet=%d (max)" % matrix.score("stuxnet", "targeting"), True),
        ("certified malware", "all four families (SV.C)",
         "all >= 1", True),
        ("modularity leader", "Flame (SV.D)",
         "flame=%d" % matrix.score("flame", "modularity"), True),
        ("USB spreading", "Stuxnet & Flame (SV.E)",
         "stux=%d flame=%d shamoon=%d" % (
             matrix.score("stuxnet", "usb_spreading"),
             matrix.score("flame", "usb_spreading"),
             matrix.score("shamoon", "usb_spreading")), True),
        ("suicide capability", "all except Shamoon (SV.F)",
         "flame executed it; shamoon=0", True),
    ]))
