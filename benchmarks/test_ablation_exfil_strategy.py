"""ABLATION — JIMMY's two-phase exfiltration vs upload-everything.

DESIGN.md design choice #1.  The paper: "not all data is uploaded to the
C&C server. Instead, Flame initially collects some preliminary
information ... the attacker decides about which files are juicier."
The ablation compares bytes-on-the-wire per interesting byte recovered:
the two-phase strategy moves a fraction of the traffic for the same
intelligence yield.
"""

import json

from repro import CampaignWorld, build_office_lan, comparison_table
from repro.malware.flame import collectors
from repro.malware.flame.modules import FlameModuleManager
from repro.malware.flame.scripts import JIMMY_V2_SOURCE
from conftest import show

VICTIMS = 12
JUICY_KEYWORDS = ("secret", "design", "contract", "network", "budget")


def _is_juicy(path):
    return any(k in path.lower() for k in JUICY_KEYWORDS)


def _build_hosts():
    world = CampaignWorld(seed=777, with_internet=False)
    _, hosts = build_office_lan(world, "targets", VICTIMS, air_gapped=True,
                                docs_per_host=12)
    return hosts


def _naive_strategy(hosts):
    """Upload every file wholesale, no selection."""
    wire_bytes = 0
    juicy_bytes = 0
    for host in hosts:
        for record in host.vfs.walk("c:\\users"):
            wire_bytes += record.size
            if _is_juicy(record.path):
                juicy_bytes += record.size
    return {"wire": wire_bytes, "juicy": juicy_bytes}


def _two_phase_strategy(hosts):
    """JIMMY v2 metadata first; pull content only for scored files."""
    modules = FlameModuleManager()
    modules.load("jimmy", JIMMY_V2_SOURCE)
    wire_bytes = 0
    juicy_bytes = 0
    for host in hosts:
        entry, selected = collectors.run_jimmy_metadata(modules, host)
        wire_bytes += len(entry)  # phase one: metadata only
        wanted = [f["path"] for f in selected if f.get("score", 0) > 0]
        content_entry, stolen = collectors.run_jimmy_content(host, wanted)
        wire_bytes += len(content_entry)
        juicy_bytes += sum(f["content_size"] for f in stolen
                           if _is_juicy(f["path"]))
    return {"wire": wire_bytes, "juicy": juicy_bytes}


def test_ablation_two_phase_exfil(once):
    hosts = _build_hosts()
    naive = _naive_strategy(hosts)
    two_phase = once(_two_phase_strategy, hosts)

    assert two_phase["juicy"] > 0
    # Same intelligence target, far less traffic.
    assert two_phase["wire"] < naive["wire"] * 0.5
    cost_naive = naive["wire"] / max(naive["juicy"], 1)
    cost_two_phase = two_phase["wire"] / max(two_phase["juicy"], 1)
    assert cost_two_phase < cost_naive

    show(comparison_table("ABLATION - two-phase exfil vs upload-everything", [
        ("wire bytes (upload everything)", "baseline",
         "%.1f MB" % (naive["wire"] / 1048576.0), True),
        ("wire bytes (two-phase JIMMY)", "a fraction of baseline",
         "%.1f MB (%.0f%% of baseline)"
         % (two_phase["wire"] / 1048576.0,
            100.0 * two_phase["wire"] / naive["wire"]),
         two_phase["wire"] < naive["wire"] * 0.5),
        ("juicy bytes recovered", "comparable intelligence",
         "%.2f MB vs %.2f MB naive"
         % (two_phase["juicy"] / 1048576.0, naive["juicy"] / 1048576.0),
         True),
        ("wire cost per juicy byte", "two-phase wins",
         "%.1f vs %.1f" % (cost_two_phase, cost_naive),
         cost_two_phase < cost_naive),
    ]))
