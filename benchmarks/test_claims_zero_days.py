"""CLAIM-ZD — "an unprecedented set of four zero-day exploits".

§II.A names MS10-046, MS10-061, MS10-073, MS10-092.  This benchmark
fires each vector against (a) an unpatched host, where it must succeed,
and (b) a host with that single bulletin applied, where it must fail —
establishing that all four distinct vulnerabilities genuinely carry the
Stuxnet model.
"""

from repro import CampaignWorld, comparison_table
from repro.malware.stuxnet import Stuxnet
from repro.netsim import Lan, send_crafted_print_request
from repro.netsim.spooler import MOF_TRIGGER_DELAY
from repro.usb import UsbDrive
from repro.winsim import IntegrityLevel
from conftest import show


def _lnk_fires(world, patched):
    host = world.make_host("LNK-%s" % patched, os_version="xp")
    if patched:
        host.patches.apply("MS10-046")
    stux = Stuxnet(world.kernel, world.pki)
    host.insert_usb(stux.weaponize_drive(UsbDrive("s")))
    return host.is_infected_by("stuxnet")


def _spooler_fires(world, patched):
    lan = Lan(world.kernel, "lan-%s" % patched)
    src = world.make_host("SRC-%s" % patched, file_and_print_sharing=True)
    dst = world.make_host("DST-%s" % patched, file_and_print_sharing=True)
    lan.attach(src)
    lan.attach(dst)
    if patched:
        dst.patches.apply("MS10-061")
    fired = []
    send_crafted_print_request(lan, src, dst, [
        ("sysnullevnt.mof", b"m", None),
        ("winsta.exe", b"d", lambda h, p: fired.append(1)),
    ])
    world.kernel.run_for(MOF_TRIGGER_DELAY + 1)
    return bool(fired)


def _eop_073(world, patched):
    host = world.make_host("EOP73-%s" % patched, os_version="xp")
    if patched:
        host.patches.apply("MS10-073")
    return host.patches.is_vulnerable("MS10-073")


def _eop_092(world, patched):
    host = world.make_host("EOP92-%s" % patched, os_version="xp")
    if patched:
        host.patches.apply("MS10-092")
    reached = []
    host.vfs.write("c:\\e.exe", b"",
                   payload=lambda h, p: reached.append(p.integrity))
    host.tasks.register("eop", "c:\\e.exe", delay=1.0,
                        integrity=IntegrityLevel.SYSTEM,
                        caller_integrity=IntegrityLevel.USER)
    world.kernel.run_for(5.0)
    return reached == [IntegrityLevel.SYSTEM]


def _run():
    world = CampaignWorld(seed=46)
    vectors = {
        "MS10-046 (LNK via USB)": _lnk_fires,
        "MS10-061 (print spooler RCE)": _spooler_fires,
        "MS10-073 (win32k EoP)": _eop_073,
        "MS10-092 (task scheduler EoP)": _eop_092,
    }
    results = {}
    for label, fire in vectors.items():
        results[label] = (fire(world, patched=False),
                          fire(world, patched=True))
    return results


def test_claim_four_zero_days(once):
    results = once(_run)
    assert len(results) == 4
    for label, (unpatched, patched) in results.items():
        assert unpatched, "%s failed on an unpatched host" % label
        assert not patched, "%s fired through the patch" % label

    rows = [("zero-days carried", "4 (unprecedented)", len(results),
             len(results) == 4)]
    for label, (unpatched, patched) in sorted(results.items()):
        rows.append((label, "exploitable until patched",
                     "fires=%s, blocked-by-patch=%s"
                     % (unpatched, not patched),
                     unpatched and not patched))
    show(comparison_table("CLAIM-ZD - four zero-day exploits (SII.A)", rows))
