"""CLAIM-FREQ — the frequency attack and its physical consequences.

§II.C: the payload triggers only while the cascade spins between 807 and
1210 Hz, then "modifies the frequency to 1410Hz then to 2Hz then to
1064Hz", destroying centrifuges while the operator and the digital
safety system see replayed normal values.  This benchmark reproduces the
attack-cycle series: destruction grows cycle over cycle while the HMI
stays flat at ~1064 Hz.
"""

from repro.core import CampaignWorld, build_natanz_plant, comparison_table
from repro.malware.stuxnet.plc_payload import PlcAttackPayload
from conftest import show

CYCLES = 6
WAIT = 20 * 86400.0


def _run():
    world = CampaignWorld(seed=1410, with_internet=False)
    plant = build_natanz_plant(world, centrifuge_count=984)
    kernel = world.kernel
    kernel.run_for(86400.0)  # reach steady state

    payload = PlcAttackPayload(kernel, plant["plc"], max_cycles=CYCLES,
                               inter_attack_wait=WAIT)
    assert payload.install()

    series = []
    commanded = []
    for cycle in range(CYCLES):
        kernel.run_for(WAIT + 8000.0)
        plant["bus"].sync_all()
        destroyed = sum(c.destroyed_count() for c in plant["cascades"])
        series.append((cycle + 1, destroyed,
                       plant["step7"].monitor_frequency(plant["plc"]),
                       plant["safety"].tripped))
    drive = plant["bus"].devices()[0]
    commanded = [f for _, f in drive.command_history if f > 0]
    return plant, payload, series, commanded


def test_claim_frequency_attack_series(once):
    plant, payload, series, commanded = once(_run)

    # The attack sequence 1410 -> 2 -> 1064 appears on the bus.
    assert 1410.0 in commanded
    assert 2.0 in commanded
    assert 1064.0 in commanded
    first_attack = commanded.index(1410.0)
    assert commanded[first_attack:first_attack + 3] == [1410.0, 2.0, 1064.0]

    destroyed_series = [d for _, d, _, _ in series]
    # Destruction is monotone and strictly grows across cycles.
    assert destroyed_series == sorted(destroyed_series)
    assert destroyed_series[-1] > destroyed_series[0] > 0
    total = sum(len(c) for c in plant["cascades"])
    assert destroyed_series[-1] < total  # grinding, not instant annihilation
    # Stealth held the whole time.
    assert all(abs(hz - 1064.0) < 2 for _, _, hz, _ in series)
    assert not any(tripped for _, _, _, tripped in series)
    assert payload.cycles_completed == CYCLES

    rows = [
        ("trigger band", "807-1210 Hz", "armed at 1064 Hz", True),
        ("attack sequence", "1410 -> 2 -> 1064 Hz",
         " -> ".join("%g" % f for f in commanded[first_attack:first_attack + 3]),
         True),
        ("operator HMI during attacks", "normal values",
         "~1064 Hz every cycle", True),
        ("digital safety system", "never trips", "never tripped", True),
    ]
    for cycle, destroyed, hz, _ in series:
        rows.append(("destroyed after cycle %d" % cycle,
                     "cumulative physical damage",
                     "%d/%d rotors" % (destroyed, 984), True))
    show(comparison_table("CLAIM-FREQ - frequency attack (SII.C)", rows))
