"""FIG2 — Figure 2: Flame man-in-the-middle attack.

The figure's data flow: victim's IE broadcasts WPAD -> infected machine
answers with fake wpad.dat -> victim proxies all traffic through it ->
Windows Update request intercepted (MUNCH) -> fake signed update served
(GADGET) -> victim executes it as genuine and is infected.
"""

from repro import CampaignWorld, build_office_lan, comparison_table
from repro.malware.flame import Flame, FlameConfig
from repro.netsim import run_windows_update
from conftest import show

VICTIMS = 15


def _run():
    world = CampaignWorld(seed=2012)
    lan, hosts = build_office_lan(world, "ministry", VICTIMS + 1,
                                  docs_per_host=2)
    flame = Flame(world.kernel, world.pki,
                  default_domains=["unused.example"],
                  update_registry=world.update_registry,
                  coordinator_public_key=None,
                  config=FlameConfig())
    flame.infect(hosts[0], via="initial")
    outcomes = []
    for victim in hosts[1:]:
        lan.browser_start(victim)
        outcomes.append(run_windows_update(victim, lan,
                                           world.update_registry))
    return world, lan, hosts, flame, outcomes


def test_fig2_flame_windows_update_mitm(once):
    world, lan, hosts, flame, outcomes = once(_run)
    proxy_state = flame._states[hosts[0].hostname]
    mitm = proxy_state.mitm

    installed = sum(1 for o in outcomes if o["installed"])
    signers = {o["signer"] for o in outcomes}
    infected = sum(1 for h in hosts if h.is_infected_by("flame"))

    assert mitm.wpad_requests_answered == VICTIMS
    assert mitm.updates_intercepted == VICTIMS
    assert installed == VICTIMS
    assert signers == {"MS"}          # all believed Microsoft signed it
    assert infected == VICTIMS + 1    # everyone, incl. patient zero

    # The WPAD broadcasts and proxied traffic are on the wire capture.
    wpad_packets = lan.capture.by_protocol("netbios")
    proxied = lan.capture.by_protocol("http-proxied")
    assert len(wpad_packets) >= VICTIMS
    assert len(proxied) >= VICTIMS

    show(comparison_table("FIG2 - Flame Windows-Update MITM (paper Fig. 2)", [
        ("WPAD broadcasts answered by SNACK", "every IE launch",
         mitm.wpad_requests_answered, True),
        ("victim traffic proxied via infected host", "all traffic",
         "%d proxied exchanges" % len(proxied), True),
        ("update requests intercepted (MUNCH)", "yes",
         mitm.updates_intercepted, True),
        ("fake update accepted as genuine (GADGET)",
         "signed 'by Microsoft'", "signer=%s" % sorted(signers), True),
        ("LAN infection via update channel", "spreads in LAN",
         "%d/%d infected" % (infected, len(hosts)),
         infected == len(hosts)),
    ]))
