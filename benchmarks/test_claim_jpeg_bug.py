"""CLAIM-JPEG — "due to a coding mistake, the files are overwritten only
by the small upper part of the JPEG image".

Comparison: the buggy wiper (as shipped) vs the intended full overwrite.
The shape: with the bug, only a small fraction of targeted bytes is
actually destroyed — yet the machines are equally bricked, because the
MBR/partition wipe does not depend on the file pass.
"""

from repro import CampaignWorld, comparison_table
from repro.core.environments import seed_user_documents
from repro.malware.shamoon import JPEG_FRAGMENT_SIZE, run_wiper
from repro.malware.shamoon.wiper import build_eldos_driver_image
from conftest import show

HOSTS_PER_ARM = 40


def _arm(world, label, faithful_bug):
    driver = build_eldos_driver_image(world.pki)
    rng = world.kernel.rng.fork("jpeg:%s" % label)
    stats = {"files": 0, "intended": 0, "overwritten": 0, "unusable": 0}
    for index in range(HOSTS_PER_ARM):
        host = world.make_host("%s-%03d" % (label, index))
        seed_user_documents(host, rng.fork(str(index)), docs_per_user=5,
                            max_doc_size=512 * 1024)
        wipe = run_wiper(host, driver, faithful_bug=faithful_bug)
        stats["files"] += wipe["files_overwritten"]
        stats["intended"] += wipe["bytes_intended"]
        stats["overwritten"] += wipe["bytes_overwritten"]
        stats["unusable"] += 0 if host.usable() else 1
    stats["fraction"] = stats["overwritten"] / stats["intended"]
    return stats


def _run():
    world = CampaignWorld(seed=99, with_internet=False)
    return (_arm(world, "buggy", faithful_bug=True),
            _arm(world, "fixed", faithful_bug=False))


def test_claim_jpeg_partial_overwrite_bug(once):
    buggy, fixed = once(_run)

    assert buggy["files"] == fixed["files"] > 0
    # The bug: only a small upper fragment of each file is destroyed.
    assert buggy["fraction"] < 0.25
    # Intended behaviour destroys (essentially) everything targeted.
    assert fixed["fraction"] > 0.95
    # Bricking is unaffected by the bug.
    assert buggy["unusable"] == fixed["unusable"] == HOSTS_PER_ARM

    show(comparison_table("CLAIM-JPEG - partial overwrite bug (SIV.B)", [
        ("overwrite per file (as shipped)", "only the upper JPEG part",
         "first %d bytes -> %.1f%% of targeted data destroyed"
         % (JPEG_FRAGMENT_SIZE, 100 * buggy["fraction"]),
         buggy["fraction"] < 0.25),
        ("overwrite per file (intended)", "whole file",
         "%.1f%% of targeted data destroyed" % (100 * fixed["fraction"]),
         fixed["fraction"] > 0.95),
        ("machines bricked either way", "MBR + partition wiped",
         "%d/%d vs %d/%d unusable" % (buggy["unusable"], HOSTS_PER_ARM,
                                      fixed["unusable"], HOSTS_PER_ARM),
         True),
        ("paper's conclusion", "attackers are simple amateurs",
         "bug reproduced, effect identical on bootability", True),
    ]))
