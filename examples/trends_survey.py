"""The Section V survey, measured: all five families in one matrix.

Runs compact campaigns of Stuxnet, Flame, Shamoon — and the extension
models of Duqu and Gauss — then scores the paper's six trends from what
actually happened (exploits fired, certs abused, modules updated,
suicides executed), printing the matrix next to the paper's qualitative
claims.

    python examples/trends_survey.py
"""

import os

from repro import CampaignWorld, build_office_lan
from repro.analysis import score_campaign
from repro.analysis.trends import duqu_artifacts, gauss_artifacts
from repro.cnc import AttackCenter, CncServer
from repro.malware.duqu import Duqu, DuquConfig
from repro.malware.flame import Flame, FlameConfig
from repro.malware.flame.scripts import JIMMY_V2_SOURCE
from repro.malware.gauss import Gauss, GaussConfig, derive_godel_key
from repro.malware.gauss.gauss import seal_godel_payload
from repro.malware.shamoon import Shamoon, ShamoonConfig
from repro.malware.stuxnet import Stuxnet
from repro.usb import UsbDrive

DAY = 86400.0

#: REPRO_EXAMPLE_QUICK=1 shrinks the survey fleets for the smoke tests.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0")


def main():
    world = CampaignWorld(seed=55)
    kernel = world.kernel

    print("Running five compact campaigns (one per family)...")

    # Stuxnet: USB -> XP -> USB onwards.
    stux = Stuxnet(kernel, world.pki)
    eng = world.make_host("ENG-XP", os_version="xp")
    eng.insert_usb(stux.weaponize_drive(UsbDrive("s1")))

    # Flame: fleet, module update, suicide.
    center = AttackCenter(kernel)
    server = CncServer(kernel, "cnc", center.coordinator_public_key)
    center.provision_server(server, world.internet, ["survey-cnc.com"])
    lan, hosts = build_office_lan(world, "fleet", 4, docs_per_host=3)
    flame = Flame(kernel, world.pki, default_domains=["survey-cnc.com"],
                  update_registry=world.update_registry,
                  coordinator_public_key=center.coordinator_public_key,
                  config=FlameConfig(enable_wu_mitm=False))
    flame.infect(hosts[0], via="initial")
    stick = UsbDrive("walker")
    hosts[0].insert_usb(stick, open_in_explorer=False)
    legacy = world.make_host("LEGACY", autorun_enabled=True)
    lan.attach(legacy)
    legacy.insert_usb(stick, open_in_explorer=False)
    center.push_module_update("jimmy", JIMMY_V2_SOURCE)
    kernel.run_for(2 * DAY)
    center.broadcast_suicide()
    kernel.run_for(DAY)

    # Shamoon: infect + detonate a small org.
    org_lan, org_hosts = build_office_lan(world, "org", 5, docs_per_host=2)
    sham = Shamoon(kernel, world.pki, org_lan.domain_admin_credential,
                   ShamoonConfig())
    sham.infect(org_hosts[0], via="initial")
    kernel.run_for(4 * 3600.0)
    for host in org_hosts:
        sham.detonate(host)

    # Duqu: two spear-phished targets; let the 36-day lifetime expire.
    duqu = Duqu(kernel, world.pki, DuquConfig(lifetime_days=2))
    for name in ("DIPLOMAT-1", "DIPLOMAT-2"):
        duqu.spear_phish(world.make_host(name))
    kernel.run_for(3 * DAY)

    # Gauss: USB fleet with one Godel-sealed target.
    target = world.make_host("GODEL-TARGET")
    target.installed_software.add("step7")
    warhead = seal_godel_payload(derive_godel_key(target), b"stage two")
    gauss = Gauss(kernel, world.pki, GaussConfig(godel_ciphertext=warhead))
    for index in range(3 if QUICK else 5):
        victim = world.make_host("BANK-%d" % index)
        victim.banking_credentials = [{"bank": "b", "user": "u%d" % index}]
        victim.insert_usb(gauss.weaponize_drive(UsbDrive("g%d" % index)))
    gauss.infect(target, via="usb-lnk")
    kernel.run_for(2 * DAY)

    matrix = score_campaign(stuxnet=stux, flame=flame, shamoon=sham,
                            flame_facts={"infrastructure_domains": 80})
    matrix.add(duqu_artifacts(duqu))
    matrix.add(gauss_artifacts(gauss))

    print()
    print("Section V trend matrix - 0..5 per trend, all rows MEASURED:")
    print()
    print(matrix.as_table())
    print()
    print("Paper claims reproduced:")
    print("  SV.A  sophistication: stuxnet/flame/duqu >> shamoon  ->",
          all(matrix.score(f, "sophistication")
              > matrix.score("shamoon", "sophistication")
              for f in ("stuxnet", "flame", "duqu")))
    print("  SV.C  certified malware across the board            ->",
          all(matrix.score(f, "certified") >= 1
              for f in ("stuxnet", "flame", "shamoon", "duqu")))
    print("  SV.D  modularity: flame & duqu lead                 ->",
          matrix.score("flame", "modularity") >= 4
          and matrix.score("duqu", "modularity") >= 3)
    print("  SV.E  USB spreading: stuxnet/flame/gauss, not shamoon->",
          matrix.score("gauss", "usb_spreading") >= 2
          and matrix.score("shamoon", "usb_spreading") == 0)
    print("  SV.F  suicide: everyone but shamoon                 ->",
          matrix.score("shamoon", "suicide") == 0
          and min(matrix.score(f, "suicide")
                  for f in ("stuxnet", "flame", "duqu", "gauss")) >= 3)


if __name__ == "__main__":
    main()
