"""The dissection lab: analyse a sample the way the paper's sources did.

Plays the defender. Takes the synthetic Shamoon sample (TrkSvr.exe),
runs the full analyst workflow — static PE dissection, XOR-resource
recovery, sandbox detonation, signature scan, fleet-wide IOC sweep —
and prints the findings.

    python examples/dissection_lab.py
"""

import os

from repro import CampaignWorld
from repro.analysis import (
    Sandbox,
    SignatureEngine,
    analyze_pe,
    default_iocs,
    default_signatures,
)
from repro.malware.shamoon import Shamoon, ShamoonConfig, build_trksvr_image
from repro.netsim import Lan
from repro.pe import parse_pe

#: REPRO_EXAMPLE_QUICK=1 shrinks the IOC-sweep fleet for the smoke tests.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0")


def main():
    print("A suspicious 'TrkSvr.exe' arrives from an energy-sector victim.")
    sample = build_trksvr_image()

    # --- Static pass -----------------------------------------------------
    print("\n[1] Static analysis")
    world = CampaignWorld(seed=1, with_internet=False)
    report = analyze_pe(sample, trust_store=world.pki.make_trust_store())
    for line in report.summary_lines():
        print("   ", line)

    print("\n[2] Resource recovery (breaking the XOR cipher)")
    pe = parse_pe(sample)
    for resource in pe.encrypted_resources():
        plaintext = resource.decrypt()
        label = plaintext[:40]
        try:
            inner = parse_pe(plaintext)
            label = "embedded %s PE, %d bytes" % (inner.machine_label,
                                                  len(plaintext))
        except Exception:
            label = plaintext[:40].decode("ascii", "replace")
        print("    %-8s key=%r -> %s" % (resource.name, resource.xor_key,
                                         label))

    # --- Dynamic pass -------------------------------------------------------
    print("\n[3] Sandbox detonation (a real Shamoon infection, contained)")
    sandbox = Sandbox(seed=99)
    sandbox_lan = Lan(sandbox.kernel, "sandbox-net")
    sandbox_lan.attach(sandbox.host)
    shamoon = Shamoon(sandbox.kernel, sandbox.world,
                      sandbox_lan.domain_admin_credential,
                      ShamoonConfig())

    def detonate(host):
        shamoon.infect(host, via="sandbox")
        shamoon.detonate(host)

    behavior = sandbox.detonate(detonate, run_seconds=600.0)
    for line in behavior.summary_lines():
        print("   ", line)

    # --- Detection engineering -------------------------------------------------
    print("\n[4] Signature scan of the detonated sandbox")
    engine = SignatureEngine(default_signatures())
    findings = engine.scan_host(sandbox.host, raw=True)
    for signature, path in findings[:8]:
        print("    %-24s %s" % (signature.name, path))
    print("    families:", engine.families_found(findings))

    print("\n[5] Fleet IOC sweep (who else is hit?)")
    world2 = CampaignWorld(seed=2)
    lan = Lan(world2.kernel, "fleet")
    fleet = []
    for i in range(4 if QUICK else 5):
        host = world2.make_host("FLEET-%02d" % i,
                                file_and_print_sharing=True)
        lan.attach(host)
        fleet.append(host)
    intruder = Shamoon(world2.kernel, world2.pki,
                       lan.domain_admin_credential, ShamoonConfig())
    intruder.infect(fleet[1], via="initial")
    intruder.infect(fleet[3], via="initial")
    hits = default_iocs().infected_hosts(fleet)
    for hostname, families in sorted(hits.items()):
        print("    %-10s -> %s" % (hostname, families))
    print("\nVerdict: Disttrack/Shamoon. Wipe trigger date extracted;")
    print("recommendation: isolate shares, revoke the abused credential.")


if __name__ == "__main__":
    main()
