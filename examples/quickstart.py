"""Quickstart: a five-minute tour of the library.

Builds a small world, infects one machine with each of the three
modelled cyber weapons (in separate worlds!), and prints what happened.
Everything is simulated in memory — run it as often as you like.

    python examples/quickstart.py
"""

import os

from repro import (
    FlameEspionageCampaign,
    ShamoonWiperCampaign,
    StuxnetNatanzCampaign,
)

#: REPRO_EXAMPLE_QUICK=1 shrinks every scenario so the smoke tests can
#: run each example in seconds (tests/test_examples_smoke.py).
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0")


def banner(text):
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main():
    banner("1/3 STUXNET - sabotage an enrichment plant (paper SII, Fig. 1)")
    stuxnet = StuxnetNatanzCampaign(seed=7,
                                    centrifuge_count=60 if QUICK else 300,
                                    duration_days=30 if QUICK else 150).run()
    print("infection vectors:     ", stuxnet["infection_vectors"])
    print("PLC payloads armed:    ", stuxnet["payloads_armed"])
    print("attack cycles run:     ", stuxnet["attack_cycles"])
    print("centrifuges destroyed: ", "%d / %d"
          % (stuxnet["centrifuges_destroyed"], stuxnet["centrifuges_total"]))
    print("operator's HMI showed: ", "%.0f Hz (nothing to see here)"
          % stuxnet["operator_view_hz"])
    print("safety system tripped: ", stuxnet["safety_tripped"])

    banner("2/3 FLAME - industrial-scale espionage (paper SIII, Figs. 2-5)")
    flame = FlameEspionageCampaign(seed=8, victim_count=4 if QUICK else 8,
                                   duration_weeks=1 if QUICK else 2,
                                   ).run(suicide_at_end=True)
    print("victims infected:      ", flame["victims_infected"],
          "via", flame["infection_vectors"])
    print("C&C infrastructure:    ", "%d domains -> %d servers"
          % (flame["domains_registered"], flame["server_count"]))
    print("stolen per week:       ", "%.1f MB"
          % (flame["stolen_bytes_per_week"] / 1048576.0))
    print("documents recovered:   ", flame["documents_recovered"])
    print("after SUICIDE command: ", "%d active infections"
          % flame["active_infections"])

    banner("3/3 SHAMOON - maximum destruction on a date (paper SIV, Fig. 6)")
    shamoon = ShamoonWiperCampaign(seed=9,
                                   host_count=60 if QUICK else 200).run()
    print("workstations wiped:    ", shamoon["hosts_wiped"])
    print("still bootable:        ", shamoon["hosts_usable_after"])
    print("detonation instant:    ", shamoon["first_wipe_at"])
    print("overwrite fraction:    ", "%.1f%% (the JPEG bug, SIV.B)"
          % (100 * shamoon["overwrite_fraction"]))
    print()
    print("Done. See EXPERIMENTS.md for the full paper-vs-measured index.")


if __name__ == "__main__":
    main()
