"""Ensemble experiments: distributions instead of anecdotes.

The paper reports single trajectories — 984 degraded centrifuges, one
Aramco wipe-out, one Flame exfil volume.  This example reruns a
campaign as a seeded Monte-Carlo ensemble: every replica forks its own
RNG stream from (base seed, replica index), workers reduce their runs
to scalars before anything crosses the process boundary, and the
aggregation layer reports mean/stddev/percentiles/CI per measurement.

It then repeats the sweep under a fault-injection profile (a staggered
registrar takedown of the C&C domains) to show how the *distribution*
of outcomes shifts when the infrastructure is under attack.

    python examples/ensemble_sweep.py
"""

import os

from repro import CampaignSpec, SweepConfig, ensemble_table, run_sweep

#: REPRO_EXAMPLE_QUICK=1 shrinks the ensembles for the smoke tests.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0")


def main():
    replicas = 4 if QUICK else 12
    workers = min(4, os.cpu_count() or 1)

    print("Sweeping the Flame espionage campaign: %d seeded replicas..."
          % replicas)
    spec = CampaignSpec.quick("flame")
    clean = run_sweep(spec, SweepConfig(replicas=replicas, workers=workers,
                                        base_seed=2012))
    print("  mode=%s workers=%d wall=%.2fs"
          % (clean.mode, clean.workers, clean.wall_seconds))
    print(ensemble_table("Flame, clean infrastructure (%d replicas)"
                         % replicas, clean.aggregate()))

    print("\nSame ensemble under a staggered C&C takedown sweep...")
    faulted_spec = CampaignSpec.quick("flame",
                                      fault_profile="takedown-sweep")
    faulted = run_sweep(faulted_spec,
                        SweepConfig(replicas=replicas, workers=workers,
                                    base_seed=2012))
    print(ensemble_table("Flame, takedown-sweep faults (%d replicas)"
                         % replicas, faulted.aggregate()))

    stolen_clean = clean.aggregate()["stolen_bytes_total"]["mean"]
    stolen_faulted = faulted.aggregate()["stolen_bytes_total"]["mean"]
    print("\nmean stolen bytes: %.0f clean vs %.0f under takedowns "
          "(%.0f%% retained via rotation + courier fallback)"
          % (stolen_clean, stolen_faulted,
             100.0 * stolen_faulted / stolen_clean if stolen_clean else 0.0))
    print("Same base seed, same replica seeds: only the faults differed.")


if __name__ == "__main__":
    main()
