"""Shamoon against a large oil company (paper SIV / Fig. 6).

One infected machine on August 1st; share-based spread with a stolen
domain-admin credential; 30,000 workstations detonating together at the
hardcoded instant — 2012-08-15 08:08 UTC.

    python examples/shamoon_aramco.py           (2,000 hosts, quick)
    python examples/shamoon_aramco.py --full    (30,000 hosts, ~1 GB RAM)
"""

import os
import sys

from repro import ShamoonWiperCampaign

#: REPRO_EXAMPLE_QUICK=1 shrinks the organisation so the smoke tests
#: can run this example in seconds (overridden by --full).
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0")


def main(full=False):
    if full:
        host_count = 30_000
    else:
        host_count = 80 if QUICK else 2_000
    print("Building a %d-workstation organisation..." % host_count)
    campaign = ShamoonWiperCampaign(seed=2012, host_count=host_count,
                                    docs_per_host=2)
    print("Patient zero infected on 2012-08-01; spreading over shares...")
    result = campaign.run()

    print()
    print("workstations infected:   %d" % result["infected_hosts"])
    print("detonation instant:      %s  (hardcoded trigger)"
          % result["first_wipe_at"])
    print("workstations wiped:      %d" % result["hosts_wiped"])
    print("still bootable:          %d  (MBR + active partition gone)"
          % result["hosts_usable_after"])
    print("user files overwritten:  %d" % result["files_overwritten"])
    print("   ...but only %.1f%% of their bytes: the wiper writes just"
          % (100 * result["overwrite_fraction"]))
    print("   the upper part of the burning-flag JPEG (the SIV.B bug).")
    print("reporter call-backs:     %d HTTP GETs with domain/count/ip/f1.inf"
          % result["reports_received"])
    print()
    print("The paper counts ~30,000 destroyed workstations at Saudi Aramco;")
    print("this run destroyed 100%% of a %d-host org the same way."
          % host_count)


if __name__ == "__main__":
    main(full="--full" in sys.argv[1:])
