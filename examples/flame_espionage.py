"""Flame espionage, end to end (paper SIII / Figs. 2-5).

Builds the full Fig. 4 infrastructure (80 domains, 22 servers, one
attack center), infects a ministry LAN through the Windows-Update MITM,
runs the two-phase exfiltration loop with the operator console, ships a
Lua module update, exfiltrates from an air-gapped island over a USB
courier, and finally broadcasts SUICIDE.

    python examples/flame_espionage.py
"""

import os

from repro import CampaignWorld, build_flame_infrastructure, build_office_lan
from repro.core.environments import place_bluetooth_neighborhood
from repro.malware.flame import Flame, FlameOperatorConsole
from repro.malware.flame.scripts import JIMMY_V2_SOURCE
from repro.malware.flame.suicide import forensic_residue
from repro.netsim import Lan, run_windows_update
from repro.usb import UsbDrive

DAY = 86400.0

#: REPRO_EXAMPLE_QUICK=1 shrinks the LAN and the espionage window so
#: the smoke tests can run this example in seconds.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0")


def main():
    world = CampaignWorld(seed=2012)
    kernel = world.kernel
    infra = build_flame_infrastructure(world)
    print("C&C platform: %d domains -> %d servers -> 1 attack center"
          % (len(infra["pool"]), len(infra["servers"])))
    geography = infra["pool"].country_histogram()
    print("  fake registrants by country:", dict(sorted(geography.items())))

    lan, hosts = build_office_lan(world, "ministry", 4 if QUICK else 10,
                                  docs_per_host=3 if QUICK else 8,
                                  microphone_fraction=0.3,
                                  bluetooth_fraction=0.3)
    place_bluetooth_neighborhood(world, hosts)
    flame = Flame(kernel, world.pki,
                  default_domains=infra["default_domains"],
                  update_registry=world.update_registry,
                  coordinator_public_key=infra["center"].coordinator_public_key,
                  bluetooth_neighborhood=world.bluetooth)
    console = FlameOperatorConsole(infra["center"])

    print("\nPatient zero infected:", hosts[0].hostname)
    flame.infect(hosts[0], via="initial")
    kernel.run_for(3 * DAY)
    print("  on-disk footprint grew to %.0f MB after C&C contact"
          % (flame.footprint_bytes(hosts[0]) / 1048576.0))

    print("\nThe rest of the LAN catches the fake Windows update (Fig. 2):")
    for victim in hosts[1:]:
        lan.browser_start(victim)           # WPAD -> SNACK's fake proxy
        outcome = run_windows_update(victim, lan, world.update_registry)
        print("  %-14s installed=%s signer=%r"
              % (victim.hostname, outcome["installed"], outcome["signer"]))

    days = 3 if QUICK else 14
    print("\n%d days of espionage with daily operator reviews..." % days)
    infra["center"].push_module_update("jimmy", JIMMY_V2_SOURCE)
    for day in range(days):
        kernel.run_for(DAY)
        console.review_cycle()
    stolen = sum(s.bytes_received for s in infra["servers"])
    weeks = days / 7.0
    print("  entries uploaded: %d" % flame.stats["entries_uploaded"])
    print("  stolen data on servers: %.1f MB (%.2f MB/server-week)"
          % (stolen / 1048576.0,
             stolen / len(infra["servers"]) / weeks / 1048576.0))
    print("  metadata reviewed: %d, files requested: %d, recovered: %d"
          % (console.metadata_reviewed, console.files_requested,
             console.documents_recovered))
    print("  JIMMY hot-swapped to v%d" % flame.modules.versions()["jimmy"])

    print("\nAir-gapped island + USB courier (SIII.B):")
    island_lan = Lan(kernel, "protected-zone", internet=None)
    island = world.make_host("ISOLATED-01")
    island_lan.attach(island)
    island.vfs.write("c:\\users\\vip\\documents\\secret-treaty.docx",
                     b"T" * 5000)
    flame.infect(island, via="usb-lnk")
    kernel.run_for(2 * DAY)
    courier = UsbDrive("courier-stick")
    hosts[0].insert_usb(courier, open_in_explorer=False)   # stamp: internet
    island.insert_usb(courier, open_in_explorer=False)     # store docs
    hosts[0].insert_usb(courier, open_in_explorer=False)   # flush to C&C
    print("  documents couriered out of the air gap:",
          flame.stats["courier_documents"])

    print("\nKaspersky publishes. The attackers press the button:")
    infra["center"].broadcast_suicide()
    kernel.run_for(DAY)
    residue = sum(len(forensic_residue(h)) for h in hosts + [island])
    print("  active infections:", len(flame.active_infections()))
    print("  forensic residue on all disks:", residue, "files")
    print("\nFlame went dark overnight.")


if __name__ == "__main__":
    main()
