"""Stuxnet at Natanz, narrated step by step (paper SII / Fig. 1).

Instead of the turn-key campaign, this example drives each stage of the
kill chain by hand so you can watch the three compromise levels happen:

1. Windows   - a contractor's USB stick, the LNK zero-day, EoP, rootkit;
2. Step 7    - the s7otbxdx.dll swap when the engineer opens a project;
3. PLC       - fingerprint, frequency attack, record/replay blinding.

    python examples/stuxnet_natanz.py
"""

import os

from repro import CampaignWorld, build_natanz_plant
from repro.malware.stuxnet import Stuxnet
from repro.usb import UsbDrive

DAY = 86400.0

#: REPRO_EXAMPLE_QUICK=1 shrinks the plant and the campaign window so
#: the smoke tests can run this example in seconds.
QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "") not in ("", "0")


def main():
    world = CampaignWorld(seed=2010)
    kernel = world.kernel
    plant = build_natanz_plant(world,
                               centrifuge_count=96 if QUICK else 984,
                               workstation_count=1 if QUICK else 3)
    step7 = plant["step7"]
    plc = plant["plc"]
    engineer_pc = plant["engineering_host"]

    print("Plant online: %d centrifuges behind %s, drives by %s"
          % (sum(len(c) for c in plant["cascades"]), plc.name,
             " + ".join(plant["bus"].vendors())))
    kernel.run_for(2 * DAY)
    print("Steady state: cascade at %.0f Hz, enriching." % plc.actual_frequency())

    # --- Level 1: compromising Windows ---------------------------------
    print("\n[Level 1] A contractor's USB stick arrives...")
    stuxnet = Stuxnet(kernel, world.pki)
    stick = stuxnet.weaponize_drive(UsbDrive("contractor-stick"))
    engineer_pc.insert_usb(stick)  # Explorer renders the icons...
    print("  LNK exploit fired:", engineer_pc.is_infected_by("stuxnet"))
    print("  rootkit installed:",
          engineer_pc.hostname in stuxnet.rootkit_hosts,
          "(drivers signed by stolen JMicron/Realtek certs)")
    print("  dropper visible to the user's file browser?",
          engineer_pc.vfs.exists("c:\\windows\\system32\\winsta.exe"))
    print("  ...but a forensic (raw) disk scan finds it:",
          engineer_pc.vfs.exists("c:\\windows\\system32\\winsta.exe",
                                 raw=True))

    # --- Level 2: compromising Step 7 -----------------------------------
    print("\n[Level 2] The engineer opens the cascade project...")
    step7.open_project(plant["project"].folder)
    step7.download_project(plant["project"], plc)
    step7.monitor_frequency(plc)
    infection = stuxnet.step7_infections[engineer_pc.hostname]
    print("  project folders infected:", infection.infected_project_folders)
    print("  s7otbxdx.dll swapped; original renamed to s7otbxsx.dll:",
          engineer_pc.vfs.exists("c:\\windows\\system32\\s7otbxsx.dll",
                                 raw=True))

    # --- Level 3: compromising the PLC -----------------------------------
    print("\n[Level 3] PLC fingerprint matched; payload armed:",
          list(infection.plc_payloads))
    print("  blocks really on the PLC:   ", plc.block_names())
    print("  blocks the engineer can see:", step7.list_plc_blocks(plc))

    months = 1 if QUICK else 8
    print("\nRunning %d month%s of plant operation..."
          % (months, "" if months == 1 else "s"))
    kernel.run_for(months * 30 * DAY)
    plant["bus"].sync_all()
    destroyed = sum(c.destroyed_count() for c in plant["cascades"])
    total = sum(len(c) for c in plant["cascades"])
    payload = next(iter(infection.plc_payloads.values()))
    print("  attack cycles completed:", payload.cycles_completed)
    print("  centrifuges destroyed:  %d / %d" % (destroyed, total))
    print("  operator HMI still says: %.0f Hz"
          % step7.monitor_frequency(plc))
    print("  digital safety system tripped:", plant["safety"].tripped)
    print("\nEverything looked normal while the cascade tore itself apart.")


if __name__ == "__main__":
    main()
