"""Hybrid public-key sealing for stolen data.

§III.B: "The data stolen ... is encrypted using a public key available on
the server. The corresponding private key is only known by the attack
coordinator in the attack center. Even the admin and operator do not know
the private key and hence do not have access to the stolen data."

RSA can only seal a modulus-sized payload, so (as real systems do) a
random session key is sealed with RSA and the body is encrypted with a
stream cipher under that key.
"""

import hashlib

from repro.crypto.ciphers import xor_stream
from repro.pe.format import ByteReader, pack_bytes


class SealedBlob:
    """An encrypted payload only the private-key holder can open."""

    def __init__(self, sealed_key, ciphertext):
        self.sealed_key = sealed_key
        self.ciphertext = ciphertext

    @property
    def size(self):
        return len(self.ciphertext)

    def to_bytes(self):
        key_bytes = self.sealed_key.to_bytes(
            (self.sealed_key.bit_length() + 7) // 8 or 1, "big"
        )
        return pack_bytes(key_bytes) + pack_bytes(self.ciphertext)

    @classmethod
    def from_bytes(cls, blob):
        reader = ByteReader(blob)
        sealed_key = int.from_bytes(reader.length_prefixed_bytes(), "big")
        ciphertext = reader.length_prefixed_bytes()
        return cls(sealed_key, ciphertext)

    def __repr__(self):
        return "SealedBlob(%d bytes)" % self.size


def seal(public_key, plaintext, nonce=b""):
    """Seal ``plaintext`` to ``public_key``.

    The session key is derived deterministically from the plaintext and
    a caller-supplied nonce so simulations stay reproducible; it is still
    only recoverable via the private key.
    """
    session_key = hashlib.sha256(b"session|" + nonce + b"|" + plaintext).digest()[:16]
    ciphertext = xor_stream(plaintext, session_key)
    sealed_key = public_key.encrypt(session_key)
    return SealedBlob(sealed_key, ciphertext)


def unseal(keypair, blob):
    """Open a :class:`SealedBlob` with the coordinator's private key."""
    session_key = keypair.decrypt(blob.sealed_key)
    return xor_stream(blob.ciphertext, session_key)
