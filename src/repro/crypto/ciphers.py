"""Symmetric ciphers used by the malware models.

Shamoon's resources are protected by "a simple Xor cipher" (§IV); Flame's
on-disk strings historically used byte-substitution/stream schemes, which
we model with a classic RC4 keystream.
"""


def xor_encrypt(data, key):
    """Encrypt ``data`` with a repeating-key XOR cipher.

    This is exactly the scheme the paper attributes to Shamoon's encrypted
    PE resources.  XOR is an involution, so :func:`xor_decrypt` is an
    alias for this function.
    """
    if not key:
        raise ValueError("XOR key must be non-empty")
    if isinstance(key, int):
        key = bytes([key])
    return bytes(byte ^ key[i % len(key)] for i, byte in enumerate(data))


#: Decryption is the same operation for XOR.
xor_decrypt = xor_encrypt


def xor_stream(data, key):
    """Repeating-key XOR tuned for large payloads.

    Semantically identical to :func:`xor_encrypt` but runs at C speed by
    XOR-ing whole big integers, so sealing a multi-megabyte stolen
    document does not dominate a simulation.
    """
    if not key:
        raise ValueError("XOR key must be non-empty")
    if not data:
        return b""
    repeated = key * (len(data) // len(key) + 1)
    keystream = repeated[: len(data)]
    value = int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
    return value.to_bytes(len(data), "big")


class Rc4Cipher:
    """Classic RC4 stream cipher (KSA + PRGA).

    Stateful: encrypting two messages in a row continues the keystream,
    which mirrors how a stream-cipher session over a C&C channel behaves.
    Create a fresh instance (or call :meth:`reset`) to restart.
    """

    def __init__(self, key):
        if not key:
            raise ValueError("RC4 key must be non-empty")
        self._key = bytes(key)
        self.reset()

    def reset(self):
        """Re-run the key schedule, restarting the keystream."""
        key = self._key
        state = list(range(256))
        j = 0
        for i in range(256):
            j = (j + state[i] + key[i % len(key)]) % 256
            state[i], state[j] = state[j], state[i]
        self._state = state
        self._i = 0
        self._j = 0

    def process(self, data):
        """Encrypt or decrypt ``data`` (the operations are identical)."""
        state = self._state
        i, j = self._i, self._j
        out = bytearray(len(data))
        for index, byte in enumerate(data):
            i = (i + 1) % 256
            j = (j + state[i]) % 256
            state[i], state[j] = state[j], state[i]
            out[index] = byte ^ state[(state[i] + state[j]) % 256]
        self._i, self._j = i, j
        return bytes(out)

    @classmethod
    def encrypt(cls, key, data):
        """One-shot encryption with a fresh keystream."""
        return cls(key).process(data)

    @classmethod
    def decrypt(cls, key, data):
        """One-shot decryption with a fresh keystream."""
        return cls(key).process(data)
