"""Hash functions, including a deliberately forgeable one.

Flame's GADGET module could sign fake Windows updates because Microsoft's
Terminal Services licensing certificates chained through "a flawed signing
algorithm" — MD5, against which the attackers mounted a chosen-prefix
collision (§III.A, Fig. 3).  Running a real MD5 collision search is out of
scope (and out of CPU budget), so the simulated PKI offers two signature
hash algorithms:

* ``"sha256"`` — a real, collision-resistant hash (via :mod:`hashlib`);
* ``"weakmd5"`` — a toy *linear* 128-bit checksum for which anyone can
  compute, in constant time, a 16-byte block that makes an arbitrary
  message collide with an arbitrary target digest.

Signing with ``weakmd5`` is therefore exactly as broken as the paper needs
it to be: the forgery experiment executes the collision for real instead
of stubbing it.
"""

import hashlib

#: Size in bytes of a :func:`weak_digest` output.
WEAK_DIGEST_SIZE = 16

_WEAK_MODULUS = 1 << (8 * WEAK_DIGEST_SIZE)


def sha256_digest(data):
    """Collision-resistant digest (real SHA-256)."""
    return hashlib.sha256(data).digest()


def weak_digest(data):
    """Linear 128-bit toy checksum: the sum of 16-byte blocks mod 2^128.

    Linearity is the (intentional) flaw: appending one crafted block can
    steer the digest to any target value.
    """
    state = len(data) % _WEAK_MODULUS
    for offset in range(0, len(data), WEAK_DIGEST_SIZE):
        block = data[offset : offset + WEAK_DIGEST_SIZE]
        block = block.ljust(WEAK_DIGEST_SIZE, b"\x00")
        state = (state + int.from_bytes(block, "big")) % _WEAK_MODULUS
    return state.to_bytes(WEAK_DIGEST_SIZE, "big")


def forge_collision_block(prefix, target_digest):
    """Return a 16-byte block B with ``weak_digest(prefix + B) == target``.

    The returned block is the "collision" a chosen-prefix attack would
    search for against a weak real-world hash.  ``prefix`` must already be
    block-aligned (pad with zeros first if it is not); this mirrors the
    alignment games real collision attacks play.
    """
    if len(prefix) % WEAK_DIGEST_SIZE != 0:
        raise ValueError(
            "prefix must be a multiple of %d bytes; pad it first"
            % WEAK_DIGEST_SIZE
        )
    if len(target_digest) != WEAK_DIGEST_SIZE:
        raise ValueError("target digest must be %d bytes" % WEAK_DIGEST_SIZE)
    current = int.from_bytes(weak_digest(prefix), "big")
    # Appending one block adds (block value + 16) to the running state:
    # the block's integer value plus the length increase of 16 bytes.
    target = int.from_bytes(target_digest, "big")
    needed = (target - current - WEAK_DIGEST_SIZE) % _WEAK_MODULUS
    return needed.to_bytes(WEAK_DIGEST_SIZE, "big")


_DIGESTS = {
    "sha256": sha256_digest,
    "weakmd5": weak_digest,
}


def digest(algorithm, data):
    """Dispatch to a named digest algorithm ('sha256' or 'weakmd5')."""
    try:
        function = _DIGESTS[algorithm]
    except KeyError:
        raise ValueError("unknown digest algorithm: %r" % algorithm) from None
    return function(data)


def is_collision_forgeable(algorithm):
    """True for algorithms an attacker can forge collisions against."""
    return algorithm == "weakmd5"
