"""Schoolbook RSA for the simulated PKI and C&C data sealing.

Flame's stolen data is "encrypted using a public key available on the
server" whose private half only the attack coordinator holds (§III.B);
certificates in :mod:`repro.certs` carry RSA signatures over a named
digest.  Keys are small (default 512-bit modulus) because the simulation
needs speed, not security.
"""

import hashlib

from repro.crypto.hashes import digest as _digest


def _miller_rabin(candidate, witnesses):
    """Deterministic-enough Miller-Rabin test with the given witnesses."""
    if candidate < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if candidate % small == 0:
            return candidate == small
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in witnesses:
        a %= candidate
        if a in (0, 1, candidate - 1):
            continue
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def _derive_prime(seed_material, bits):
    """Deterministically derive a ``bits``-bit prime from seed material.

    We stretch the seed with SHA-256 counters, set the top two bits and
    the low bit, and walk forward to the next prime.  Deterministic key
    generation keeps whole simulations reproducible from a single seed.
    """
    counter = 0
    while True:
        stream = b""
        while len(stream) * 8 < bits:
            stream += hashlib.sha256(
                b"%s|%d|%d" % (seed_material, counter, len(stream))
            ).digest()
        candidate = int.from_bytes(stream[: (bits + 7) // 8], "big")
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        candidate &= (1 << bits) - 1
        for _ in range(4096):
            if _miller_rabin(candidate, _MR_WITNESSES):
                return candidate
            candidate += 2
        counter += 1


class RsaPublicKey:
    """RSA public half: verify signatures, seal (encrypt) small payloads."""

    def __init__(self, modulus, exponent=65537):
        self.modulus = modulus
        self.exponent = exponent

    @property
    def bits(self):
        return self.modulus.bit_length()

    def fingerprint(self):
        """Short stable identifier for this key."""
        material = b"%d:%d" % (self.modulus, self.exponent)
        return hashlib.sha256(material).hexdigest()[:16]

    def verify(self, data, signature, algorithm="sha256"):
        """True if ``signature`` is a valid signature of ``data``.

        The scheme is textbook "hash-then-exponentiate": the signature is
        valid when sig^e mod n equals the digest of the data.  Crucially,
        the *security* of the scheme is the security of the digest — a
        signature made over a ``weakmd5`` collision of the data verifies
        just as happily, which is the flaw Fig. 3 exploits.
        """
        expected = int.from_bytes(_digest(algorithm, data), "big") % self.modulus
        return pow(signature, self.exponent, self.modulus) == expected

    def encrypt(self, plaintext):
        """Seal a small payload (must fit in the modulus)."""
        value = int.from_bytes(b"\x01" + plaintext, "big")
        if value >= self.modulus:
            raise ValueError(
                "plaintext too large for %d-bit modulus" % self.bits
            )
        return pow(value, self.exponent, self.modulus)

    def __eq__(self, other):
        return (
            isinstance(other, RsaPublicKey)
            and self.modulus == other.modulus
            and self.exponent == other.exponent
        )

    def __hash__(self):
        return hash((self.modulus, self.exponent))

    def __repr__(self):
        return "RsaPublicKey(bits=%d, fp=%s)" % (self.bits, self.fingerprint())


class RsaKeyPair:
    """Full RSA key pair: everything the public key does, plus sign/unseal."""

    def __init__(self, p, q, exponent=65537):
        if p == q:
            raise ValueError("p and q must differ")
        self._p = p
        self._q = q
        modulus = p * q
        phi = (p - 1) * (q - 1)
        self._d = pow(exponent, -1, phi)
        self.public = RsaPublicKey(modulus, exponent)

    @property
    def modulus(self):
        return self.public.modulus

    def sign(self, data, algorithm="sha256"):
        """Sign the digest of ``data`` under the named algorithm."""
        value = int.from_bytes(_digest(algorithm, data), "big") % self.modulus
        return pow(value, self._d, self.modulus)

    def decrypt(self, ciphertext):
        """Unseal a payload produced by :meth:`RsaPublicKey.encrypt`."""
        value = pow(ciphertext, self._d, self.modulus)
        raw = value.to_bytes((value.bit_length() + 7) // 8, "big")
        if not raw.startswith(b"\x01"):
            raise ValueError("decryption failed: bad framing")
        return raw[1:]


def generate_keypair(label, bits=512):
    """Deterministically generate a key pair from a string label.

    Two calls with the same label yield the same key, so a simulation can
    reconstruct "the coordinator's key" anywhere without shared state.
    """
    if bits < 128:
        raise ValueError("modulus below 128 bits cannot frame payloads")
    half = bits // 2
    label_bytes = label.encode("utf-8") if isinstance(label, str) else label
    p = _derive_prime(b"p:" + label_bytes, half)
    q = _derive_prime(b"q:" + label_bytes, bits - half)
    if p == q:
        q = _derive_prime(b"q2:" + label_bytes, bits - half)
    return RsaKeyPair(p, q)
