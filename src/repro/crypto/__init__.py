"""Toy cryptography substrate.

Nothing here is real-world secure, deliberately: the point is to model the
*roles* cryptography plays in the paper's campaign —

* Shamoon hides its wiper/reporter resources behind a **simple XOR
  cipher** (§IV);
* Flame seals stolen data with a **public key** whose private half only
  the attack coordinator holds (§III.B);
* the Flame GADGET module forges a code-signing certificate by exploiting
  a **collision-forgeable hash** in an old signing algorithm (Fig. 3).

The forgeable hash (:func:`weak_digest` / :func:`forge_collision_block`)
is a linear toy function: it exists so the certificate-forgery experiment
can actually *execute* the attack rather than assert it.
"""

from repro.crypto.ciphers import Rc4Cipher, xor_decrypt, xor_encrypt
from repro.crypto.hashes import (
    WEAK_DIGEST_SIZE,
    digest,
    forge_collision_block,
    is_collision_forgeable,
    sha256_digest,
    weak_digest,
)
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.crypto.sealed import SealedBlob, seal, unseal

__all__ = [
    "WEAK_DIGEST_SIZE",
    "Rc4Cipher",
    "RsaKeyPair",
    "RsaPublicKey",
    "SealedBlob",
    "digest",
    "forge_collision_block",
    "generate_keypair",
    "is_collision_forgeable",
    "seal",
    "sha256_digest",
    "unseal",
    "weak_digest",
    "xor_decrypt",
    "xor_encrypt",
]
