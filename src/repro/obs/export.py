"""Exporters: JSONL traces, Prometheus text dumps, figure edge lists.

Everything here is a pure function of a finished kernel (its spans,
trace, and metric snapshot), normalised so that two runs with the same
seed export byte for byte the same artefacts — the property the golden
-trace conformance suite pins.

The per-figure exporters regenerate the paper's six data-flow diagrams
as edge lists: every :class:`~repro.sim.trace.TraceRecord` is one arrow
(actor → target, labelled by action) and every span is one stage box
(parent stage → child stage), filtered down to the records each figure
draws.
"""

import hashlib
import json

#: Bump when the line shape changes, so stale golden digests fail with
#: an explanation instead of a bare mismatch.
EXPORT_FORMAT = 1


def jsonable(value):
    """Reduce any trace-detail value to a deterministic JSON value.

    Bytes render as a size marker (payload bodies are simulation
    filler, and megabytes of base64 would drown the export); arbitrary
    objects render as their type name — their default ``repr`` embeds a
    memory address, which would break byte-identical exports.  Non-
    finite floats render as strings because strict JSON has no literal
    for them (fault windows use ``inf`` for "never lifts").
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") \
            else repr(value)
    if isinstance(value, bytes):
        return "<%d bytes>" % len(value)
    if isinstance(value, dict):
        return {str(key): jsonable(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((jsonable(item) for item in value), key=repr)
    return "<%s>" % type(value).__name__


def jsonable_ordered(value):
    """Like :func:`jsonable`, but dicts keep their insertion order.

    Checkpoint digests are taken over canonical sorted JSON either
    way; preserving the order in the stored payload means values like
    a campaign result's ``infection_vectors`` tally round-trip exactly,
    so a resumed run prints byte-identically to the original.
    """
    if isinstance(value, dict):
        return {str(key): jsonable_ordered(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable_ordered(item) for item in value]
    return jsonable(value)


def trace_lines(kernel, meta=None):
    """Yield the export as primitive dicts, one per eventual JSONL line.

    Order: one ``meta`` header, spans in begin order, trace records in
    append order, metrics sorted by name — all deterministic for a
    seeded run.
    """
    header = {"kind": "meta", "format": EXPORT_FORMAT,
              "spans": len(kernel.spans), "records": len(kernel.trace),
              "sim_seconds": kernel.clock.now}
    evicted = getattr(kernel.trace, "evicted_records", 0)
    if evicted:
        # Only present for bounded traces, so unbounded exports (and
        # their committed golden digests) are byte-identical.
        header["records_evicted"] = evicted
    if meta:
        header.update({str(k): jsonable(v) for k, v in meta.items()})
    yield header
    for span in kernel.spans:
        line = span.as_dict()
        line["attrs"] = jsonable(line["attrs"])
        line["kind"] = "span"
        yield line
    for record in kernel.trace:
        yield {"kind": "record", "time": record.time, "actor": record.actor,
               "action": record.action, "target": record.target,
               "detail": jsonable(record.detail)}
    snapshot = kernel.metrics.snapshot()
    for name in snapshot:
        line = {"kind": "metric", "name": name}
        line.update(jsonable(snapshot[name]))
        yield line


def _dump(line):
    return json.dumps(line, sort_keys=True, separators=(",", ":"))


def write_jsonl(kernel, stream, meta=None):
    """Write the full export to ``stream``; returns the line count."""
    count = 0
    for line in trace_lines(kernel, meta=meta):
        stream.write(_dump(line))
        stream.write("\n")
        count += 1
    return count


def export_digest(kernel, meta=None):
    """SHA-256 over the normalised JSONL export.

    This is what the golden-trace conformance suite commits: cheap to
    store, and any behavioural drift — a reordered event, a changed
    metric, a renamed span — changes it.
    """
    digest = hashlib.sha256()
    for line in trace_lines(kernel, meta=meta):
        digest.update(_dump(line).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


# -- Prometheus-style text dump ------------------------------------------------

def _prom_name(name):
    """Flatten a dotted metric name to the Prometheus character set."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    flat = "".join(out)
    return flat if not flat[:1].isdigit() else "_" + flat


def prometheus_text(snapshot):
    """Render a metrics snapshot in the Prometheus exposition format."""
    lines = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        flat = _prom_name(name)
        lines.append("# TYPE %s %s" % (flat, entry["type"]))
        if entry["type"] == "histogram":
            cumulative = 0
            for bound, count in zip(entry["bounds"], entry["counts"]):
                cumulative += count
                lines.append('%s_bucket{le="%g"} %d'
                             % (flat, bound, cumulative))
            cumulative += entry["counts"][-1]
            lines.append('%s_bucket{le="+Inf"} %d' % (flat, cumulative))
            lines.append("%s_sum %s" % (flat, _prom_value(entry["sum"])))
            lines.append("%s_count %d" % (flat, entry["count"]))
        else:
            lines.append("%s %s" % (flat, _prom_value(entry["value"])))
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_value(value):
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(value)


# -- figure edge lists ---------------------------------------------------------

#: Each paper figure, as the span subtrees and trace filters that
#: regenerate it.  Filters use :meth:`TraceLog.query` syntax (trailing
#: ``*`` is a prefix match); a record matching several filters counts
#: once.
FIGURES = {
    "fig1-stuxnet-operation": {
        "title": "Fig. 1: Stuxnet self-guided operation "
                 "(USB -> Windows -> Step 7 -> PLC)",
        "span_prefixes": ("stuxnet.",),
        "filters": ({"actor": "stuxnet"}, {"action": "stuxnet-*"},
                    {"action": "step7-*"}, {"action": "plc-*"},
                    {"action": "lnk-exploit-fired"}, {"action": "usb-*"},
                    {"action": "mof-launched-dropper"},
                    {"action": "spooler-files-dropped"}),
    },
    "fig2-flame-wu-mitm": {
        "title": "Fig. 2: Flame spreading via the Windows Update MITM",
        "span_prefixes": ("flame.wu_spread", "flame.infect"),
        "filters": ({"action": "snack-*"}, {"action": "windows-update-*"},
                    {"actor": "flame", "action": "infection"}),
    },
    "fig3-flame-exfiltration": {
        "title": "Fig. 3: Flame's staged collection and exfiltration",
        "span_prefixes": ("flame.collect", "flame.beetlejuice",
                          "flame.cnc_exchange", "flame.patient_zero",
                          "flame.operations"),
        "filters": ({"actor": "flame"}, {"action": "flame-*"},
                    {"action": "usb-inserted"}),
    },
    "fig4-cnc-platform": {
        "title": "Fig. 4: the C&C platform under rotation, takedown, "
                 "and retry",
        "span_prefixes": ("shamoon.report",),
        "filters": ({"actor": "faults"}, {"actor": "retry"},
                    {"action": "cnc-unreachable"}),
    },
    "fig5-cnc-server": {
        "title": "Fig. 5: inside one C&C server (newsforyou dead drop)",
        "span_prefixes": (),
        "filters": ({"action": "cnc-*"}, {"action": "suicide-broadcast"}),
    },
    "fig6-shamoon-components": {
        "title": "Fig. 6: Shamoon's dropper, wiper, and reporter",
        "span_prefixes": ("shamoon.",),
        "filters": ({"actor": "shamoon"}, {"action": "shamoon-*"},
                    {"action": "report-lost"}, {"action": "boot-failed"}),
    },
}


def figure_edges(kernel, figure):
    """The edge list regenerating one paper figure from a finished run.

    Returns dicts ``{"src", "dst", "label", "count"}`` sorted by
    (src, dst, label).  Trace records contribute ``actor -> target``
    arrows labelled by action; spans contribute ``parent stage ->
    child stage`` arrows labelled ``"stage"``.
    """
    try:
        spec = FIGURES[figure]
    except KeyError:
        raise KeyError("unknown figure %r (expected one of %s)"
                       % (figure, sorted(FIGURES)))
    edges = {}
    seen = set()
    for filters in spec["filters"]:
        for record in kernel.trace.query(**filters):
            if id(record) in seen:
                continue
            seen.add(id(record))
            key = (record.actor, record.target or "", record.action)
            edges[key] = edges.get(key, 0) + 1
    for span in kernel.spans:
        if not any(span.name.startswith(prefix)
                   for prefix in spec["span_prefixes"]):
            continue
        parent = (kernel.spans.by_id(span.parent_id)
                  if span.parent_id else None)
        key = (parent.name if parent else "root", span.name, "stage")
        edges[key] = edges.get(key, 0) + 1
    return [{"src": src, "dst": dst, "label": label, "count": edges[key]}
            for key in sorted(edges)
            for src, dst, label in (key,)]


def export_figures(kernel):
    """Edge lists for every figure, keyed by figure name."""
    return {figure: figure_edges(kernel, figure) for figure in FIGURES}
