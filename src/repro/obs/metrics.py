"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Instrumentation hooks across the simulator (kernel, faults, retries,
network substrate, C&C servers, malware drivers) update one
:class:`MetricsRegistry` owned by the kernel.  Three properties make it
fit the Monte-Carlo sweep engine:

* **Deterministic** — no wall-clock, no randomness; two seeded runs
  produce identical snapshots.
* **Process-boundary safe** — :meth:`MetricsRegistry.snapshot` reduces
  everything to sorted primitive dicts, which is what sweep replicas
  ship home.
* **Mergeable** — :func:`merge_snapshots` combines snapshots so that
  merging equals observing the union of the underlying events, in any
  order (counters and histogram cells add; gauges take the max).
"""

import bisect

#: Default histogram bounds: powers-of-two-ish coverage from single
#: events to the tens of thousands a full Aramco-scale run produces.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0,
                   10000.0)

#: Virtual-day bounds for "infections over time" style histograms.
DAY_BUCKETS = (1.0, 2.0, 3.0, 7.0, 14.0, 30.0, 90.0, 180.0, 365.0)

#: Byte-size bounds for payload/upload histograms.
BYTE_BUCKETS = (256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
                1048576.0)


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counter %r cannot decrease (inc by %r)"
                             % (self.name, amount))
        self.value += amount
        return self.value

    def as_dict(self):
        return {"type": self.kind, "value": self.value}

    def __repr__(self):
        return "Counter(%r=%r)" % (self.name, self.value)


class Gauge:
    """A value that can move both ways (pending entries, live hosts)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value
        return self.value

    def inc(self, amount=1):
        self.value += amount
        return self.value

    def dec(self, amount=1):
        self.value -= amount
        return self.value

    def as_dict(self):
        return {"type": self.kind, "value": self.value}

    def __repr__(self):
        return "Gauge(%r=%r)" % (self.name, self.value)


class Histogram:
    """Fixed-bucket histogram (Prometheus-style, cumulative on export).

    ``bounds`` are the inclusive upper edges; one implicit overflow
    bucket catches everything above the last bound.  Counts are stored
    per bucket (not cumulative) so merging is element-wise addition.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, name, bounds=DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram %r needs at least one bound" % name)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram %r bounds must be strictly "
                             "increasing: %r" % (name, bounds))
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        return self.count

    def bucket_counts(self):
        """Per-bucket counts (last entry is the overflow bucket)."""
        return list(self.counts)

    def as_dict(self):
        return {"type": self.kind, "bounds": list(self.bounds),
                "counts": list(self.counts), "sum": self.sum,
                "count": self.count}

    def __repr__(self):
        return "Histogram(%r, n=%d, sum=%r)" % (self.name, self.count,
                                                self.sum)


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """Get-or-create home for every metric of one simulation."""

    def __init__(self):
        self._metrics = {}

    def _get_or_create(self, name, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError("metric %r already registered as %s, not %s"
                            % (name, metric.kind, cls.kind))
        return metric

    def counter(self, name):
        return self._get_or_create(name, Counter)

    def gauge(self, name):
        return self._get_or_create(name, Gauge)

    def histogram(self, name, buckets=DEFAULT_BUCKETS):
        metric = self._get_or_create(name, Histogram, buckets)
        if metric.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                "histogram %r already registered with bounds %r"
                % (name, metric.bounds))
        return metric

    # -- one-line instrumentation hooks ---------------------------------------

    def inc(self, name, amount=1):
        """Increment (creating if needed) the counter ``name``."""
        return self.counter(name).inc(amount)

    def set_gauge(self, name, value):
        return self.gauge(name).set(value)

    def observe(self, name, value, buckets=DEFAULT_BUCKETS):
        return self.histogram(name, buckets).observe(value)

    # -- introspection --------------------------------------------------------

    def __len__(self):
        return len(self._metrics)

    def __contains__(self, name):
        return name in self._metrics

    def get(self, name):
        return self._metrics.get(name)

    def value(self, name, default=0):
        """Scalar value of a counter/gauge (``default`` if unregistered)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise TypeError("metric %r is a histogram; read its snapshot"
                            % name)
        return metric.value

    def names(self):
        return sorted(self._metrics)

    def snapshot(self):
        """Sorted, picklable, primitive-only rendering of every metric.

        This is the artefact sweep replicas ship across the process
        boundary and the exporters serialise; equal simulations produce
        equal snapshots regardless of dispatch path.
        """
        return {name: self._metrics[name].as_dict()
                for name in sorted(self._metrics)}


def _merge_entry(name, left, right):
    if left["type"] != right["type"]:
        raise ValueError("cannot merge metric %r: %s vs %s"
                         % (name, left["type"], right["type"]))
    if left["type"] == "counter":
        return {"type": "counter", "value": left["value"] + right["value"]}
    if left["type"] == "gauge":
        # Replicas are independent simulations: there is no meaningful
        # "last write", so the merged gauge is the ensemble maximum.
        return {"type": "gauge", "value": max(left["value"], right["value"])}
    if left["type"] == "histogram":
        if left["bounds"] != right["bounds"]:
            raise ValueError("cannot merge histogram %r: bounds differ "
                             "(%r vs %r)" % (name, left["bounds"],
                                             right["bounds"]))
        return {
            "type": "histogram",
            "bounds": list(left["bounds"]),
            "counts": [a + b for a, b in zip(left["counts"],
                                             right["counts"])],
            "sum": left["sum"] + right["sum"],
            "count": left["count"] + right["count"],
        }
    raise ValueError("unknown metric type %r for %r" % (left["type"], name))


def merge_snapshots(*snapshots):
    """Combine snapshots as if one registry had observed everything.

    Counters and histogram cells add, gauges take the max — so the
    merge is associative, commutative, and (for counters/histograms)
    exactly equal to observing the union of the underlying events.
    """
    merged = {}
    for snapshot in snapshots:
        for name in sorted(snapshot):
            entry = snapshot[name]
            if name in merged:
                merged[name] = _merge_entry(name, merged[name], entry)
            else:
                merged[name] = _merge_entry(name, entry, _zero_like(entry))
    return {name: merged[name] for name in sorted(merged)}


def _zero_like(entry):
    """An identity element for :func:`_merge_entry` (also deep-copies)."""
    if entry["type"] == "histogram":
        return {"type": "histogram", "bounds": list(entry["bounds"]),
                "counts": [0] * len(entry["counts"]), "sum": 0.0,
                "count": 0}
    if entry["type"] == "gauge":
        return {"type": "gauge", "value": entry["value"]}
    return {"type": entry["type"], "value": 0}
