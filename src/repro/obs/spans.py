"""Kill-chain spans: named stages with virtual start/end times.

A :class:`Span` groups the flat :class:`~repro.sim.trace.TraceRecord`
stream into the stages the paper's figures are drawn from — e.g.
``stuxnet.usb_entry``, ``stuxnet.step7_infect``, ``flame.beetlejuice``,
``shamoon.wipe``.  Spans nest: the recorder keeps a stack, so a driver
span opened while a campaign span is live becomes its child, and the
exported trace reconstructs the whole kill chain as a tree.

Two APIs:

* ``with kernel.span("flame.beetlejuice", host=...):`` — the context
  manager, for stages that start and end inside one call frame (virtual
  time may still advance in between, e.g. around ``kernel.run_for``);
* :meth:`SpanRecorder.begin` / :meth:`SpanRecorder.finish` — for stages
  whose start and end live in different event callbacks (a retried
  report whose outcome arrives via ``on_success``/``on_give_up``).

Recording a span consumes no randomness and schedules no events, so
instrumented and uninstrumented runs of the same seed are identical.
"""

from contextlib import contextmanager

#: Span states.  ``open`` means the simulation ended before the stage
#: did — visible in exports rather than silently dropped.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_OPEN = "open"


class Span:
    """One named kill-chain stage with virtual start/end times."""

    __slots__ = ("span_id", "name", "start", "end", "parent_id", "status",
                 "attrs")

    def __init__(self, span_id, name, start, parent_id=None, attrs=None):
        self.span_id = span_id
        self.name = name
        self.start = start
        self.end = None
        self.parent_id = parent_id
        self.status = STATUS_OPEN
        self.attrs = dict(attrs) if attrs else {}

    @property
    def finished(self):
        return self.status != STATUS_OPEN

    @property
    def duration(self):
        """Virtual seconds the stage covered (None while still open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def as_dict(self):
        """Stable primitive rendering (export + digest input)."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "parent_id": self.parent_id,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __repr__(self):
        end = "..." if self.end is None else "%.2f" % self.end
        return "Span(#%d %s [%.2f, %s] %s)" % (
            self.span_id, self.name, self.start, end, self.status)


class SpanRecorder:
    """Owns every span of one simulation, in begin order.

    Attached to the kernel next to the :class:`~repro.sim.trace.TraceLog`;
    span ids are a simple sequence, so two seeded runs produce identical
    recorders.
    """

    def __init__(self, clock):
        self._clock = clock
        self._spans = []
        self._stack = []
        self._next_id = 1
        self._finish_listeners = []

    # -- recording ------------------------------------------------------------

    def on_finish(self, listener):
        """Register ``listener(span)`` to fire whenever a span closes.

        This is the stage-boundary hook the checkpoint layer uses: a
        campaign stage finishing is exactly the cut point a resumable
        run wants a snapshot at.  Listeners must be pure observers —
        recording no spans, scheduling no events, drawing no
        randomness.  Returns ``listener`` so callers can detach it
        later with :meth:`remove_finish_listener`.
        """
        self._finish_listeners.append(listener)
        return listener

    def remove_finish_listener(self, listener):
        """Detach a listener registered with :meth:`on_finish`."""
        if listener in self._finish_listeners:
            self._finish_listeners.remove(listener)

    def begin(self, name, parent=None, **attrs):
        """Open a span now; the caller must :meth:`finish` it later.

        ``parent`` defaults to the innermost span opened via the context
        manager (the enclosing campaign stage), so asynchronous driver
        spans still hang off the right branch of the kill chain.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(self._next_id, name, self._clock.now,
                    parent_id=parent.span_id if parent else None,
                    attrs=attrs)
        self._next_id += 1
        self._spans.append(span)
        return span

    def finish(self, span, status=STATUS_OK):
        """Close a span at the current virtual time."""
        if span.finished:
            return span
        span.end = self._clock.now
        span.status = status
        for listener in self._finish_listeners:
            listener(span)
        return span

    @contextmanager
    def span(self, name, **attrs):
        """Open a child span for the duration of the ``with`` block."""
        span = self.begin(name, **attrs)
        self._stack.append(span)
        try:
            yield span
        except BaseException:
            self.finish(span, STATUS_ERROR)
            raise
        finally:
            self._stack.pop()
            if not span.finished:
                self.finish(span, STATUS_OK)

    @property
    def current(self):
        """The innermost live context-manager span, or None."""
        return self._stack[-1] if self._stack else None

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self):
        """Primitive rendering of every span plus the open-span stack.

        Attrs pass through :func:`repro.obs.export.jsonable` so the
        payload is canonically JSON-serialisable and idempotent under a
        snapshot/load/snapshot round trip.
        """
        from repro.obs.export import jsonable

        spans = []
        for span in self._spans:
            entry = span.as_dict()
            entry["attrs"] = jsonable(entry["attrs"])
            spans.append(entry)
        return {
            "next_id": self._next_id,
            "stack": [span.span_id for span in self._stack],
            "spans": spans,
        }

    def load_state(self, state):
        """Replace the recorder's contents with a checkpointed snapshot.

        Rebuilding goes through plain :class:`Span` construction, not
        :meth:`begin`/:meth:`finish` — restoring state is not an event,
        so finish listeners never fire for replayed spans.
        """
        from repro.sim.errors import CheckpointError

        try:
            spans = []
            by_id = {}
            for entry in state["spans"]:
                span = Span(entry["span_id"], entry["name"], entry["start"],
                            parent_id=entry["parent_id"],
                            attrs=entry["attrs"])
                span.end = entry["end"]
                span.status = entry["status"]
                spans.append(span)
                by_id[span.span_id] = span
            stack = [by_id[span_id] for span_id in state["stack"]]
            next_id = int(state["next_id"])
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                "malformed span state: %s: %s"
                % (type(exc).__name__, exc)) from exc
        self._spans = spans
        self._stack = stack
        self._next_id = next_id

    # -- introspection --------------------------------------------------------

    def __len__(self):
        return len(self._spans)

    def __iter__(self):
        return iter(self._spans)

    def spans(self, name=None):
        """Spans in begin order; ``name`` matches exactly, or by prefix
        with a trailing ``*`` (the :meth:`TraceLog.query` convention)."""
        if name is None:
            return list(self._spans)
        if name.endswith("*"):
            prefix = name[:-1]
            return [s for s in self._spans if s.name.startswith(prefix)]
        return [s for s in self._spans if s.name == name]

    def names(self):
        """Set of distinct span names recorded so far."""
        return {span.name for span in self._spans}

    def by_id(self, span_id):
        """Span with the given id, or None (ids are 1-based, dense)."""
        index = span_id - 1
        if 0 <= index < len(self._spans):
            span = self._spans[index]
            if span.span_id == span_id:
                return span
        for span in self._spans:
            if span.span_id == span_id:
                return span
        return None

    def tree(self):
        """``{parent_name_or_None: [child spans]}`` adjacency mapping."""
        children = {}
        for span in self._spans:
            parent = self.by_id(span.parent_id) if span.parent_id else None
            children.setdefault(parent.name if parent else None,
                                []).append(span)
        return children
