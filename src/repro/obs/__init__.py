"""Observability: kill-chain spans, a metrics registry, and exporters.

The paper's evaluation is six architecture/data-flow figures plus prose
claims, so the reproduction's credibility rests on being able to *see*
each kill chain execute.  This package is the instrumentation layer the
rest of :mod:`repro` reports through:

* :mod:`repro.obs.spans` — named kill-chain stages with start/end
  virtual times, parent links, and status, recorded by the kernel's
  :class:`SpanRecorder` and opened via ``Kernel.span(...)``;
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms in a :class:`MetricsRegistry`, with process-boundary-safe
  snapshots that merge order-independently;
* :mod:`repro.obs.export` — JSONL traces, Prometheus-style text dumps,
  and per-figure data-flow edge lists regenerated from the spans and
  the trace.

Nothing here consumes randomness or schedules events, so enabling the
instrumentation never perturbs a seeded simulation: two runs with the
same seed export byte-identical traces.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.spans import Span, SpanRecorder
from repro.obs.export import (
    FIGURES,
    export_digest,
    figure_edges,
    prometheus_text,
    trace_lines,
    write_jsonl,
)

__all__ = [
    "Counter",
    "FIGURES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "export_digest",
    "figure_edges",
    "merge_snapshots",
    "prometheus_text",
    "trace_lines",
    "write_jsonl",
]
