"""Worker warm-up: importing this module pre-warms sweep caches.

The import side-effect is the whole point: it precompiles the Lua
sources behind Flame's scripted modules into the process-wide
``compile_cached`` store, so the first replica a sweep worker runs
pays no compile latency.  The module is consumed three ways, one per
start method:

* **forkserver** — preloaded into the fork server
  (``context.set_forkserver_preload``), so every worker it forks is
  born with a warm cache;
* **fork** — imported by the pool parent before spawning, so children
  inherit the warm cache through the fork;
* **spawn** — imported by each worker at startup before its first task.

A warm-up failure must never take a worker (or the fork server) down:
a build without the scripted-module stack still sweeps, it just
compiles lazily on first use.
"""

try:
    from repro.malware.flame.scripts import warm_compile_cache

    warm_compile_cache()
except Exception:  # pragma: no cover - defensive: partial builds
    pass
