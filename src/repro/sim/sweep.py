"""Process-parallel Monte-Carlo sweep engine.

Shards N seeded campaign replicas across a worker pool.  Three
properties make the ensemble trustworthy:

1. **Deterministic sharding** — replica *i*'s seed is a pure function
   of (base seed, *i*) (:func:`repro.core.ensemble.replica_seed`), so
   results are independent of worker count, chunk size, and dispatch
   order.
2. **Worker-side reduction** — each worker runs the full campaign but
   ships home only a :class:`~repro.core.ensemble.ReplicaResult`
   (scalars plus a trace digest); full event traces never cross the
   process boundary.
3. **A bit-identical serial fallback** — both paths execute the same
   :func:`~repro.core.ensemble.run_replica`, so ``mode="serial"``
   reproduces the parallel results exactly, replica for replica.

This module sits in :mod:`repro.sim` but drives :mod:`repro.core`
campaigns — the one place the layering inverts — so it imports the
ensemble helpers lazily inside functions to keep package import order
acyclic.
"""

import math
import multiprocessing
import os
import time

#: Prefer fork (cheap, no re-import) where the platform offers it; the
#: spawn fallback works because the chunk worker and everything it
#: pickles are module-level and primitive-only.
_START_METHOD = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                 else "spawn")


def _integral(name, value):
    """Validate a pool-shape parameter as a true positive integer.

    A float like ``replicas=2.5`` would pass a bare ``< 1`` check and
    then blow up as a ``TypeError`` deep inside ``range()`` in
    ``run_sweep``; bools are ints but are always a caller mistake here.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError("%s must be an integer, got %r" % (name, value))
    if value < 1:
        raise ValueError("%s must be >= 1, got %r" % (name, value))
    return value


class SweepConfig:
    """How to run an ensemble: size, pool shape, and dispatch mode.

    ``mode="supervised"`` routes dispatch through
    :mod:`repro.sim.supervisor` — isolated worker processes with crash
    recovery, per-replica timeouts, and poison-replica quarantine —
    instead of the bare ``multiprocessing.Pool``.
    """

    __slots__ = ("replicas", "workers", "chunk_size", "base_seed", "mode")

    MODES = ("auto", "serial", "parallel", "supervised")

    def __init__(self, replicas=16, workers=None, chunk_size=None,
                 base_seed=0, mode="auto"):
        replicas = _integral("replicas", replicas)
        if workers is None:
            workers = os.cpu_count() or 1
        workers = _integral("workers", workers)
        if chunk_size is not None:
            chunk_size = _integral("chunk_size", chunk_size)
        if mode not in self.MODES:
            raise ValueError("mode must be one of %s, got %r"
                             % (self.MODES, mode))
        self.replicas = replicas
        self.workers = workers
        self.chunk_size = chunk_size
        self.base_seed = base_seed
        self.mode = mode

    def resolved_mode(self):
        """The dispatch path ``run_sweep`` will actually take."""
        if self.mode != "auto":
            return self.mode
        if self.workers > 1 and self.replicas > 1:
            return "parallel"
        return "serial"

    def resolved_chunk_size(self):
        """Chunk size balancing dispatch overhead against load balance.

        Four chunks per worker amortises per-task pickling while still
        smoothing over replicas with uneven runtimes.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(self.replicas / (self.workers * 4)))

    def __repr__(self):
        return ("SweepConfig(replicas=%d, workers=%d, chunk_size=%r, "
                "base_seed=%r, mode=%r)"
                % (self.replicas, self.workers, self.chunk_size,
                   self.base_seed, self.mode))


def shard_indices(replicas, chunk_size):
    """Split ``range(replicas)`` into consecutive chunks."""
    return shard_chunks(range(replicas), chunk_size)


def shard_chunks(indices, chunk_size):
    """Split an arbitrary replica-index list into consecutive chunks.

    The resume path runs only the indices a manifest is missing, which
    need not start at zero or be contiguous — but chunking stays purely
    positional, so sharding still never affects per-replica results.
    """
    indices = list(indices)
    return [indices[start:start + chunk_size]
            for start in range(0, len(indices), chunk_size)]


def _run_chunk(payload):
    """Pool worker: run one chunk of replicas, return their reductions."""
    from repro.core.ensemble import run_replica
    from repro.malware.flame.scripts import warm_compile_cache

    # Compile the scripted modules once per worker process; every
    # replica in this chunk (and later chunks on the same worker) then
    # reuses the cached chunks instead of re-lowering identical Lua
    # sources.
    warm_compile_cache()
    spec, base_seed, indices = payload
    return [run_replica(spec, index, base_seed) for index in indices]


class SweepResult:
    """An ensemble's replicas plus how they were produced.

    The derived views (:meth:`aggregate`, :meth:`merged_metrics`,
    :meth:`aggregate_metrics`) are memoised: a result is immutable once
    built, and the CLI renders the same aggregates two or three times
    per sweep (table, ``--json``, ``--metrics``), so each is computed
    once and the cached mapping returned — treat them as read-only.
    """

    __slots__ = ("spec", "mode", "workers", "chunk_size", "base_seed",
                 "replicas", "wall_seconds", "failures", "supervision",
                 "_cache")

    def __init__(self, spec, mode, workers, chunk_size, base_seed,
                 replicas, wall_seconds, failures=None, supervision=None):
        self.spec = spec
        self.mode = mode
        self.workers = workers
        self.chunk_size = chunk_size
        self.base_seed = base_seed
        #: :class:`~repro.core.ensemble.ReplicaResult` list, by index.
        self.replicas = replicas
        self.wall_seconds = wall_seconds
        #: :class:`~repro.core.ensemble.ReplicaFailure` list, by index —
        #: replicas the supervised path could not complete.  Aggregation
        #: tolerates the gaps: every derived view runs over whatever
        #: replicas exist.
        self.failures = list(failures or [])
        #: Supervision report (counters, spans) from the supervised
        #: path; None for serial/parallel dispatch.  Kept separate from
        #: the replica data because it is inherently wall-clock-bound
        #: and therefore nondeterministic.
        self.supervision = supervision
        self._cache = {}

    def _cached(self, key, compute):
        try:
            return self._cache[key]
        except KeyError:
            value = self._cache[key] = compute()
            return value

    def measurements(self):
        """Per-replica measurement dicts, in replica order."""
        return [replica.measurements for replica in self.replicas]

    def digests(self):
        """Per-replica trace digests, in replica order."""
        return [replica.trace_digest for replica in self.replicas]

    def metrics(self):
        """Per-replica metric snapshots, in replica order."""
        return [replica.metrics for replica in self.replicas]

    def quarantined(self):
        """Indices of poison replicas quarantined by the supervisor."""
        return sorted(failure.index for failure in self.failures
                      if failure.quarantined)

    def complete(self):
        """True when every requested replica produced a result."""
        return not self.failures

    def merged_metrics(self):
        """One ensemble-wide metrics snapshot (counters/histograms add)."""
        from repro.core.ensemble import merge_metric_snapshots

        return self._cached("merged_metrics",
                            lambda: merge_metric_snapshots(self.replicas))

    def aggregate(self):
        """Summary statistics per measurement key (see ensemble module)."""
        from repro.core.ensemble import aggregate

        return self._cached("aggregate", lambda: aggregate(self.replicas))

    def aggregate_metrics(self):
        """Summary statistics per metric across replicas."""
        from repro.core.ensemble import aggregate_metrics

        return self._cached("aggregate_metrics",
                            lambda: aggregate_metrics(self.replicas))

    def merge_replicas(self, more):
        """Splice replicas recovered from a resume manifest into this
        result, keeping index order.

        This is the one sanctioned mutation of a built result, so it
        also drops every memoised aggregate — the cached mappings were
        computed over the pre-merge ensemble and would silently
        misreport the merged one.  A duplicate index is always a
        caller bug (the resume path only re-runs replicas the manifest
        did *not* record) and raises rather than picking a winner.
        """
        merged = {replica.index: replica for replica in self.replicas}
        for replica in more:
            if replica.index in merged:
                raise ValueError(
                    "merge_replicas() got replica index %d twice"
                    % replica.index)
            merged[replica.index] = replica
        self.replicas = [merged[index] for index in sorted(merged)]
        self._cache.clear()
        return self

    def as_dict(self):
        """JSON-ready rendering (CLI ``--json`` and BENCH_sweep.json)."""
        return {
            "spec": self.spec.as_dict(),
            "mode": self.mode,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "base_seed": self.base_seed,
            "replica_count": len(self.replicas),
            "failure_count": len(self.failures),
            "quarantined": self.quarantined(),
            "wall_seconds": self.wall_seconds,
            "distinct_trace_digests": len(set(self.digests())),
            "replicas": [replica.as_dict() for replica in self.replicas],
            "failures": [failure.as_dict() for failure in self.failures],
            "aggregate": self.aggregate(),
            "metrics_merged": self.merged_metrics(),
            "metrics_aggregate": self.aggregate_metrics(),
            "supervision": self.supervision,
        }

    def __repr__(self):
        failed = (", %d failed" % len(self.failures)
                  if self.failures else "")
        return ("SweepResult(%r, %d replicas%s, mode=%s, %.2fs)"
                % (self.spec, len(self.replicas), failed, self.mode,
                   self.wall_seconds))


def run_sweep(spec, config=None, checkpoint_dir=None, resume=False,
              supervision=None, retry_quarantined=True, **overrides):
    """Run an ensemble of seeded replicas of ``spec``.

    Pass a :class:`SweepConfig`, or keyword overrides to build one
    (``run_sweep(spec, replicas=32, workers=8)``).  Returns a
    :class:`SweepResult` whose replicas are always in index order,
    whichever path produced them.

    With ``checkpoint_dir`` the sweep is resumable: a manifest pinning
    (spec, base seed, replica count) lands first, then each replica's
    reduction is written atomically the moment it streams back from a
    worker.  ``resume=True`` loads that manifest, validates it against
    the requested spec/config (raising the typed
    :class:`~repro.sim.errors.CheckpointError` on any mismatch), short-
    circuits every recorded replica, and runs only the missing ones —
    per-replica seeding makes the merged result byte-identical to an
    uninterrupted sweep, down to the trace digests.

    ``supervision`` (a :class:`~repro.sim.supervisor.SupervisorConfig`)
    or ``mode="supervised"`` routes dispatch through the supervised
    worker pool: crashes, hangs, and timeouts cost single replica
    attempts instead of the ensemble, and poison replicas land as
    :attr:`SweepResult.failures` (quarantine records persist in the
    manifest).  On resume, quarantined replicas are retried by default;
    ``retry_quarantined=False`` skips them and carries their failure
    records into the result instead — both choices are deterministic,
    because a retried replica re-runs from its pure ``replica_seed``.

    A ``KeyboardInterrupt`` mid-sweep tears the worker pool down hard
    but keeps the checkpoint manifest intact: every replica recorded
    before the interrupt is already flushed (the writes are atomic and
    per-replica), so ``--resume`` afterwards loses at most the work
    that was in flight.
    """
    if config is None:
        config = SweepConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a SweepConfig or keyword overrides, "
                        "not both")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    mode = config.resolved_mode()
    if supervision is not None:
        if mode == "serial":
            raise ValueError("serial mode cannot be supervised: "
                             "supervision needs worker processes")
        mode = "supervised"
    elif mode == "supervised":
        from repro.sim.supervisor import SupervisorConfig

        supervision = SupervisorConfig()
    from repro.core.ensemble import run_replica

    manifest = None
    completed = {}
    carried_failures = []
    if checkpoint_dir is not None:
        from repro.core.resume import SweepCheckpoint

        if resume:
            manifest = SweepCheckpoint.load(checkpoint_dir)
            manifest.validate_against(spec, config)
            completed = manifest.completed()
            if not retry_quarantined:
                carried_failures = [
                    failure
                    for index, failure in sorted(manifest.failures().items())
                    if failure.quarantined and index not in completed]
        else:
            manifest = SweepCheckpoint.create(checkpoint_dir, spec, config)
    skipped = {failure.index for failure in carried_failures}
    pending = [index for index in range(config.replicas)
               if index not in completed and index not in skipped]

    def record(replica):
        if manifest is not None:
            manifest.record(replica)
        return replica

    chunk_size = config.resolved_chunk_size()
    started = time.perf_counter()
    failures = []
    supervision_report = None
    if mode == "serial":
        replicas = [record(run_replica(spec, index, config.base_seed))
                    for index in pending]
        workers_used = 1
    elif mode == "supervised":
        from repro.sim.supervisor import supervise_sweep

        workers_used = min(config.workers, len(pending)) or 1
        replicas = []
        if pending:
            outcome = supervise_sweep(
                spec, config.base_seed, pending,
                workers=config.workers, chunk_size=chunk_size,
                supervision=supervision, record=record,
                record_failure=(manifest.record_failure
                                if manifest is not None else None))
            replicas = outcome.replicas
            failures = outcome.failures
            supervision_report = outcome.report
            workers_used = outcome.report["workers"]
    else:
        chunks = [(spec, config.base_seed, indices)
                  for indices in shard_chunks(pending, chunk_size)]
        # A fully-recorded resume has nothing pending: never spin up a
        # pool (Pool(processes=0) is an error) just to do no work.
        workers_used = min(config.workers, len(chunks)) or 1
        replicas = []
        if chunks:
            context = multiprocessing.get_context(_START_METHOD)
            # Stream the reduction: imap_unordered hands each chunk
            # back the moment its worker finishes, so reduced replicas
            # never queue up behind a straggler chunk the way
            # pool.map()'s ordered, hold-everything result list does —
            # and each replica is checkpointed as soon as it lands, so
            # a crash loses at most the in-flight chunks.  Replica
            # order is restored by the index sort below, so dispatch-
            # completion order never leaks into the result.
            pool = context.Pool(processes=workers_used)
            try:
                for chunk in pool.imap_unordered(_run_chunk, chunks):
                    replicas.extend(record(replica) for replica in chunk)
                pool.close()
            except KeyboardInterrupt:
                # Ctrl-C: workers may be mid-replica, so terminate
                # rather than close-and-drain — but every replica that
                # already streamed back went through record(), whose
                # manifest writes are atomic and per-replica, so the
                # checkpoint directory stays a valid resume point and
                # loses at most the in-flight chunks.
                pool.terminate()
                raise
            except BaseException:
                pool.terminate()
                raise
            finally:
                # join() requires close()/terminate() to have been
                # called; every path above guarantees exactly that, so
                # no worker process outlives the sweep.
                pool.join()
        replicas.sort(key=lambda replica: replica.index)
    failures = sorted(failures + carried_failures,
                      key=lambda failure: failure.index)
    result = SweepResult(
        spec=spec,
        mode=mode,
        workers=workers_used,
        chunk_size=chunk_size,
        base_seed=config.base_seed,
        replicas=replicas,
        wall_seconds=time.perf_counter() - started,
        failures=failures,
        supervision=supervision_report,
    )
    if completed:
        result.merge_replicas(completed.values())
    return result
