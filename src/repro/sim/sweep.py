"""Process-parallel Monte-Carlo sweep engine.

Shards N seeded campaign replicas across a worker pool.  Three
properties make the ensemble trustworthy:

1. **Deterministic sharding** — replica *i*'s seed is a pure function
   of (base seed, *i*) (:func:`repro.core.ensemble.replica_seed`), so
   results are independent of worker count, chunk size, and dispatch
   order.
2. **Worker-side reduction** — each worker runs the full campaign but
   ships home only a :class:`~repro.core.ensemble.ReplicaResult`
   (scalars plus a trace digest); full event traces never cross the
   process boundary.
3. **A bit-identical serial fallback** — both paths execute the same
   :func:`~repro.core.ensemble.run_replica`, so ``mode="serial"``
   reproduces the parallel results exactly, replica for replica.

The parallel path dispatches through the warm, reusable worker pool in
:mod:`repro.sim.workerpool` (spec shipped once at warm-up, compact
binary result rows, cross-sweep reuse) and is *adaptive*: a timed
in-process probe of the first pending replica sizes the chunks
(:func:`adaptive_chunk_size`) and, when the whole remaining ensemble
costs less than the parallelism break-even, skips process dispatch
entirely (:func:`should_fallback`).  Which path actually ran is
recorded in :attr:`SweepResult.dispatch` so tests can assert on it.

This module sits in :mod:`repro.sim` but drives :mod:`repro.core`
campaigns — the one place the layering inverts — so it imports the
ensemble helpers lazily inside functions to keep package import order
acyclic.
"""

import math
import os
import time

from repro.sim.errors import SweepWorkerError

#: Estimated remaining serial seconds below which process dispatch
#: cannot pay for itself: pool warm-up, task framing, and row decoding
#: cost on the order of low hundreds of milliseconds, so an ensemble
#: cheaper than this finishes sooner run in-process.
PARALLEL_BREAK_EVEN_SECONDS = 0.2

#: Target wall-clock seconds per dispatched chunk when sizing chunks
#: from the measured probe: large enough to amortise per-chunk framing,
#: small enough to keep workers load-balanced and checkpoints fresh.
CHUNK_TARGET_SECONDS = 0.25


def should_fallback(replicas, probe_seconds,
                    threshold=PARALLEL_BREAK_EVEN_SECONDS):
    """True when dispatching ``replicas`` to a pool cannot pay off.

    A pure function of its arguments (property-tested as such), so the
    adaptive path stays deterministic given the same probe measurement.
    ``probe_seconds`` is None when nothing was measured (probe skipped),
    which always means "do not fall back".
    """
    if probe_seconds is None:
        return False
    return replicas * probe_seconds < threshold


def adaptive_chunk_size(replicas, workers, probe_seconds,
                        target_seconds=CHUNK_TARGET_SECONDS):
    """Chunk size derived from a measured per-replica cost.

    Starts from the classic four-chunks-per-worker spread (amortises
    per-task overhead while smoothing uneven replicas) and shrinks it
    so no chunk is expected to exceed ``target_seconds`` — expensive
    replicas stream back (and checkpoint) nearly one at a time, cheap
    ones batch up.  A pure function of its arguments; with no probe
    measurement it reduces to the spread alone.
    """
    if replicas < 1:
        return 1
    spread = max(1, math.ceil(replicas / (workers * 4)))
    if not probe_seconds or probe_seconds <= 0:
        return spread
    by_cost = target_seconds / probe_seconds
    # Compare before int(): a subnormal probe makes the ratio overflow
    # to inf, and the cost cap can only ever shrink the spread anyway.
    if by_cost >= spread:
        return spread
    return max(1, int(by_cost))


def _integral(name, value):
    """Validate a pool-shape parameter as a true positive integer.

    A float like ``replicas=2.5`` would pass a bare ``< 1`` check and
    then blow up as a ``TypeError`` deep inside ``range()`` in
    ``run_sweep``; bools are ints but are always a caller mistake here.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError("%s must be an integer, got %r" % (name, value))
    if value < 1:
        raise ValueError("%s must be >= 1, got %r" % (name, value))
    return value


class SweepConfig:
    """How to run an ensemble: size, pool shape, and dispatch mode.

    ``mode="supervised"`` routes dispatch through
    :mod:`repro.sim.supervisor` — isolated worker processes with crash
    recovery, per-replica timeouts, and poison-replica quarantine —
    instead of the bare ``multiprocessing.Pool``.
    """

    __slots__ = ("replicas", "workers", "chunk_size", "base_seed", "mode",
                 "pool_warm", "fallback", "fallback_threshold")

    MODES = ("auto", "serial", "parallel", "supervised")

    def __init__(self, replicas=16, workers=None, chunk_size=None,
                 base_seed=0, mode="auto", pool_warm=True, fallback=True,
                 fallback_threshold=None):
        replicas = _integral("replicas", replicas)
        if workers is None:
            workers = os.cpu_count() or 1
        workers = _integral("workers", workers)
        if chunk_size is not None:
            chunk_size = _integral("chunk_size", chunk_size)
        if mode not in self.MODES:
            raise ValueError("mode must be one of %s, got %r"
                             % (self.MODES, mode))
        for name, value in (("pool_warm", pool_warm),
                            ("fallback", fallback)):
            if not isinstance(value, bool):
                raise TypeError("%s must be a bool, got %r" % (name, value))
        if fallback_threshold is not None:
            if isinstance(fallback_threshold, bool) or \
                    not isinstance(fallback_threshold, (int, float)):
                raise TypeError("fallback_threshold must be a number or "
                                "None, got %r" % (fallback_threshold,))
            if not fallback_threshold > 0:
                raise ValueError("fallback_threshold must be positive, "
                                 "got %r" % (fallback_threshold,))
        self.replicas = replicas
        self.workers = workers
        self.chunk_size = chunk_size
        self.base_seed = base_seed
        self.mode = mode
        #: Reuse the process-wide warm pool across sweeps (default).
        #: False builds a private pool and closes it with the sweep.
        self.pool_warm = pool_warm
        #: Allow the adaptive serial fallback when the probed ensemble
        #: cost sits below the parallelism break-even.
        self.fallback = fallback
        self.fallback_threshold = fallback_threshold

    def resolved_mode(self):
        """The dispatch path ``run_sweep`` will actually take."""
        if self.mode != "auto":
            return self.mode
        if self.workers > 1 and self.replicas > 1:
            return "parallel"
        return "serial"

    def resolved_chunk_size(self):
        """Chunk size balancing dispatch overhead against load balance.

        Four chunks per worker amortises per-task pickling while still
        smoothing over replicas with uneven runtimes.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(self.replicas / (self.workers * 4)))

    def resolved_fallback_threshold(self):
        """Break-even seconds below which dispatch falls back to serial."""
        if self.fallback_threshold is not None:
            return self.fallback_threshold
        return PARALLEL_BREAK_EVEN_SECONDS

    def __repr__(self):
        return ("SweepConfig(replicas=%d, workers=%d, chunk_size=%r, "
                "base_seed=%r, mode=%r, pool_warm=%r, fallback=%r)"
                % (self.replicas, self.workers, self.chunk_size,
                   self.base_seed, self.mode, self.pool_warm,
                   self.fallback))


def shard_indices(replicas, chunk_size):
    """Split ``range(replicas)`` into consecutive chunks."""
    return shard_chunks(range(replicas), chunk_size)


def shard_chunks(indices, chunk_size):
    """Split an arbitrary replica-index list into consecutive chunks.

    The resume path runs only the indices a manifest is missing, which
    need not start at zero or be contiguous — but chunking stays purely
    positional, so sharding still never affects per-replica results.
    """
    indices = list(indices)
    return [indices[start:start + chunk_size]
            for start in range(0, len(indices), chunk_size)]


class SweepResult:
    """An ensemble's replicas plus how they were produced.

    The derived views (:meth:`aggregate`, :meth:`merged_metrics`,
    :meth:`aggregate_metrics`) are memoised: a result is immutable once
    built, and the CLI renders the same aggregates two or three times
    per sweep (table, ``--json``, ``--metrics``), so each is computed
    once and the cached mapping returned — treat them as read-only.
    """

    __slots__ = ("spec", "mode", "workers", "chunk_size", "base_seed",
                 "replicas", "wall_seconds", "failures", "supervision",
                 "dispatch", "_cache")

    def __init__(self, spec, mode, workers, chunk_size, base_seed,
                 replicas, wall_seconds, failures=None, supervision=None,
                 dispatch=None):
        self.spec = spec
        self.mode = mode
        self.workers = workers
        self.chunk_size = chunk_size
        self.base_seed = base_seed
        #: :class:`~repro.core.ensemble.ReplicaResult` list, by index.
        self.replicas = replicas
        self.wall_seconds = wall_seconds
        #: :class:`~repro.core.ensemble.ReplicaFailure` list, by index —
        #: replicas the supervised path could not complete.  Aggregation
        #: tolerates the gaps: every derived view runs over whatever
        #: replicas exist.
        self.failures = list(failures or [])
        #: Supervision report (counters, spans) from the supervised
        #: path; None for serial/parallel dispatch.  Kept separate from
        #: the replica data because it is inherently wall-clock-bound
        #: and therefore nondeterministic.
        self.supervision = supervision
        #: How dispatch actually went: which path ran ("serial",
        #: "warm-pool", "serial-fallback", "supervised"), the probe
        #: measurement and break-even that steered it, and whether a
        #: warm pool was reused.  Wall-clock-bound like ``supervision``,
        #: so kept apart from the replica data — tests assert on
        #: ``dispatch["path"]``, never on the timings.
        self.dispatch = dispatch or {}
        self._cache = {}

    def _cached(self, key, compute):
        try:
            return self._cache[key]
        except KeyError:
            value = self._cache[key] = compute()
            return value

    def measurements(self):
        """Per-replica measurement dicts, in replica order."""
        return [replica.measurements for replica in self.replicas]

    def digests(self):
        """Per-replica trace digests, in replica order."""
        return [replica.trace_digest for replica in self.replicas]

    def metrics(self):
        """Per-replica metric snapshots, in replica order."""
        return [replica.metrics for replica in self.replicas]

    def quarantined(self):
        """Indices of poison replicas quarantined by the supervisor."""
        return sorted(failure.index for failure in self.failures
                      if failure.quarantined)

    def complete(self):
        """True when every requested replica produced a result."""
        return not self.failures

    def merged_metrics(self):
        """One ensemble-wide metrics snapshot (counters/histograms add)."""
        from repro.core.ensemble import merge_metric_snapshots

        return self._cached("merged_metrics",
                            lambda: merge_metric_snapshots(self.replicas))

    def aggregate(self):
        """Summary statistics per measurement key (see ensemble module)."""
        from repro.core.ensemble import aggregate

        return self._cached("aggregate", lambda: aggregate(self.replicas))

    def aggregate_metrics(self):
        """Summary statistics per metric across replicas."""
        from repro.core.ensemble import aggregate_metrics

        return self._cached("aggregate_metrics",
                            lambda: aggregate_metrics(self.replicas))

    def merge_replicas(self, more):
        """Splice replicas recovered from a resume manifest into this
        result, keeping index order.

        This is the one sanctioned mutation of a built result, so it
        also drops every memoised aggregate — the cached mappings were
        computed over the pre-merge ensemble and would silently
        misreport the merged one.  A duplicate index is always a
        caller bug (the resume path only re-runs replicas the manifest
        did *not* record) and raises rather than picking a winner.
        """
        merged = {replica.index: replica for replica in self.replicas}
        for replica in more:
            if replica.index in merged:
                raise ValueError(
                    "merge_replicas() got replica index %d twice"
                    % replica.index)
            merged[replica.index] = replica
        self.replicas = [merged[index] for index in sorted(merged)]
        self._cache.clear()
        return self

    def as_dict(self):
        """JSON-ready rendering (CLI ``--json`` and BENCH_sweep.json)."""
        return {
            "spec": self.spec.as_dict(),
            "mode": self.mode,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "base_seed": self.base_seed,
            "replica_count": len(self.replicas),
            "failure_count": len(self.failures),
            "quarantined": self.quarantined(),
            "wall_seconds": self.wall_seconds,
            "distinct_trace_digests": len(set(self.digests())),
            "replicas": [replica.as_dict() for replica in self.replicas],
            "failures": [failure.as_dict() for failure in self.failures],
            "aggregate": self.aggregate(),
            "metrics_merged": self.merged_metrics(),
            "metrics_aggregate": self.aggregate_metrics(),
            "supervision": self.supervision,
            "dispatch": self.dispatch,
        }

    def __repr__(self):
        failed = (", %d failed" % len(self.failures)
                  if self.failures else "")
        return ("SweepResult(%r, %d replicas%s, mode=%s, %.2fs)"
                % (self.spec, len(self.replicas), failed, self.mode,
                   self.wall_seconds))


def _dispatch_warm_pool(spec, config, chunks, workers, record, dispatch):
    """Run ``chunks`` on a warm pool, applying the lifecycle policy.

    ``pool_warm=True`` (the default) acquires the process-wide shared
    pool — reused across sweeps when (spec, base seed, workers) match —
    and leaves it warm on success *and* after a replica-level
    :class:`SweepWorkerError` (the workers are healthy; only the
    replica failed).  Anything else escaping mid-dispatch (worker
    death, ``KeyboardInterrupt``, a manifest write blowing up) leaves
    chunks in flight, so the pool is terminated outright — no worker
    process ever outlives a failed sweep.
    """
    from repro.sim.workerpool import (
        WarmPool,
        invalidate_shared_pool,
        shared_pool,
    )

    if config.pool_warm:
        pool, reused = shared_pool(spec, config.base_seed, config.workers)
    else:
        pool, reused = WarmPool(spec, config.base_seed, workers), False
    dispatch["pool_reused"] = reused
    try:
        replicas = pool.run(chunks, on_replica=record)
    except SweepWorkerError as exc:
        if exc.pool_broken:
            if config.pool_warm:
                invalidate_shared_pool(pool)
            else:
                pool.terminate()
        elif not config.pool_warm:
            pool.close()
        raise
    except BaseException:
        if config.pool_warm:
            invalidate_shared_pool(pool)
        else:
            pool.terminate()
        raise
    if not config.pool_warm:
        pool.close()
    return replicas


def run_sweep(spec, config=None, checkpoint_dir=None, resume=False,
              supervision=None, retry_quarantined=True, **overrides):
    """Run an ensemble of seeded replicas of ``spec``.

    Pass a :class:`SweepConfig`, or keyword overrides to build one
    (``run_sweep(spec, replicas=32, workers=8)``).  Returns a
    :class:`SweepResult` whose replicas are always in index order,
    whichever path produced them.

    With ``checkpoint_dir`` the sweep is resumable: a manifest pinning
    (spec, base seed, replica count) lands first, then each replica's
    reduction is written atomically the moment it streams back from a
    worker.  ``resume=True`` loads that manifest, validates it against
    the requested spec/config (raising the typed
    :class:`~repro.sim.errors.CheckpointError` on any mismatch), short-
    circuits every recorded replica, and runs only the missing ones —
    per-replica seeding makes the merged result byte-identical to an
    uninterrupted sweep, down to the trace digests.

    ``supervision`` (a :class:`~repro.sim.supervisor.SupervisorConfig`)
    or ``mode="supervised"`` routes dispatch through the supervised
    worker pool: crashes, hangs, and timeouts cost single replica
    attempts instead of the ensemble, and poison replicas land as
    :attr:`SweepResult.failures` (quarantine records persist in the
    manifest).  On resume, quarantined replicas are retried by default;
    ``retry_quarantined=False`` skips them and carries their failure
    records into the result instead — both choices are deterministic,
    because a retried replica re-runs from its pure ``replica_seed``.

    A ``KeyboardInterrupt`` mid-sweep tears the worker pool down hard
    but keeps the checkpoint manifest intact: every replica recorded
    before the interrupt is already flushed (the writes are atomic and
    per-replica), so ``--resume`` afterwards loses at most the work
    that was in flight.
    """
    if config is None:
        config = SweepConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a SweepConfig or keyword overrides, "
                        "not both")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    mode = config.resolved_mode()
    if supervision is not None:
        if mode == "serial":
            raise ValueError("serial mode cannot be supervised: "
                             "supervision needs worker processes")
        mode = "supervised"
    elif mode == "supervised":
        from repro.sim.supervisor import SupervisorConfig

        supervision = SupervisorConfig()
    from repro.core.ensemble import run_replica

    manifest = None
    completed = {}
    carried_failures = []
    if checkpoint_dir is not None:
        from repro.core.resume import SweepCheckpoint

        if resume:
            manifest = SweepCheckpoint.load(checkpoint_dir)
            manifest.validate_against(spec, config)
            completed = manifest.completed()
            if not retry_quarantined:
                carried_failures = [
                    failure
                    for index, failure in sorted(manifest.failures().items())
                    if failure.quarantined and index not in completed]
        else:
            manifest = SweepCheckpoint.create(checkpoint_dir, spec, config)
    skipped = {failure.index for failure in carried_failures}
    pending = [index for index in range(config.replicas)
               if index not in completed and index not in skipped]

    def record(replica):
        if manifest is not None:
            manifest.record(replica)
        return replica

    chunk_size = config.resolved_chunk_size()
    started = time.perf_counter()
    failures = []
    supervision_report = None
    dispatch = {
        "requested_mode": config.mode,
        "path": mode,
        "pool_warm": config.pool_warm,
        "pool_reused": False,
        "fallback_enabled": config.fallback,
        "probe_seconds": None,
        "estimated_seconds": None,
        "break_even_seconds": config.resolved_fallback_threshold(),
    }
    if mode == "serial":
        replicas = [record(run_replica(spec, index, config.base_seed))
                    for index in pending]
        workers_used = 1
    elif mode == "supervised":
        from repro.sim.supervisor import supervise_sweep

        workers_used = min(config.workers, len(pending)) or 1
        replicas = []
        if pending:
            outcome = supervise_sweep(
                spec, config.base_seed, pending,
                workers=config.workers, chunk_size=chunk_size,
                supervision=supervision, record=record,
                record_failure=(manifest.record_failure
                                if manifest is not None else None))
            replicas = outcome.replicas
            failures = outcome.failures
            supervision_report = outcome.report
            workers_used = outcome.report["workers"]
    else:
        dispatch["path"] = "warm-pool"
        replicas = []
        workers_used = 1
        rest = pending
        if pending and (config.fallback or config.chunk_size is None):
            # Cost probe: run the first pending replica in-process and
            # time it.  The measurement steers adaptive chunk sizing
            # and the serial fallback; the probe replica is a full,
            # recorded result, so probing never duplicates work.
            probe_started = time.perf_counter()
            replicas.append(record(run_replica(spec, pending[0],
                                               config.base_seed)))
            probe = time.perf_counter() - probe_started
            rest = pending[1:]
            dispatch["probe_seconds"] = probe
            dispatch["estimated_seconds"] = probe * len(rest)
        if rest:
            if config.fallback and should_fallback(
                    len(rest), dispatch["probe_seconds"],
                    config.resolved_fallback_threshold()):
                # Below break-even: process dispatch would cost more
                # than it buys.  Finish in-process — byte-identical,
                # because both paths run the same run_replica from the
                # same pure per-replica seeds.
                dispatch["path"] = "serial-fallback"
                replicas.extend(record(run_replica(spec, index,
                                                   config.base_seed))
                                for index in rest)
            else:
                if config.chunk_size is None:
                    chunk_size = adaptive_chunk_size(
                        len(rest), config.workers,
                        dispatch["probe_seconds"])
                chunks = shard_chunks(rest, chunk_size)
                workers_used = min(config.workers, len(chunks)) or 1
                replicas.extend(_dispatch_warm_pool(
                    spec, config, chunks, workers_used, record, dispatch))
        replicas.sort(key=lambda replica: replica.index)
    failures = sorted(failures + carried_failures,
                      key=lambda failure: failure.index)
    result = SweepResult(
        spec=spec,
        mode=mode,
        workers=workers_used,
        chunk_size=chunk_size,
        base_seed=config.base_seed,
        replicas=replicas,
        wall_seconds=time.perf_counter() - started,
        failures=failures,
        supervision=supervision_report,
        dispatch=dispatch,
    )
    if completed:
        result.merge_replicas(completed.values())
    return result
