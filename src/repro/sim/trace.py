"""Structured trace log.

Each figure in the paper is an architecture/data-flow diagram; the
benchmark harness regenerates them by replaying the trace of a simulated
campaign.  A :class:`TraceRecord` is one arrow in such a diagram: who did
what to whom, when, with what details.
"""


class TraceRecord:
    """One immutable entry in the simulation trace."""

    __slots__ = ("time", "actor", "action", "target", "detail")

    def __init__(self, time, actor, action, target=None, detail=None):
        self.time = time
        self.actor = actor
        self.action = action
        self.target = target
        self.detail = dict(detail) if detail else {}

    def __repr__(self):
        target = " -> %s" % self.target if self.target else ""
        return "[t=%10.2f] %s %s%s %s" % (
            self.time,
            self.actor,
            self.action,
            target,
            self.detail or "",
        )


class TraceLog:
    """Append-only record of everything that happened in a simulation."""

    def __init__(self, clock):
        self._clock = clock
        self._records = []

    def record(self, actor, action, target=None, **detail):
        """Append a record stamped with the current virtual time."""
        entry = TraceRecord(self._clock.now, actor, action, target, detail)
        self._records.append(entry)
        return entry

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def query(self, actor=None, action=None, target=None, since=None, until=None):
        """Return records matching every given filter.

        ``actor``, ``action``, and ``target`` all match exactly, except
        that a trailing ``*`` turns the filter into a prefix match —
        this applies uniformly to all three, so namespaced actions
        (``action="flame.*"``) and hostname families
        (``target="aramco-*"``) filter the same way.  A record with no
        target never matches a ``target`` filter, even ``"*"``.
        """

        def matches(value, pattern):
            if pattern is None:
                return True
            if value is None:
                return False
            if pattern.endswith("*"):
                return value.startswith(pattern[:-1])
            return value == pattern

        out = []
        for rec in self._records:
            if not matches(rec.actor, actor):
                continue
            if not matches(rec.action, action):
                continue
            if not matches(rec.target, target):
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            out.append(rec)
        return out

    def count(self, **filters):
        """Number of records matching :meth:`query` filters."""
        return len(self.query(**filters))

    def actions(self):
        """Set of distinct action names seen so far."""
        return {rec.action for rec in self._records}

    def first(self, **filters):
        """Earliest matching record, or None."""
        matching = self.query(**filters)
        return matching[0] if matching else None

    def last(self, **filters):
        """Latest matching record, or None."""
        matching = self.query(**filters)
        return matching[-1] if matching else None

    def timeline(self, **filters):
        """Matching records as (time, actor, action, target) tuples."""
        return [(r.time, r.actor, r.action, r.target) for r in self.query(**filters)]

    def dump(self, limit=None):
        """Human-readable rendering of the trace (or its first ``limit`` rows)."""
        rows = self._records if limit is None else self._records[:limit]
        return "\n".join(repr(r) for r in rows)
