"""Structured trace log.

Each figure in the paper is an architecture/data-flow diagram; the
benchmark harness regenerates them by replaying the trace of a simulated
campaign.  A :class:`TraceRecord` is one arrow in such a diagram: who did
what to whom, when, with what details.

``TraceLog`` is the hottest read path in the reproduction: every figure
replay and prose-claim benchmark issues hundreds of :meth:`TraceLog.query`
calls, and an ensemble multiplies that by the replica count.  The log
therefore maintains per-actor and per-action indexes incrementally on
:meth:`record`, so queries resolve from an index intersection instead of
a full scan, and exploits the simulation clock's monotonicity to binary
-search ``since``/``until`` windows.  The original linear scan survives
as :meth:`query_linear`, the reference implementation the differential
test suite checks the indexes against.
"""

from bisect import bisect_left, bisect_right


class TraceRecord:
    """One immutable entry in the simulation trace."""

    __slots__ = ("time", "actor", "action", "target", "detail")

    def __init__(self, time, actor, action, target=None, detail=None):
        self.time = time
        self.actor = actor
        self.action = action
        self.target = target
        self.detail = dict(detail) if detail else {}

    def __repr__(self):
        target = " -> %s" % self.target if self.target else ""
        return "[t=%10.2f] %s %s%s %s" % (
            self.time,
            self.actor,
            self.action,
            target,
            self.detail or "",
        )


def _matches(value, pattern):
    """The filter predicate shared by the indexed and linear paths.

    ``None`` pattern matches everything; a ``None`` value matches no
    pattern; a trailing ``*`` turns the pattern into a prefix match.
    """
    if pattern is None:
        return True
    if value is None:
        return False
    if pattern.endswith("*"):
        return value.startswith(pattern[:-1])
    return value == pattern


class TraceLog:
    """Append-only record of everything that happened in a simulation.

    Pass ``max_records`` (or call :meth:`bound` later) to cap memory for
    million-event runs: the log then retains only the newest
    ``max_records`` entries, evicting the oldest in batches and counting
    them in :attr:`evicted_records`.  Unbounded logs (the default)
    behave exactly as before — every record is retained and every
    digest/export is unchanged.
    """

    def __init__(self, clock, max_records=None):
        self._clock = clock
        self._records = []
        #: Times of the retained records, parallel to ``_records`` —
        #: the bisect target for ``since``/``until`` windows.
        self._times = []
        #: Absolute position of ``_records[0]``; positions stored in the
        #: indexes are absolute, so eviction never renumbers them.
        self._offset = 0
        self._by_actor = {}
        self._by_action = {}
        #: Cleared if a record ever arrives with a time below its
        #: predecessor's; the window bisection is only valid while set.
        self._monotonic = True
        self._evicted = 0
        self._max_records = None
        if max_records is not None:
            self.bound(max_records)

    # -- recording ---------------------------------------------------------------

    def record(self, actor, action, target=None, **detail):
        """Append a record stamped with the current virtual time."""
        entry = TraceRecord(self._clock.now, actor, action, target, detail)
        records = self._records
        times = self._times
        if times and entry.time < times[-1]:
            self._monotonic = False
        position = self._offset + len(records)
        records.append(entry)
        times.append(entry.time)
        by_actor = self._by_actor
        if actor in by_actor:
            by_actor[actor].append(position)
        else:
            by_actor[actor] = [position]
        by_action = self._by_action
        if action in by_action:
            by_action[action].append(position)
        else:
            by_action[action] = [position]
        if self._max_records is not None and len(records) > self._max_records:
            self._evict_to(self._max_records - self._max_records // 4)
        return entry

    # -- bounded mode ------------------------------------------------------------

    @property
    def max_records(self):
        """The retention cap, or None when the log is unbounded."""
        return self._max_records

    @property
    def evicted_records(self):
        """How many of the oldest records bounded mode has dropped."""
        return self._evicted

    @property
    def total_records(self):
        """Records ever written, retained or not."""
        return self._offset + len(self._records)

    def bound(self, max_records):
        """Cap retention at the newest ``max_records`` entries.

        Eviction happens in batches of roughly a quarter of the cap, so
        the amortised cost per record stays O(1); ``len(self)`` never
        exceeds the cap.  Pass ``None`` to remove the cap (already
        -evicted records are gone for good).
        """
        if max_records is not None:
            if isinstance(max_records, bool) or not isinstance(max_records, int):
                raise TypeError("max_records must be an integer or None, "
                                "got %r" % (max_records,))
            if max_records < 1:
                raise ValueError("max_records must be >= 1, got %r"
                                 % (max_records,))
        self._max_records = max_records
        if max_records is not None and len(self._records) > max_records:
            self._evict_to(max(1, max_records - max_records // 4))

    def _evict_to(self, keep):
        """Drop the oldest records until only ``keep`` remain."""
        drop = len(self._records) - keep
        if drop <= 0:
            return
        self._offset += drop
        self._evicted += drop
        del self._records[:drop]
        del self._times[:drop]
        offset = self._offset
        for index in (self._by_actor, self._by_action):
            for key in list(index):
                positions = index[key]
                cut = bisect_left(positions, offset)
                if cut == len(positions):
                    del index[key]
                elif cut:
                    del positions[:cut]

    # -- checkpointing -----------------------------------------------------------

    def snapshot_state(self):
        """Primitive-only rendering of the full log for a checkpoint.

        Record details pass through :func:`repro.obs.export.jsonable`,
        which is idempotent — so a log restored from a snapshot
        snapshots back to the identical payload, and its JSONL export
        digest matches the original's.
        """
        from repro.obs.export import jsonable

        return {
            "offset": self._offset,
            "evicted": self._evicted,
            "max_records": self._max_records,
            "monotonic": self._monotonic,
            "records": [
                {"time": record.time, "actor": record.actor,
                 "action": record.action,
                 "target": jsonable(record.target),
                 "detail": jsonable(record.detail)}
                for record in self._records
            ],
        }

    def load_state(self, state):
        """Replace this log's contents with a checkpointed snapshot.

        The per-actor/per-action indexes and the bisect time array are
        rebuilt from the records — they are derived structures, so the
        snapshot never stores them — and the bounded-mode counters
        (offset, evictions, cap) are restored so eviction behaviour
        continues exactly where the captured run left off.
        """
        from repro.sim.errors import CheckpointError

        try:
            records = [
                TraceRecord(entry["time"], entry["actor"], entry["action"],
                            entry["target"], entry["detail"])
                for entry in state["records"]
            ]
            offset = int(state["offset"])
            evicted = int(state["evicted"])
            max_records = state["max_records"]
            monotonic = bool(state["monotonic"])
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                "malformed trace state: %s: %s"
                % (type(exc).__name__, exc)) from exc
        self._records = records
        self._times = [record.time for record in records]
        self._offset = offset
        self._evicted = evicted
        self._max_records = max_records
        self._monotonic = monotonic
        by_actor = {}
        by_action = {}
        for position, record in enumerate(records, start=offset):
            by_actor.setdefault(record.actor, []).append(position)
            by_action.setdefault(record.action, []).append(position)
        self._by_actor = by_actor
        self._by_action = by_action

    # -- container protocol ------------------------------------------------------

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    # -- queries -----------------------------------------------------------------

    def query(self, actor=None, action=None, target=None, since=None, until=None):
        """Return records matching every given filter.

        ``actor``, ``action``, and ``target`` all match exactly, except
        that a trailing ``*`` turns the filter into a prefix match —
        this applies uniformly to all three, so namespaced actions
        (``action="flame.*"``) and hostname families
        (``target="aramco-*"``) filter the same way.  A record with no
        target never matches a ``target`` filter, even ``"*"``.

        Resolution is index-driven: actor/action filters intersect the
        per-key position indexes, and monotonic time windows bisect —
        the results are bit-for-bit those of :meth:`query_linear`.
        """
        records = self._records
        lo, hi = 0, len(records)
        if self._monotonic:
            # The window becomes a slice; no per-record time checks.
            if since is not None:
                lo = bisect_left(self._times, since)
                since = None
            if until is not None:
                hi = bisect_right(self._times, until)
                until = None
            if lo >= hi:
                return []
        candidates = self._candidate_positions(actor, action)
        out = []
        if candidates is None:
            # No indexable filter: scan the (window-trimmed) slice.
            for index in range(lo, hi):
                rec = records[index]
                if not _matches(rec.target, target):
                    continue
                if since is not None and rec.time < since:
                    continue
                if until is not None and rec.time > until:
                    continue
                out.append(rec)
            return out
        offset = self._offset
        start = bisect_left(candidates, offset + lo)
        stop = bisect_left(candidates, offset + hi)
        for position in candidates[start:stop]:
            rec = records[position - offset]
            if not _matches(rec.target, target):
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            out.append(rec)
        return out

    def _candidate_positions(self, actor, action):
        """Sorted absolute positions matching the actor/action filters.

        ``None`` when neither filter constrains the scan; positions are
        ascending, so results keep append order.
        """
        if actor is None and action is None:
            return None
        lists = []
        if actor is not None:
            lists.append(self._index_lookup(self._by_actor, actor))
        if action is not None:
            lists.append(self._index_lookup(self._by_action, action))
        if len(lists) == 1:
            return lists[0]
        first, second = lists
        if not first or not second:
            return []
        if len(first) > len(second):
            first, second = second, first
        members = set(second)
        return [position for position in first if position in members]

    def _index_lookup(self, index, pattern):
        """Positions whose key matches ``pattern`` (exact or prefix-``*``)."""
        if pattern.endswith("*"):
            prefix = pattern[:-1]
            hits = [positions for key, positions in index.items()
                    if key is not None and key.startswith(prefix)]
            if not hits:
                return []
            if len(hits) == 1:
                return hits[0]
            return sorted(position for positions in hits
                          for position in positions)
        positions = index.get(pattern)
        return positions if positions is not None else []

    def query_linear(self, actor=None, action=None, target=None, since=None,
                     until=None):
        """The pre-index full-scan :meth:`query`, kept as the reference.

        The differential test suite asserts ``query`` returns exactly
        the records this returns for every filter combination; it scans
        the retained records, so under bounded mode both paths see the
        same (post-eviction) history.
        """
        out = []
        for rec in self._records:
            if not _matches(rec.actor, actor):
                continue
            if not _matches(rec.action, action):
                continue
            if not _matches(rec.target, target):
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            out.append(rec)
        return out

    def count(self, **filters):
        """Number of records matching :meth:`query` filters."""
        return len(self.query(**filters))

    def actions(self):
        """Set of distinct action names seen so far."""
        return set(self._by_action)

    def first(self, **filters):
        """Earliest matching record, or None."""
        matching = self.query(**filters)
        return matching[0] if matching else None

    def last(self, **filters):
        """Latest matching record, or None."""
        matching = self.query(**filters)
        return matching[-1] if matching else None

    def timeline(self, **filters):
        """Matching records as (time, actor, action, target) tuples."""
        return [(r.time, r.actor, r.action, r.target) for r in self.query(**filters)]

    def dump(self, limit=None):
        """Human-readable rendering of the trace (or its first ``limit`` rows)."""
        rows = self._records if limit is None else self._records[:limit]
        return "\n".join(repr(r) for r in rows)
