"""Deterministic discrete-event simulation kernel.

Every other subsystem in :mod:`repro` runs on top of this kernel: hosts,
networks, PLCs, malware, and command-and-control servers all schedule
callbacks on a shared :class:`Kernel` and record what happened in its
:class:`TraceLog`.  The kernel is fully deterministic: given the same seed
and the same schedule of events, two runs produce identical traces, which
is what lets the benchmark harness regenerate the paper's figures as
stable event sequences.
"""

from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    read_checkpoint,
    restore_kernel,
    snapshot_kernel,
    state_digest,
    write_checkpoint,
)
from repro.sim.clock import SimClock, SIM_EPOCH
from repro.sim.errors import (
    CheckpointDigestError,
    CheckpointError,
    CheckpointVersionError,
    PoisonReplicaError,
    ReplicaTimeoutError,
    SimulationError,
    ScheduleInPastError,
    SupervisionError,
    SweepWorkerError,
)
from repro.sim.events import Event, EventQueue, Kernel, PeriodicTask
from repro.sim.faults import FaultInjector, FaultKind, FaultWindow, lan_scope
from repro.sim.retry import RetryPolicy, RetryTask, deterministic_backoff
from repro.sim.rng import DeterministicRandom
from repro.sim.supervisor import ChaosPlan, SupervisorConfig, supervise_sweep
from repro.sim.sweep import (
    SweepConfig,
    SweepResult,
    adaptive_chunk_size,
    run_sweep,
    shard_indices,
    should_fallback,
)
from repro.sim.trace import TraceLog, TraceRecord
from repro.sim.workerpool import WarmPool, shared_pool, shutdown_shared_pool

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointDigestError",
    "CheckpointError",
    "CheckpointVersionError",
    "SIM_EPOCH",
    "DeterministicRandom",
    "Event",
    "EventQueue",
    "FaultInjector",
    "FaultKind",
    "FaultWindow",
    "ChaosPlan",
    "Kernel",
    "PeriodicTask",
    "PoisonReplicaError",
    "ReplicaTimeoutError",
    "RetryPolicy",
    "RetryTask",
    "ScheduleInPastError",
    "SimClock",
    "SimulationError",
    "SupervisionError",
    "SupervisorConfig",
    "SweepConfig",
    "SweepResult",
    "SweepWorkerError",
    "TraceLog",
    "TraceRecord",
    "WarmPool",
    "adaptive_chunk_size",
    "deterministic_backoff",
    "lan_scope",
    "read_checkpoint",
    "restore_kernel",
    "run_sweep",
    "shard_indices",
    "shared_pool",
    "should_fallback",
    "shutdown_shared_pool",
    "snapshot_kernel",
    "state_digest",
    "supervise_sweep",
    "write_checkpoint",
]
