"""Supervised sweep execution: crash isolation, timeouts, quarantine.

The plain parallel sweep path trusts its ``multiprocessing.Pool``
completely: a worker that segfaults, gets OOM-killed, or spins forever
inside a replica (easy to provoke via Flame's Lua-scripted modules)
wedges or destroys the whole ensemble.  At the replica counts the
Monte-Carlo experiments call for, per-replica failure is a certainty,
not an edge case — so this module replaces the pool with a real
supervisor:

* **Crash isolation.**  Each worker is an owned ``Process`` with its
  own task/result pipes.  A dead worker (detected by pipe EOF) costs
  only its in-flight chunk: the replica it was running is charged one
  failed attempt, the untouched remainder of the chunk is re-queued
  as its own chunk (*re-splitting* — a poison replica never re-fails
  its neighbours), and a fresh worker is spawned in its place.
* **Timeouts and heartbeats.**  Every worker sends a ``start`` marker
  per replica plus periodic heartbeats from a side thread.  A replica
  that outlives ``replica_timeout`` is killed and charged a failed
  attempt; a worker whose heartbeats stop (process frozen, not merely
  slow) is killed the same way.  ``sweep_deadline`` bounds the whole
  ensemble.
* **Bounded retry with quarantine.**  A failed replica is re-dispatched
  (as a singleton chunk, after a deterministic jittered backoff — see
  :func:`repro.sim.retry.deterministic_backoff`) until its attempts run
  out; then it becomes a structured
  :class:`~repro.core.ensemble.ReplicaFailure` instead of an exception
  (``on_failure="quarantine"``, the default) or raises the typed
  :class:`~repro.sim.errors.PoisonReplicaError` (``on_failure="fail"``).
* **Partial-result salvage.**  Whatever happens, the supervisor returns
  every completed :class:`~repro.core.ensemble.ReplicaResult` plus a
  machine-readable failure report; a deadline or interrupt degrades the
  ensemble instead of destroying it.

Determinism is preserved throughout: a retried replica re-runs
:func:`~repro.core.ensemble.run_replica` from its pure ``replica_seed``,
so a salvaged sweep merged with a later retry pass is byte-identical to
an undisturbed run.  Only the *supervision report* (restart counters,
wall-clock spans) is inherently nondeterministic, and it is kept apart
from the replica data for exactly that reason.

Like :mod:`repro.sim.sweep`, this module drives :mod:`repro.core`
campaigns from inside :mod:`repro.sim`, so the ensemble imports happen
lazily inside functions to keep package import order acyclic.
"""

import os
import threading
import time
from collections import deque
from itertools import count
from multiprocessing import connection as _connection

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import STATUS_ERROR, SpanRecorder
from repro.sim.errors import (
    PoisonReplicaError,
    ReplicaTimeoutError,
    SupervisionError,
)
from repro.sim.retry import RetryPolicy, deterministic_backoff

#: How long an injected "hang"/"freeze" sleeps — far beyond any timeout
#: a test or the chaos gate would configure, so the supervisor always
#: wins the race.
_CHAOS_SLEEP_SECONDS = 3600.0

#: Exit code an injected worker crash dies with (mimics ``os._exit``
#: after a segfault handler; distinguishable in process tables).
_CHAOS_EXIT_CODE = 70

#: Wall-clock grace given to workers at shutdown before SIGKILL.
_SHUTDOWN_GRACE_SECONDS = 2.0


class ChaosPlan:
    """Deterministic failure injection for the supervised sweep path.

    Maps replica index to a per-attempt sequence of behaviours:
    ``{3: ("crash", "ok")}`` means replica 3's first attempt kills its
    worker with ``os._exit`` and its second runs normally; attempts
    beyond the sequence run normally.  Behaviours:

    * ``ok`` — run the replica normally;
    * ``crash`` — ``os._exit`` the worker (crash isolation path);
    * ``hang`` — sleep forever while still heartbeating (replica
      wall-clock timeout path);
    * ``freeze`` — sleep forever *and* stop heartbeating (hang
      detection path);
    * ``error`` — raise inside the replica (in-process failure path).

    Used by the crash-injection test suite and the CI chaos gate; a
    plan is plain data and crosses the process boundary with the task.
    """

    BEHAVIORS = ("ok", "crash", "hang", "freeze", "error")

    def __init__(self, behaviors=None):
        self._behaviors = {}
        for index, sequence in (behaviors or {}).items():
            if isinstance(sequence, str):
                sequence = (sequence,)
            sequence = tuple(sequence)
            for token in sequence:
                if token not in self.BEHAVIORS:
                    raise ValueError(
                        "unknown chaos behaviour %r for replica %r "
                        "(expected one of %s)"
                        % (token, index, list(self.BEHAVIORS)))
            self._behaviors[index] = sequence

    def behavior(self, index, attempt):
        """Behaviour for 1-based ``attempt`` of ``index`` (None = ok)."""
        sequence = self._behaviors.get(index)
        if not sequence or attempt > len(sequence):
            return None
        token = sequence[attempt - 1]
        return None if token == "ok" else token

    def __bool__(self):
        return bool(self._behaviors)

    def __repr__(self):
        return "ChaosPlan(%r)" % (self._behaviors,)


class SupervisorConfig:
    """How the supervisor polices its workers.

    * ``replica_timeout`` — wall-clock seconds one replica attempt may
      take before its worker is killed (None = unlimited).
    * ``sweep_deadline`` — wall-clock seconds the whole ensemble may
      take; on expiry the sweep salvages what completed and records the
      rest as non-quarantined (retriable) failures.
    * ``max_replica_retries`` — failed attempts a replica may retry;
      a replica gets ``1 + max_replica_retries`` attempts total before
      quarantine.
    * ``on_failure`` — ``"quarantine"`` records a ``ReplicaFailure``
      and keeps sweeping; ``"fail"`` raises the typed error instead.
    * ``heartbeat_interval`` / ``hang_timeout`` — workers heartbeat
      every ``heartbeat_interval`` seconds; a busy worker silent for
      ``hang_timeout`` (default ``20 x heartbeat_interval``) is treated
      as hung and killed.
    * ``retry_policy`` — the :class:`~repro.sim.retry.RetryPolicy`
      shaping the (deterministic, jittered) backoff before a replica's
      retry attempts; the default backs off 50 ms doubling to a 2 s cap.
    * ``chaos`` — an optional :class:`ChaosPlan` for fault injection.
    """

    __slots__ = ("replica_timeout", "sweep_deadline", "max_replica_retries",
                 "on_failure", "poll_interval", "heartbeat_interval",
                 "hang_timeout", "retry_policy", "chaos")

    ON_FAILURE = ("quarantine", "fail")

    def __init__(self, replica_timeout=None, sweep_deadline=None,
                 max_replica_retries=2, on_failure="quarantine",
                 poll_interval=0.05, heartbeat_interval=0.25,
                 hang_timeout=None, retry_policy=None, chaos=None):
        for name, value in (("replica_timeout", replica_timeout),
                            ("sweep_deadline", sweep_deadline),
                            ("hang_timeout", hang_timeout)):
            if value is not None and not value > 0:
                raise ValueError("%s must be positive or None, got %r"
                                 % (name, value))
        if isinstance(max_replica_retries, bool) or \
                not isinstance(max_replica_retries, int) or \
                max_replica_retries < 0:
            raise ValueError("max_replica_retries must be an integer >= 0, "
                             "got %r" % (max_replica_retries,))
        if on_failure not in self.ON_FAILURE:
            raise ValueError("on_failure must be one of %s, got %r"
                             % (list(self.ON_FAILURE), on_failure))
        if not poll_interval > 0:
            raise ValueError("poll_interval must be positive, got %r"
                             % (poll_interval,))
        if not heartbeat_interval > 0:
            raise ValueError("heartbeat_interval must be positive, got %r"
                             % (heartbeat_interval,))
        self.replica_timeout = replica_timeout
        self.sweep_deadline = sweep_deadline
        self.max_replica_retries = max_replica_retries
        self.on_failure = on_failure
        self.poll_interval = poll_interval
        self.heartbeat_interval = heartbeat_interval
        self.hang_timeout = hang_timeout
        self.retry_policy = retry_policy
        self.chaos = chaos

    def resolved_hang_timeout(self):
        """Silence threshold before a busy worker counts as hung."""
        if self.hang_timeout is not None:
            return self.hang_timeout
        return 20.0 * self.heartbeat_interval

    def resolved_retry_policy(self):
        if self.retry_policy is not None:
            return self.retry_policy
        return RetryPolicy(max_attempts=max(2, self.max_replica_retries + 1),
                           base_delay=0.05, multiplier=2.0, max_delay=2.0,
                           jitter=0.25)

    def __repr__(self):
        return ("SupervisorConfig(replica_timeout=%r, sweep_deadline=%r, "
                "max_replica_retries=%d, on_failure=%r)"
                % (self.replica_timeout, self.sweep_deadline,
                   self.max_replica_retries, self.on_failure))


# -- worker side ---------------------------------------------------------------

def _worker_main(worker_id, spec, base_seed, tasks, results,
                 heartbeat_interval):
    """Supervised worker: run chunks off ``tasks``, report on ``results``.

    The campaign spec and base seed arrive once, as process arguments —
    a task is just the chunk's ``(index, chaos behaviour)`` items, so
    the spec never crosses the task pipe (same warm-worker economics as
    :mod:`repro.sim.workerpool`, which also supplies the compact binary
    row an ``ok`` message carries instead of a pickled replica dict).

    Protocol (all messages lead with a tag and the worker id):
    ``("start", wid, index)`` before each replica, ``("ok", wid, index,
    row_bytes)`` / ``("error", wid, index, type, detail)`` after it,
    ``("idle", wid)`` after each chunk, ``("hb", wid, index)`` from the
    heartbeat thread, ``("bye", wid)`` on orderly shutdown.  The
    ``start`` marker is what lets the supervisor attribute a crash to
    exactly one replica.
    """
    import repro.sim.poolwarm  # noqa: F401  (import side-effect warms caches)
    from repro.core.ensemble import run_replica
    from repro.sim.workerpool import encode_replica_row

    send_lock = threading.Lock()
    state = {"index": None, "stop": False, "frozen": False}

    def send(message):
        # Connection.send is not thread-safe; the heartbeat thread and
        # the main loop share the pipe.
        with send_lock:
            results.send(message)

    def beat():
        while not (state["stop"] or state["frozen"]):
            time.sleep(heartbeat_interval)
            if state["stop"] or state["frozen"]:
                return
            try:
                send(("hb", worker_id, state["index"]))
            except OSError:
                return

    threading.Thread(target=beat, daemon=True).start()

    try:
        while True:
            try:
                task = tasks.recv()
            except EOFError:
                return
            if task is None:
                send(("bye", worker_id))
                return
            for index, behavior in task:
                state["index"] = index
                send(("start", worker_id, index))
                if behavior == "crash":
                    os._exit(_CHAOS_EXIT_CODE)
                if behavior == "freeze":
                    state["frozen"] = True
                if behavior in ("hang", "freeze"):
                    time.sleep(_CHAOS_SLEEP_SECONDS)
                try:
                    if behavior == "error":
                        raise RuntimeError("chaos: injected replica error")
                    replica = run_replica(spec, index, base_seed)
                except Exception as exc:
                    send(("error", worker_id, index,
                          type(exc).__name__, str(exc)))
                else:
                    send(("ok", worker_id, index,
                          encode_replica_row(replica)))
                state["index"] = None
            send(("idle", worker_id))
    finally:
        state["stop"] = True


# -- supervisor side -----------------------------------------------------------

class _WallClock:
    """Monotonic wall-clock shim so the supervisor can record spans.

    Campaign spans run on virtual time; supervision happens in real
    time, so its spans get their own zero-based monotonic clock.
    """

    def __init__(self):
        self._t0 = time.perf_counter()

    @property
    def now(self):
        return time.perf_counter() - self._t0


class _Worker:
    """Supervisor-side handle for one worker process."""

    __slots__ = ("wid", "process", "tasks", "results", "remaining",
                 "current", "started", "last_beat", "span", "idle")

    def __init__(self, wid, process, tasks, results, span):
        self.wid = wid
        self.process = process
        self.tasks = tasks
        self.results = results
        self.span = span
        self.remaining = []
        self.current = None
        self.started = None
        self.last_beat = time.monotonic()
        self.idle = True

    @property
    def busy(self):
        return not self.idle


class SupervisionOutcome:
    """What a supervised dispatch produced: results, failures, report."""

    __slots__ = ("replicas", "failures", "report")

    def __init__(self, replicas, failures, report):
        #: Completed :class:`ReplicaResult` objects, in index order.
        self.replicas = replicas
        #: :class:`ReplicaFailure` records, in index order.
        self.failures = failures
        #: Machine-readable supervision report (counters, spans).
        self.report = report

    def __repr__(self):
        return ("SupervisionOutcome(%d replicas, %d failures)"
                % (len(self.replicas), len(self.failures)))


def supervise_sweep(spec, base_seed, pending, workers, chunk_size,
                    supervision, record=None, record_failure=None):
    """Run ``pending`` replica indices under supervision.

    ``record(replica)`` fires (in the supervisor process) the moment a
    replica completes — the sweep manifest hook; ``record_failure``
    fires when a replica is quarantined.  Returns a
    :class:`SupervisionOutcome`; raises only for supervisor-level
    breakdowns or, under ``on_failure="fail"``, the first quarantine.
    """
    from repro.core.ensemble import ReplicaFailure, replica_seed
    from repro.sim.sweep import shard_chunks
    from repro.sim.workerpool import decode_replica_row, pool_context

    pending = list(pending)
    clock = _WallClock()
    spans = SpanRecorder(clock)
    metrics = MetricsRegistry()
    root = spans.begin("sweep.supervise", replicas=len(pending),
                       workers=workers)

    attempts_allowed = supervision.max_replica_retries + 1
    chaos = supervision.chaos or ChaosPlan()
    policy = supervision.resolved_retry_policy()
    replica_timeout = supervision.replica_timeout
    hang_timeout = supervision.resolved_hang_timeout()
    deadline_at = (time.monotonic() + supervision.sweep_deadline
                   if supervision.sweep_deadline is not None else None)

    attempts = {index: 0 for index in pending}
    history = {index: [] for index in pending}
    completed = {}
    failures = {}
    backoffs = {}
    #: Chunks awaiting dispatch: (indices, earliest wall time to run).
    ready = deque((list(chunk), 0.0)
                  for chunk in shard_chunks(pending, chunk_size))
    initial_chunks = len(ready)
    target_workers = max(1, min(workers, initial_chunks))

    # Same warmed context as the plain warm pool: on the forkserver
    # path repro.sim.poolwarm is preloaded into the server, so every
    # worker — including each restart after a crash — is born with the
    # Lua compile cache populated instead of paying cold-start again.
    context = pool_context()
    pool = {}
    widgen = count(1)
    restarts = 0
    #: Every replica may legitimately kill a worker once per attempt;
    #: anything far beyond that is the supervisor spinning on a broken
    #: substrate, which must surface as an error, not a busy loop.
    restart_budget = len(pending) * attempts_allowed + 2 * target_workers + 8
    salvaged = False

    def spawn():
        wid = next(widgen)
        task_recv, task_send = context.Pipe(duplex=False)
        result_recv, result_send = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_main,
            args=(wid, spec, base_seed, task_recv, result_send,
                  supervision.heartbeat_interval),
            daemon=True, name="sweep-worker-%d" % wid)
        process.start()
        # Close the parent's copies of the child's pipe ends: recv on
        # the result pipe can then raise EOFError when the child dies,
        # which is the crash-detection signal.
        task_recv.close()
        result_send.close()
        span = spans.begin("supervisor.worker", parent=root, worker=wid)
        worker = _Worker(wid, process, task_send, result_recv, span)
        pool[wid] = worker
        metrics.inc("supervisor.workers_spawned")
        return worker

    def event_span(name, status=None, **attrs):
        span = spans.begin(name, parent=root, **attrs)
        spans.finish(span, status or STATUS_ERROR)

    def fail_attempt(index, reason, detail=None):
        """Charge one failed attempt; retry or quarantine."""
        n = attempts[index]
        history[index].append({"attempt": n, "reason": reason,
                               "detail": detail})
        if n >= attempts_allowed:
            failure = ReplicaFailure(
                index=index, seed=replica_seed(base_seed, index),
                attempts=n, reason=reason, quarantined=True,
                history=history[index])
            failures[index] = failure
            metrics.inc("supervisor.replicas_quarantined")
            event_span("supervisor.quarantine", replica=index,
                       reason=reason, attempts=n)
            if record_failure is not None:
                record_failure(failure)
            if supervision.on_failure == "fail":
                if reason == "timeout":
                    raise ReplicaTimeoutError(index, n, replica_timeout)
                raise PoisonReplicaError(index, n, reason)
            return
        # Retry as a singleton chunk after a deterministic backoff: the
        # schedule is a pure function of (policy, base seed, replica
        # seed), so a re-run of the same degraded sweep retries on an
        # identical timetable.
        schedule = backoffs.get(index)
        if schedule is None:
            schedule = backoffs[index] = deterministic_backoff(
                policy, base_seed, replica_seed(base_seed, index),
                attempts=max(attempts_allowed - 1, 0))
        delay = schedule[min(n, len(schedule)) - 1] if schedule else 0.0
        ready.append(([index], time.monotonic() + delay))
        metrics.inc("supervisor.replica_retries")
        event_span("supervisor.retry", status="ok", replica=index,
                   attempt=n, reason=reason, backoff=delay)

    def reap(worker, reason, detail=None):
        """Kill/bury a worker; re-queue and re-split its chunk."""
        nonlocal restarts
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join()
        worker.tasks.close()
        worker.results.close()
        del pool[worker.wid]
        restarts += 1
        metrics.inc("supervisor.worker_restarts")
        spans.finish(worker.span, STATUS_ERROR)
        if worker.current is not None:
            fail_attempt(worker.current, reason, detail)
        if worker.remaining:
            # The untouched tail of the chunk is innocent: dispatch it
            # as its own chunk so it never re-fails with the poison
            # replica (chunk re-splitting).
            ready.appendleft((list(worker.remaining), 0.0))
            metrics.inc("supervisor.chunks_resplit")
        if restarts > restart_budget:
            raise SupervisionError(
                "worker restart budget exhausted (%d restarts for a "
                "%d-replica sweep): the substrate is failing faster "
                "than replicas can complete" % (restarts, len(pending)))

    def handle(worker, message):
        tag = message[0]
        now = time.monotonic()
        worker.last_beat = now
        if tag == "start":
            index = message[2]
            worker.current = index
            worker.started = now
            if index in worker.remaining:
                worker.remaining.remove(index)
            attempts[index] += 1
        elif tag == "ok":
            index, payload = message[2], message[3]
            replica = decode_replica_row(payload, base_seed)
            if record is not None:
                record(replica)
            completed[index] = replica
            worker.current = None
            worker.started = None
            metrics.inc("supervisor.replicas_completed")
        elif tag == "error":
            index, kind, detail = message[2], message[3], message[4]
            worker.current = None
            worker.started = None
            metrics.inc("supervisor.replica_errors")
            fail_attempt(index, "error", "%s: %s" % (kind, detail))
        elif tag == "idle":
            worker.idle = True
            worker.current = None
            worker.started = None
            worker.remaining = []
        # "hb" and "bye" only refresh last_beat, done above.

    def dispatch():
        now = time.monotonic()
        idle = [worker for worker in pool.values() if worker.idle]
        for _ in range(len(ready)):
            if not idle:
                return
            chunk, not_before = ready[0]
            if not_before > now:
                # Not due yet (retry backoff): rotate past it so due
                # chunks behind it still dispatch this round.
                ready.rotate(-1)
                continue
            ready.popleft()
            worker = idle.pop()
            items = [(index, chaos.behavior(index, attempts[index] + 1))
                     for index in chunk]
            worker.tasks.send(items)
            worker.idle = False
            worker.remaining = list(chunk)
            worker.current = None
            worker.started = None
            worker.last_beat = now

    def next_wakeup():
        """Shortest sleep that cannot miss a timeout or a due retry."""
        timeout = supervision.poll_interval
        now = time.monotonic()
        for chunk, not_before in ready:
            if not_before > now:
                timeout = min(timeout, not_before - now)
        return max(timeout, 0.001)

    def police(now):
        for worker in list(pool.values()):
            if worker.idle:
                continue
            if worker.current is not None and replica_timeout is not None \
                    and now - worker.started > replica_timeout:
                metrics.inc("supervisor.replica_timeouts")
                reap(worker, "timeout",
                     "exceeded %.3fs wall-clock timeout" % replica_timeout)
            elif now - worker.last_beat > hang_timeout:
                metrics.inc("supervisor.worker_hangs")
                reap(worker, "hang",
                     "no heartbeat for %.3fs" % (now - worker.last_beat))

    def shutdown():
        grace_until = time.monotonic() + _SHUTDOWN_GRACE_SECONDS
        for worker in pool.values():
            if worker.idle:
                try:
                    worker.tasks.send(None)
                except OSError:
                    worker.process.kill()
            else:
                worker.process.kill()
        for worker in pool.values():
            worker.process.join(max(grace_until - time.monotonic(), 0.0))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            worker.tasks.close()
            worker.results.close()
            if not worker.span.finished:
                spans.finish(worker.span)
        pool.clear()

    try:
        while pending and len(completed) + len(failures) < len(pending):
            now = time.monotonic()
            if deadline_at is not None and now > deadline_at:
                salvaged = True
                metrics.inc("supervisor.deadline_expired")
                break
            while len(pool) < target_workers and \
                    len(pool) < len(ready) + sum(1 for w in pool.values()
                                                 if w.busy):
                spawn()
            dispatch()
            conns = {worker.results: worker for worker in pool.values()}
            if not conns:
                # Nothing live (everything quarantined mid-reap or all
                # chunks are backing off): sleep until the next retry.
                time.sleep(next_wakeup())
            else:
                for conn in _connection.wait(list(conns),
                                             timeout=next_wakeup()):
                    worker = conns[conn]
                    if worker.wid not in pool:
                        continue
                    try:
                        while conn.poll():
                            handle(worker, conn.recv())
                    except (EOFError, OSError):
                        metrics.inc("supervisor.worker_crashes")
                        reap(worker, "worker-crash",
                             "worker process died (exit code %r)"
                             % worker.process.exitcode)
            police(time.monotonic())
    finally:
        shutdown()

    if salvaged:
        # Deadline salvage: whatever never completed is recorded as a
        # retriable (non-quarantined) failure — resume re-runs it.
        for index in pending:
            if index not in completed and index not in failures:
                failures[index] = ReplicaFailure(
                    index=index, seed=replica_seed(base_seed, index),
                    attempts=attempts[index], reason="deadline",
                    quarantined=False, history=history[index])
    spans.finish(root, STATUS_ERROR if salvaged else "ok")

    report = {
        "workers": target_workers,
        "worker_restarts": restarts,
        "replicas_completed": len(completed),
        "replicas_failed": len(failures),
        "quarantined": sorted(index for index, failure in failures.items()
                              if failure.quarantined),
        "salvaged": salvaged,
        "wall_seconds": clock.now,
        "metrics": metrics.snapshot(),
        "spans": [span.as_dict() for span in spans],
    }
    return SupervisionOutcome(
        replicas=[completed[index] for index in sorted(completed)],
        failures=[failures[index] for index in sorted(failures)],
        report=report,
    )
