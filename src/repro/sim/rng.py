"""Seeded randomness for reproducible simulations.

Every stochastic decision in the library (which share a worm probes first,
how large a stolen document is, whether a Bluetooth device is in range)
draws from a :class:`DeterministicRandom` owned by the kernel, so a run is
fully determined by its seed.
"""

import random


class DeterministicRandom:
    """Thin, intention-revealing wrapper around :class:`random.Random`."""

    def __init__(self, seed=0):
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self):
        return self._seed

    def random(self):
        """A uniform float in [0, 1).

        The raw stream behind :meth:`chance`, exposed for hot loops
        (the epidemic stepper draws one Bernoulli per susceptible host
        per epoch) that hoist the bound method and compare against a
        precomputed hazard instead of paying a range check per draw.
        """
        return self._random.random()

    def chance(self, probability):
        """Return True with the given probability in [0, 1]."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1], got %r" % probability)
        return self._random.random() < probability

    def uniform(self, low, high):
        return self._random.uniform(low, high)

    def randint(self, low, high):
        return self._random.randint(low, high)

    def choice(self, sequence):
        return self._random.choice(sequence)

    def sample(self, population, count):
        return self._random.sample(population, count)

    def shuffle(self, items):
        """Shuffle ``items`` in place and also return it for chaining."""
        self._random.shuffle(items)
        return items

    def bytes(self, count):
        """Return ``count`` pseudo-random bytes."""
        return self._random.randbytes(count)

    def gauss(self, mu, sigma):
        return self._random.gauss(mu, sigma)

    def expovariate(self, rate):
        return self._random.expovariate(rate)

    def fork(self, label):
        """Derive an independent child stream keyed by ``label``.

        Components that create their own sub-streams (e.g. one per host)
        stay reproducible regardless of the order other components draw in.
        """
        return DeterministicRandom(seed="%r|%s" % (self._seed, label))

    def getstate(self):
        """JSON-safe snapshot of the stream: seed plus generator state.

        The seed travels with the Mersenne state because :meth:`fork`
        derives child seeds from it — restoring only the generator
        state would silently change every stream forked after a resume.
        """
        if isinstance(self._seed, bool) or \
                not isinstance(self._seed, (int, str)):
            from repro.sim.errors import CheckpointError

            raise CheckpointError(
                "only int or str seeds can be checkpointed, got %r"
                % (self._seed,))
        version, internal, gauss_next = self._random.getstate()
        return {
            "seed_kind": "int" if isinstance(self._seed, int) else "str",
            "seed": self._seed,
            "version": version,
            "internal": list(internal),
            "gauss_next": gauss_next,
        }

    def setstate(self, state):
        """Restore a stream captured by :meth:`getstate`.

        Accepts the JSON round-tripped form (inner state as a list);
        a malformed mapping raises ``CheckpointError`` rather than
        whatever ``random.setstate`` would throw.
        """
        from repro.sim.errors import CheckpointError

        try:
            seed = state["seed"]
            if state["seed_kind"] == "int":
                seed = int(seed)
            elif state["seed_kind"] != "str":
                raise KeyError("seed_kind")
            internal = tuple(state["internal"])
            self._random.setstate((state["version"], internal,
                                   state["gauss_next"]))
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                "malformed RNG state: %s: %s"
                % (type(exc).__name__, exc)) from exc
        self._seed = seed
