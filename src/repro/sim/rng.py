"""Seeded randomness for reproducible simulations.

Every stochastic decision in the library (which share a worm probes first,
how large a stolen document is, whether a Bluetooth device is in range)
draws from a :class:`DeterministicRandom` owned by the kernel, so a run is
fully determined by its seed.
"""

import random


class DeterministicRandom:
    """Thin, intention-revealing wrapper around :class:`random.Random`."""

    def __init__(self, seed=0):
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self):
        return self._seed

    def chance(self, probability):
        """Return True with the given probability in [0, 1]."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1], got %r" % probability)
        return self._random.random() < probability

    def uniform(self, low, high):
        return self._random.uniform(low, high)

    def randint(self, low, high):
        return self._random.randint(low, high)

    def choice(self, sequence):
        return self._random.choice(sequence)

    def sample(self, population, count):
        return self._random.sample(population, count)

    def shuffle(self, items):
        """Shuffle ``items`` in place and also return it for chaining."""
        self._random.shuffle(items)
        return items

    def bytes(self, count):
        """Return ``count`` pseudo-random bytes."""
        return self._random.randbytes(count)

    def gauss(self, mu, sigma):
        return self._random.gauss(mu, sigma)

    def expovariate(self, rate):
        return self._random.expovariate(rate)

    def fork(self, label):
        """Derive an independent child stream keyed by ``label``.

        Components that create their own sub-streams (e.g. one per host)
        stay reproducible regardless of the order other components draw in.
        """
        return DeterministicRandom(seed="%r|%s" % (self._seed, label))
