"""Deterministic fault injection for the simulated substrate.

The paper's most distinctive machinery exists to *survive failure*:
Flame's 80-domain rotation outlives takedowns and sinkholing (§III.B),
its hidden USB database is a degraded-mode exfil channel for when no
C&C is reachable, and Stuxnet ships two redundant futbol domains.  None
of that machinery is exercised by a perfectly reliable substrate, so
the :class:`FaultInjector` lets a scenario break things on purpose:
DNS blackouts, registrar takedowns, sinkholing campaigns, per-site
outages, packet loss, and added latency — all seeded, clock-driven,
and recorded in the kernel's :class:`~repro.sim.trace.TraceLog` so two
runs with the same seed produce identical fault schedules and traces.

Faults surface through the *existing* network error taxonomy
(``NoRouteError``/``NetworkError``): clients cannot tell an injected
takedown from a real one, which is exactly the point.
"""

import math


class FaultKind:
    """Canonical names for the supported fault classes."""

    DNS_BLACKOUT = "dns-blackout"  # resolutions answer NXDOMAIN
    TAKEDOWN = "takedown"          # registrar seizure: permanent NXDOMAIN
    SINKHOLE = "sinkhole"          # resolutions answer the research sinkhole
    OUTAGE = "outage"              # server (or LAN uplink) refuses traffic
    PACKET_LOSS = "packet-loss"    # probabilistic request drop
    LATENCY = "latency"            # added seconds per request

    ALL = (DNS_BLACKOUT, TAKEDOWN, SINKHOLE, OUTAGE, PACKET_LOSS, LATENCY)


#: Scope key for faults applied to the whole simulated internet.
GLOBAL_SCOPE = "internet"

#: Requests whose accumulated injected latency reaches this threshold
#: behave as client-side timeouts (a latency fault severe enough to be
#: indistinguishable from an outage).
REQUEST_TIMEOUT = 30.0


def lan_scope(lan_name):
    """Scope key addressing one LAN's uplink."""
    return "lan:%s" % lan_name


class FaultWindow:
    """One scheduled fault: a kind, a target, and a time interval.

    ``end=None`` means the fault never lifts (a takedown).  ``param``
    carries the kind-specific payload: drop probability, added seconds,
    or the sinkhole address.
    """

    __slots__ = ("kind", "target", "start", "end", "param", "fired")

    def __init__(self, kind, target, start, end=None, param=None):
        if end is not None and end < start:
            raise ValueError("fault window ends before it starts: "
                             "[%r, %r)" % (start, end))
        self.kind = kind
        self.target = target
        self.start = start
        self.end = end
        self.param = param
        #: How many times this window actually affected a request.
        self.fired = 0

    def active_at(self, now):
        return self.start <= now and (self.end is None or now < self.end)

    def as_dict(self):
        """Stable description, used for schedule comparison in tests."""
        return {"kind": self.kind, "target": self.target,
                "start": self.start, "end": self.end, "param": self.param}

    def __repr__(self):
        span = ("[%.1f, inf)" % self.start if self.end is None
                else "[%.1f, %.1f)" % (self.start, self.end))
        return "FaultWindow(%s, %r, %s)" % (self.kind, self.target, span)


class FaultInjector:
    """Schedules and applies seeded, clock-driven fault windows.

    Owned by the :class:`~repro.sim.events.Kernel`; the network
    substrate consults it on every DNS resolution and HTTP dispatch.
    Probabilistic faults draw from a dedicated forked RNG stream so
    enabling fault injection never perturbs the draws other components
    make from the kernel's main stream.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.rng = kernel.rng.fork("faults")
        self._windows = []
        self.stats = {
            "windows_scheduled": 0,
            "dns_faults": 0,
            "outage_refusals": 0,
            "packets_dropped": 0,
            "latency_hits": 0,
            "timeouts": 0,
            "latency_seconds": 0.0,
        }

    # -- scheduling -----------------------------------------------------------

    def _add(self, kind, target, start, end, param=None):
        start = self.kernel.clock.now if start is None else float(start)
        window = FaultWindow(kind, target, start, end, param)
        self._windows.append(window)
        self.stats["windows_scheduled"] += 1
        self.kernel.metrics.inc("faults.windows_scheduled")
        self.kernel.metrics.inc("faults.windows_scheduled.%s" % kind)
        self.kernel.trace.record(
            "faults", "fault-scheduled", target, kind=kind, start=start,
            end=(math.inf if end is None else end), param=param,
        )
        return window

    def inject_dns_blackout(self, domain, start=None, duration=3600.0):
        """NXDOMAIN window for one domain (resolver failure, DNS filtering)."""
        start = self.kernel.clock.now if start is None else float(start)
        return self._add(FaultKind.DNS_BLACKOUT, domain.lower(), start,
                         start + duration)

    def inject_takedown(self, domain, at=None):
        """Registrar seizure: the domain stops resolving, permanently."""
        return self._add(FaultKind.TAKEDOWN, domain.lower(), at, None)

    def inject_sinkhole(self, domain, at=None,
                        sinkhole_address="sinkhole.research.net"):
        """Research sinkholing: resolutions succeed — to the sinkhole."""
        return self._add(FaultKind.SINKHOLE, domain.lower(), at, None,
                         param=sinkhole_address)

    def inject_outage(self, target, start=None, duration=3600.0):
        """Take a server address (or a :func:`lan_scope` uplink) dark."""
        start = self.kernel.clock.now if start is None else float(start)
        return self._add(FaultKind.OUTAGE, target, start, start + duration)

    def inject_packet_loss(self, probability, start=None, duration=3600.0,
                           scope=GLOBAL_SCOPE):
        """Drop each in-scope request with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1], got %r"
                             % probability)
        start = self.kernel.clock.now if start is None else float(start)
        return self._add(FaultKind.PACKET_LOSS, scope, start,
                         start + duration, param=probability)

    def inject_latency(self, seconds, start=None, duration=3600.0,
                       scope=GLOBAL_SCOPE):
        """Add ``seconds`` to every in-scope request.

        Delivery in the substrate is synchronous, so latency is recorded
        rather than consuming virtual time — but once a request's total
        added latency reaches :data:`REQUEST_TIMEOUT` it fails like an
        outage, which is what the retry layer reacts to.
        """
        if seconds < 0:
            raise ValueError("latency must be non-negative, got %r" % seconds)
        start = self.kernel.clock.now if start is None else float(start)
        return self._add(FaultKind.LATENCY, scope, start, start + duration,
                         param=seconds)

    def inject_takedown_campaign(self, domains, start=None, interval=0.0):
        """Staggered registrar seizures: domain *i* falls at
        ``start + i * interval`` (the order researchers actually worked
        through Flame's rotation).  Returns the windows."""
        start = self.kernel.clock.now if start is None else float(start)
        return [self.inject_takedown(domain, at=start + index * interval)
                for index, domain in enumerate(domains)]

    def inject_sinkhole_campaign(self, domains, start=None, interval=0.0,
                                 sinkhole_address="sinkhole.research.net"):
        """Staggered sinkholing sweep across a domain list."""
        start = self.kernel.clock.now if start is None else float(start)
        return [self.inject_sinkhole(domain, at=start + index * interval,
                                     sinkhole_address=sinkhole_address)
                for index, domain in enumerate(domains)]

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self):
        """Primitive rendering of the schedule, stats, and RNG stream.

        ``fired`` counts travel with each window so a restored injector
        keeps attributing hits to the right windows, and the forked RNG
        state guarantees the post-resume packet-loss dice match the
        uninterrupted run draw for draw.
        """
        return {
            "windows": [
                {"kind": w.kind, "target": w.target, "start": w.start,
                 "end": w.end, "param": w.param, "fired": w.fired}
                for w in self._windows
            ],
            "stats": dict(self.stats),
            "rng": self.rng.getstate(),
        }

    def load_state(self, state):
        """Replace schedule, stats, and RNG with a checkpointed snapshot."""
        from repro.sim.errors import CheckpointError

        try:
            windows = []
            for entry in state["windows"]:
                window = FaultWindow(entry["kind"], entry["target"],
                                     entry["start"], entry["end"],
                                     entry["param"])
                window.fired = entry["fired"]
                windows.append(window)
            stats = dict(state["stats"])
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                "malformed fault-injector state: %s: %s"
                % (type(exc).__name__, exc)) from exc
        self.rng.setstate(state["rng"])
        self._windows = windows
        self.stats = stats

    # -- introspection --------------------------------------------------------

    def windows(self, kind=None):
        """Scheduled windows, in injection order (deterministic)."""
        return [w for w in self._windows if kind is None or w.kind == kind]

    def schedule(self):
        """The full schedule as comparable dicts (for determinism tests)."""
        return [w.as_dict() for w in self._windows]

    def total_fired(self):
        return sum(w.fired for w in self._windows)

    # -- query hooks (called by the network substrate) ------------------------

    def _fire(self, window, stat, target, detail):
        window.fired += 1
        self.stats[stat] += 1
        metrics = self.kernel.metrics
        metrics.inc("faults.window_hits")
        metrics.inc("faults.%s" % stat)
        self.kernel.trace.record("faults", "fault-injected", target,
                                 kind=window.kind, **detail)

    def dns_disposition(self, domain):
        """How injected faults affect resolving ``domain`` right now.

        Returns ``None`` (no fault), ``("nxdomain", None)``, or
        ``("sinkhole", address)``.  The latest matching injection wins,
        so a sinkhole layered over a blackout behaves like the real
        sequence of countermeasures.
        """
        domain = domain.lower()
        now = self.kernel.clock.now
        disposition = None
        for window in self._windows:
            if window.target != domain or not window.active_at(now):
                continue
            if window.kind in (FaultKind.DNS_BLACKOUT, FaultKind.TAKEDOWN):
                disposition = ("nxdomain", None, window)
            elif window.kind == FaultKind.SINKHOLE:
                disposition = ("sinkhole", window.param, window)
        if disposition is None:
            return None
        action, value, window = disposition
        self._fire(window, "dns_faults", domain, {"disposition": action})
        return action, value

    def site_down(self, target):
        """Is an outage window currently open for this address/uplink?"""
        now = self.kernel.clock.now
        for window in self._windows:
            if (window.kind == FaultKind.OUTAGE and window.target == target
                    and window.active_at(now)):
                self._fire(window, "outage_refusals", target, {})
                return True
        return False

    def should_drop(self, *scopes):
        """Draw the packet-loss dice for a request across ``scopes``.

        One draw per active window, in injection order, so the consumed
        randomness — and therefore the trace — is seed-deterministic.
        """
        now = self.kernel.clock.now
        for window in self._windows:
            if (window.kind == FaultKind.PACKET_LOSS
                    and window.target in scopes and window.active_at(now)):
                if self.rng.chance(window.param):
                    self._fire(window, "packets_dropped", window.target,
                               {"probability": window.param})
                    return True
        return False

    def extra_latency(self, *scopes):
        """Summed injected latency for a request across ``scopes``.

        Also records the contribution; callers compare the result
        against :data:`REQUEST_TIMEOUT` to decide whether the request
        effectively timed out (and report it via :meth:`note_timeout`).
        """
        now = self.kernel.clock.now
        total = 0.0
        for window in self._windows:
            if (window.kind == FaultKind.LATENCY
                    and window.target in scopes and window.active_at(now)):
                total += window.param
                self.stats["latency_seconds"] += window.param
                self._fire(window, "latency_hits", window.target,
                           {"added_seconds": window.param})
        return total

    def note_timeout(self, target):
        """Record that accumulated latency turned into a client timeout."""
        self.stats["timeouts"] += 1
        self.kernel.metrics.inc("faults.timeouts")
        self.kernel.trace.record("faults", "fault-timeout", target)
