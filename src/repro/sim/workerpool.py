"""Warm, reusable worker pool for the parallel sweep path.

``run_sweep(mode="parallel")`` used to build a fresh
``multiprocessing.Pool`` per sweep and pickle the full ``(spec,
base_seed, indices)`` payload with every chunk — pool churn plus
per-chunk spec pickling swamped the replica work, leaving the parallel
path *slower* than serial on the quick workloads.  This module is the
replacement:

* **Persistent workers.**  A :class:`WarmPool` owns N long-lived
  worker processes.  Each receives the pickle-safe ``CampaignSpec``
  exactly **once** at warm-up; every subsequent task is just a list of
  replica indices (a few dozen bytes), never the spec again.
* **Warm caches.**  Workers pre-warm the Lua ``compile_cached`` store
  before their first task via :mod:`repro.sim.poolwarm` — preloaded
  into the fork server on the forkserver path, inherited through fork,
  imported at startup under spawn — so no replica ever pays first-use
  compile latency.
* **Compact result rows.**  Workers ship each finished replica home as
  a struct-framed binary row (:func:`encode_replica_row`) instead of a
  pickled ``ReplicaResult``: a fixed header of scalars plus
  length-prefixed compact-JSON blobs for the measurement and metric
  snapshots.  The replica's seed is *not* shipped at all — it is a pure
  function of ``(base_seed, index)`` and is recomputed on decode, which
  is both smaller and a standing determinism check.
* **Cross-sweep reuse.**  :func:`shared_pool` keeps one warm pool alive
  between sweeps keyed on ``(spec, base_seed, workers)``, so a resumed
  sweep (or a benchmark loop) stops paying pool start-up entirely.  An
  ``atexit`` hook shuts the survivor down.

Like :mod:`repro.sim.sweep`, this module drives :mod:`repro.core`
campaigns from inside :mod:`repro.sim`, so the ensemble imports happen
lazily inside functions to keep package import order acyclic.
"""

import atexit
import json
import multiprocessing
import struct
import time
from collections import deque
from multiprocessing import connection as _connection

from repro.sim.errors import SweepWorkerError

#: Start-method preference.  forkserver gives clean workers that are
#: still cheap to mint (and lets :mod:`repro.sim.poolwarm` be preloaded
#: into the server, so workers are born warm); fork is the fallback
#: where forkserver is missing; spawn always works because the worker
#: entrypoint and everything it pickles are module-level.
_PREFERRED_START_METHODS = ("forkserver", "fork", "spawn")

#: Wall-clock grace given to workers at orderly shutdown before SIGKILL.
_SHUTDOWN_GRACE_SECONDS = 2.0

# Result-pipe frame tags (first byte of every frame).
_FRAME_ROW = b"R"
_FRAME_ERROR = b"E"
_FRAME_DONE = b"D"

#: Fixed row header: index, trace_records, events_dispatched,
#: sim_seconds, wall_seconds.
_ROW_HEADER = struct.Struct("<IQQdd")
_LEN = struct.Struct("<I")
_ERROR_HEADER = struct.Struct("<I")


def pool_start_method():
    """The start method warm pools (and the supervisor) run under."""
    available = multiprocessing.get_all_start_methods()
    for method in _PREFERRED_START_METHODS:
        if method in available:
            return method
    return "spawn"


def pool_context(start_method=None):
    """A multiprocessing context configured for warm sweep workers.

    On the forkserver path the warm-up module is preloaded into the
    server process, so every worker it forks starts with the Lua
    compile cache already populated.
    """
    method = start_method or pool_start_method()
    context = multiprocessing.get_context(method)
    if method == "forkserver":
        context.set_forkserver_preload(["repro.sim.poolwarm"])
    return context


# -- result-row codec ----------------------------------------------------------

def _pack_blob(obj):
    blob = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(blob)) + blob


def encode_replica_row(replica):
    """Pack a ``ReplicaResult`` into a compact binary row.

    Fixed struct header for the scalars, then length-prefixed UTF-8
    fields: the trace digest, and compact-JSON blobs for the
    measurement and metric snapshots (both are primitive-only by
    construction, so JSON round-trips them exactly).  The seed is
    omitted on purpose — see :func:`decode_replica_row`.
    """
    digest = replica.trace_digest.encode("utf-8")
    return b"".join((
        _ROW_HEADER.pack(replica.index, replica.trace_records,
                         replica.events_dispatched, replica.sim_seconds,
                         replica.wall_seconds),
        _LEN.pack(len(digest)), digest,
        _pack_blob(replica.measurements),
        _pack_blob(replica.metrics),
    ))


def decode_replica_row(row, base_seed):
    """Rebuild a ``ReplicaResult`` from :func:`encode_replica_row` output.

    The seed is recomputed from ``(base_seed, index)`` rather than
    shipped: it is a pure function of the two
    (:func:`repro.core.ensemble.replica_seed`), so carrying it across
    the pipe would only be bytes spent re-stating an invariant.
    """
    from repro.core.ensemble import ReplicaResult, replica_seed

    (index, trace_records, events_dispatched,
     sim_seconds, wall_seconds) = _ROW_HEADER.unpack_from(row)
    offset = _ROW_HEADER.size
    fields = []
    for _ in range(3):
        (size,) = _LEN.unpack_from(row, offset)
        offset += _LEN.size
        fields.append(row[offset:offset + size])
        offset += size
    digest, measurements, metrics = fields
    return ReplicaResult(
        index=index,
        seed=replica_seed(base_seed, index),
        measurements=json.loads(measurements.decode("utf-8")),
        trace_digest=digest.decode("utf-8"),
        trace_records=trace_records,
        events_dispatched=events_dispatched,
        sim_seconds=sim_seconds,
        wall_seconds=wall_seconds,
        metrics=json.loads(metrics.decode("utf-8")),
    )


def _encode_error(index, exc):
    detail = "%s\x00%s" % (type(exc).__name__, exc)
    return (_FRAME_ERROR + _ERROR_HEADER.pack(index)
            + detail.encode("utf-8", "replace"))


def _decode_error(payload):
    (index,) = _ERROR_HEADER.unpack_from(payload)
    kind, _, detail = \
        payload[_ERROR_HEADER.size:].decode("utf-8").partition("\x00")
    return index, kind, detail


# -- worker side ---------------------------------------------------------------

def _pool_worker_main(tasks, results):
    """Warm-pool worker: one warm-up message, then chunks until None.

    The first message on ``tasks`` is ``(spec, base_seed)`` — the only
    time the spec crosses the pipe.  Every later message is a plain
    list of replica indices (``None`` = orderly shutdown).  Results go
    back as framed bytes: one ``R`` row per replica, an ``E`` error row
    when a replica raises (the worker stays alive and finishes its
    chunk), and a ``D`` marker when the chunk is drained.
    """
    import repro.sim.poolwarm  # noqa: F401  (import side-effect warms caches)
    from repro.core.ensemble import run_replica

    try:
        spec, base_seed = tasks.recv()
        while True:
            chunk = tasks.recv()
            if chunk is None:
                return
            for index in chunk:
                try:
                    replica = run_replica(spec, index, base_seed)
                except Exception as exc:
                    results.send_bytes(_encode_error(index, exc))
                else:
                    results.send_bytes(_FRAME_ROW
                                       + encode_replica_row(replica))
            results.send_bytes(_FRAME_DONE)
    except (EOFError, OSError, KeyboardInterrupt):
        # Parent went away (or is tearing us down): just exit.
        return


# -- parent side ---------------------------------------------------------------

class _PoolWorker:
    """Parent-side handle for one warm worker process."""

    __slots__ = ("wid", "process", "tasks", "results")

    def __init__(self, wid, process, tasks, results):
        self.wid = wid
        self.process = process
        self.tasks = tasks
        self.results = results


class WarmPool:
    """N persistent worker processes warmed for one ``(spec, base_seed)``.

    The pool outlives individual :meth:`run` calls: a sweep dispatches
    its chunks, the workers drain them and go idle, and the next sweep
    over the same spec reuses the same (still warm) processes.  Use
    :func:`shared_pool` for the process-wide reusable instance;
    construct directly for a private, single-sweep pool.
    """

    def __init__(self, spec, base_seed, workers, start_method=None):
        if isinstance(workers, bool) or not isinstance(workers, int) \
                or workers < 1:
            raise ValueError("workers must be an integer >= 1, got %r"
                             % (workers,))
        self.spec = spec
        self.base_seed = base_seed
        self.workers = workers
        self._context = pool_context(start_method)
        # Warm the parent too: under fork the children then inherit the
        # compile cache outright, and the serial probe/fallback paths
        # in run_sweep benefit as well.
        import repro.sim.poolwarm  # noqa: F401
        self._closed = False
        self._workers = [self._spawn(wid)
                         for wid in range(1, workers + 1)]

    def _spawn(self, wid):
        task_recv, task_send = self._context.Pipe(duplex=False)
        result_recv, result_send = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_pool_worker_main, args=(task_recv, result_send),
            daemon=True, name="sweep-warm-%d" % wid)
        process.start()
        # Close the parent's copies of the child's pipe ends: recv on
        # the result pipe can then raise EOFError when the child dies,
        # which is the crash-detection signal.
        task_recv.close()
        result_send.close()
        # The one and only spec transfer this worker will ever see.
        task_send.send((self.spec, self.base_seed))
        return _PoolWorker(wid, process, task_send, result_recv)

    def alive(self):
        """True while every worker process is up and the pool is open."""
        return (not self._closed
                and all(worker.process.is_alive()
                        for worker in self._workers))

    def pids(self):
        return [worker.process.pid for worker in self._workers]

    def run(self, chunks, on_replica=None):
        """Dispatch chunks of replica indices; return decoded replicas.

        Streams: ``on_replica`` (the sweep's manifest hook) fires the
        moment each row lands, so a crash mid-dispatch loses at most
        the in-flight chunks.  A replica exception inside a worker is
        reported, dispatch of *new* chunks stops, in-flight chunks
        drain, and the typed :class:`SweepWorkerError` is raised — with
        ``pool_broken=False``, because the workers themselves are
        healthy.  A worker *death* raises the same error with
        ``pool_broken=True``; the caller must then terminate the pool.
        """
        if self._closed:
            raise RuntimeError("cannot dispatch on a closed WarmPool")
        queue = deque(list(chunk) for chunk in chunks if chunk)
        idle = list(self._workers)
        busy = {}
        replicas = []
        errors = []
        while queue or busy:
            while queue and idle and not errors:
                worker = idle.pop()
                try:
                    worker.tasks.send(queue.popleft())
                except (OSError, ValueError):
                    # The worker's end of the task pipe is gone: the
                    # process died while idle.
                    raise SweepWorkerError(
                        None, "worker-crash",
                        "worker process died before dispatch (exit "
                        "code %r)" % (worker.process.exitcode,),
                        pool_broken=True)
                busy[worker.wid] = worker
            if not busy:
                break
            conns = {worker.results: worker for worker in busy.values()}
            for conn in _connection.wait(list(conns)):
                worker = conns[conn]
                try:
                    while conn.poll():
                        frame = conn.recv_bytes()
                        tag = frame[:1]
                        if tag == _FRAME_ROW:
                            replica = decode_replica_row(frame[1:],
                                                         self.base_seed)
                            if on_replica is not None:
                                on_replica(replica)
                            replicas.append(replica)
                        elif tag == _FRAME_ERROR:
                            errors.append(_decode_error(frame[1:]))
                        elif tag == _FRAME_DONE:
                            del busy[worker.wid]
                            idle.append(worker)
                except (EOFError, OSError):
                    raise SweepWorkerError(
                        None, "worker-crash",
                        "worker process died mid-chunk (exit code %r); "
                        "use mode=\"supervised\" for crash recovery"
                        % (worker.process.exitcode,),
                        pool_broken=True)
        if errors:
            index, kind, detail = errors[0]
            raise SweepWorkerError(index, kind, detail,
                                   dropped=len(errors) - 1)
        return replicas

    def close(self):
        """Orderly shutdown: ask idle workers to exit, then reap."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.tasks.send(None)
            except (OSError, ValueError):
                worker.process.kill()
        deadline = time.monotonic() + _SHUTDOWN_GRACE_SECONDS
        for worker in self._workers:
            worker.process.join(max(deadline - time.monotonic(), 0.0))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            worker.tasks.close()
            worker.results.close()

    def terminate(self):
        """Hard shutdown: kill workers without draining (interrupt path)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.kill()
        for worker in self._workers:
            worker.process.join()
            worker.tasks.close()
            worker.results.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.close()
        else:
            self.terminate()

    def __repr__(self):
        state = "closed" if self._closed else "warm"
        return ("WarmPool(%d workers, %s, spec=%r)"
                % (self.workers, state, getattr(self.spec, "name", None)))


# -- process-wide shared pool --------------------------------------------------

_shared = {"pool": None, "key": None}


def _shared_key(spec, base_seed, workers):
    return (json.dumps(spec.as_dict(), sort_keys=True, default=str),
            repr(base_seed), int(workers))


def shared_pool(spec, base_seed, workers):
    """The process-wide warm pool for ``(spec, base_seed, workers)``.

    Returns ``(pool, reused)``.  A live pool warmed for the same key is
    handed back as-is (``reused=True``) — this is what lets a resumed
    sweep, a sweep-after-failed-sweep, or a benchmark loop skip pool
    start-up entirely.  Any key change closes the old pool first: one
    warm pool per process, never a leak-prone collection of them.
    """
    key = _shared_key(spec, base_seed, workers)
    pool = _shared["pool"]
    if pool is not None and _shared["key"] == key and pool.alive():
        return pool, True
    shutdown_shared_pool()
    pool = WarmPool(spec, base_seed, workers)
    _shared["pool"] = pool
    _shared["key"] = key
    return pool, False


def invalidate_shared_pool(pool):
    """Terminate ``pool``; drop it from the shared slot if it is there."""
    pool.terminate()
    if _shared["pool"] is pool:
        _shared["pool"] = None
        _shared["key"] = None


def shutdown_shared_pool():
    """Close the shared pool, if any (atexit hook, key changes, tests)."""
    pool = _shared["pool"]
    _shared["pool"] = None
    _shared["key"] = None
    if pool is not None:
        pool.close()


atexit.register(shutdown_shared_pool)
