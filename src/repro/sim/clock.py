"""Virtual wall-clock for the simulation.

The campaign the paper describes is anchored to real calendar dates
(Stuxnet surfaces in 2010, Flame's suicide broadcast lands in late May
2012, Shamoon's wiper trigger is hardcoded to 2012-08-15 08:08 UTC), so
the clock speaks both "seconds since simulation start" and real UTC
datetimes.
"""

from datetime import datetime, timedelta, timezone

#: Default origin of virtual time.  The campaign window covered by the
#: paper opens with Stuxnet's discovery in mid-2010.
SIM_EPOCH = datetime(2010, 1, 1, tzinfo=timezone.utc)

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


class SimClock:
    """Monotonically advancing virtual clock.

    The clock only moves when the kernel dispatches events; nothing in the
    library ever reads the host's real time.
    """

    def __init__(self, epoch=SIM_EPOCH):
        if epoch.tzinfo is None:
            epoch = epoch.replace(tzinfo=timezone.utc)
        self._epoch = epoch
        self._now = 0.0

    @property
    def epoch(self):
        """Datetime corresponding to virtual t=0."""
        return self._epoch

    @property
    def now(self):
        """Current virtual time in seconds since :attr:`epoch`."""
        return self._now

    @property
    def now_dt(self):
        """Current virtual time as an aware UTC datetime."""
        return self._epoch + timedelta(seconds=self._now)

    def advance_to(self, when):
        """Move the clock forward to ``when`` seconds.

        Raises ``ValueError`` if that would move the clock backwards.
        """
        if when < self._now:
            raise ValueError(
                "clock cannot move backwards: %.6f < %.6f" % (when, self._now)
            )
        self._now = when

    def seconds_until(self, moment):
        """Seconds of virtual time from now until the datetime ``moment``.

        Negative if ``moment`` is already in the virtual past.
        """
        if moment.tzinfo is None:
            moment = moment.replace(tzinfo=timezone.utc)
        return (moment - self.now_dt).total_seconds()

    def to_seconds(self, moment):
        """Convert an aware datetime to seconds-since-epoch on this clock."""
        if moment.tzinfo is None:
            moment = moment.replace(tzinfo=timezone.utc)
        return (moment - self._epoch).total_seconds()

    def __repr__(self):
        return "SimClock(now=%.3f, %s)" % (self._now, self.now_dt.isoformat())
