"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for every error raised by the simulation kernel."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled before the current virtual time."""

    def __init__(self, now, when):
        super().__init__(
            "cannot schedule event at t=%.6f; clock is already at t=%.6f"
            % (when, now)
        )
        self.now = now
        self.when = when


class SupervisionError(SimulationError):
    """The supervised sweep could not keep its worker pool productive.

    Raised for supervisor-level breakdowns (e.g. workers dying faster
    than the restart budget allows), as opposed to the per-replica
    failures below, which are recoverable and normally end up as
    structured ``ReplicaFailure`` records instead of exceptions.
    """


class ReplicaTimeoutError(SupervisionError):
    """A replica exhausted its retries by exceeding the wall-clock
    timeout every time (raised only under ``on_failure="fail"``)."""

    def __init__(self, index, attempts, timeout):
        super().__init__(
            "replica %d exceeded the %.3fs wall-clock timeout on all "
            "%d attempt%s" % (index, timeout, attempts,
                              "" if attempts == 1 else "s"))
        self.index = index
        self.attempts = attempts
        self.timeout = timeout


class PoisonReplicaError(SupervisionError):
    """A replica failed every allowed attempt (raised only under
    ``on_failure="fail"``; ``on_failure="quarantine"`` records a
    ``ReplicaFailure`` instead and lets the sweep finish)."""

    def __init__(self, index, attempts, reason):
        super().__init__(
            "replica %d failed %d attempt%s (last failure: %s)"
            % (index, attempts, "" if attempts == 1 else "s", reason))
        self.index = index
        self.attempts = attempts
        self.reason = reason


class SweepWorkerError(SimulationError):
    """A replica failed inside a (non-supervised) warm-pool worker.

    The worker catches replica exceptions at the chunk boundary and
    reports them as framed error rows, so the pool itself normally
    stays healthy — ``pool_broken`` is True only when the worker
    *process* died mid-chunk (detected as pipe EOF), in which case the
    pool must be torn down rather than reused.  For crash *recovery*
    instead of a raised error, use ``mode="supervised"``.
    """

    def __init__(self, index, kind, detail, dropped=0, pool_broken=False):
        where = ("replica %d" % index) if index is not None else "a replica"
        extra = ""
        if dropped:
            extra = " (+%d more replica error%s)" % (
                dropped, "" if dropped == 1 else "s")
        super().__init__("%s failed in a warm-pool worker: %s: %s%s"
                         % (where, kind, detail, extra))
        self.index = index
        self.kind = kind
        self.detail = detail
        self.dropped = dropped
        self.pool_broken = pool_broken


class CheckpointError(SimulationError):
    """A checkpoint could not be written, read, restored, or verified.

    Every failure mode of the snapshot/resume layer surfaces as this
    type (or a subclass below) at the file boundary, so callers never
    see a raw ``JSONDecodeError``/``KeyError`` from deep inside
    deserialization when a checkpoint is corrupted or truncated.
    """


class CheckpointVersionError(CheckpointError):
    """A checkpoint was written by an incompatible format version."""

    def __init__(self, expected, found, path=None):
        where = " in %s" % path if path else ""
        super().__init__(
            "checkpoint format version mismatch%s: this build reads "
            "version %r, file declares %r" % (where, expected, found)
        )
        self.expected = expected
        self.found = found
        self.path = path


class CheckpointDigestError(CheckpointError):
    """A checkpoint's content does not match its recorded SHA-256."""

    def __init__(self, expected, found, path=None):
        where = " in %s" % path if path else ""
        super().__init__(
            "checkpoint digest mismatch%s: recorded %s..., content "
            "hashes to %s... (corrupted or tampered file)"
            % (where, str(expected)[:12], str(found)[:12])
        )
        self.expected = expected
        self.found = found
        self.path = path
