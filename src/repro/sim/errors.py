"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for every error raised by the simulation kernel."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled before the current virtual time."""

    def __init__(self, now, when):
        super().__init__(
            "cannot schedule event at t=%.6f; clock is already at t=%.6f"
            % (when, now)
        )
        self.now = now
        self.when = when
