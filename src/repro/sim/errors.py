"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for every error raised by the simulation kernel."""


class ScheduleInPastError(SimulationError):
    """Raised when an event is scheduled before the current virtual time."""

    def __init__(self, now, when):
        super().__init__(
            "cannot schedule event at t=%.6f; clock is already at t=%.6f"
            % (when, now)
        )
        self.now = now
        self.when = when


class CheckpointError(SimulationError):
    """A checkpoint could not be written, read, restored, or verified.

    Every failure mode of the snapshot/resume layer surfaces as this
    type (or a subclass below) at the file boundary, so callers never
    see a raw ``JSONDecodeError``/``KeyError`` from deep inside
    deserialization when a checkpoint is corrupted or truncated.
    """


class CheckpointVersionError(CheckpointError):
    """A checkpoint was written by an incompatible format version."""

    def __init__(self, expected, found, path=None):
        where = " in %s" % path if path else ""
        super().__init__(
            "checkpoint format version mismatch%s: this build reads "
            "version %r, file declares %r" % (where, expected, found)
        )
        self.expected = expected
        self.found = found
        self.path = path


class CheckpointDigestError(CheckpointError):
    """A checkpoint's content does not match its recorded SHA-256."""

    def __init__(self, expected, found, path=None):
        where = " in %s" % path if path else ""
        super().__init__(
            "checkpoint digest mismatch%s: recorded %s..., content "
            "hashes to %s... (corrupted or tampered file)"
            % (where, str(expected)[:12], str(found)[:12])
        )
        self.expected = expected
        self.found = found
        self.path = path
