"""Client-side resilience: bounded retries with exponential backoff.

The malware the paper dissects did not give up after one failed C&C
contact — Flame rotates through its learned domain list, Stuxnet fails
over between its two futbol domains, Shamoon's reporter keeps trying
while the wipe proceeds.  :class:`RetryPolicy` is the shared primitive:
a bounded number of attempts separated by exponential backoff with
seeded jitter, scheduled on the kernel so backoff consumes *virtual*
time and every retry lands in the deterministic event order.
"""


class RetryPolicy:
    """Attempt schedule: how many tries, how far apart.

    A policy is immutable configuration; each in-flight sequence of
    attempts is a :class:`RetryTask` created by :meth:`execute`.  The
    jitter for a task draws from an RNG stream forked off the kernel's
    by task label and start time, so retries are reproducible without
    perturbing any other component's randomness.
    """

    def __init__(self, max_attempts=3, base_delay=60.0, multiplier=2.0,
                 max_delay=6 * 3600.0, jitter=0.25):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1, got %r" % max_attempts)
        if base_delay <= 0:
            raise ValueError("base_delay must be positive, got %r" % base_delay)
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1, got %r" % multiplier)
        if not max_delay > 0:
            # A zero/negative (or NaN) cap would clamp every backoff to
            # the 1e-9 floor in delay_for(), silently turning
            # exponential backoff into a hot loop of retries.
            raise ValueError("max_delay must be positive, got %r" % max_delay)
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be within [0, 1), got %r" % jitter)
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter

    def delay_for(self, attempt, rng):
        """Backoff before attempt number ``attempt + 1`` (1-based)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if self.jitter:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(delay, 1e-9)

    def execute(self, kernel, attempt, label="retry",
                on_success=None, on_give_up=None):
        """Run ``attempt`` now, retrying on failure until attempts run out.

        ``attempt()`` signals failure by returning ``None`` or raising
        an exception; any other return value is success.  The first
        attempt runs synchronously (a beacon that succeeds immediately
        behaves exactly as before retries existed); subsequent attempts
        are scheduled with ``kernel.call_later``.  Returns the
        :class:`RetryTask`.
        """
        task = RetryTask(kernel, self, attempt, label,
                         on_success=on_success, on_give_up=on_give_up)
        task._attempt()
        return task


def deterministic_backoff(policy, seed, label, attempts=None):
    """Jittered backoff schedule as a pure function of (policy, seed, label).

    Kernel-scheduled retries get their jitter from the kernel's own
    forked RNG streams (see :class:`RetryTask`), but the sweep
    supervisor retries replicas in *wall-clock* time, outside any
    kernel.  This helper gives that path the same reproducibility: the
    delays are drawn from a :class:`~repro.sim.rng.DeterministicRandom`
    forked off ``seed`` by ``label`` — under a sweep, (base seed,
    replica seed) — so a re-run of the same degraded ensemble backs off
    on an identical schedule instead of free-running jitter.

    Returns the list of delays before attempts ``2..attempts+1``
    (``attempts`` defaults to ``policy.max_attempts - 1``, the number
    of backoffs a full sequence can take).
    """
    from repro.sim.rng import DeterministicRandom

    rng = DeterministicRandom(seed).fork("backoff:%s" % label)
    count = policy.max_attempts - 1 if attempts is None else attempts
    if count < 0:
        raise ValueError("attempts must be >= 0, got %r" % attempts)
    return [policy.delay_for(attempt, rng)
            for attempt in range(1, count + 1)]


class RetryTask:
    """One in-flight retry sequence.  Created by :meth:`RetryPolicy.execute`."""

    def __init__(self, kernel, policy, attempt, label,
                 on_success=None, on_give_up=None):
        self.kernel = kernel
        self.policy = policy
        self.label = label
        self.attempts = 0
        self.finished = False
        self.succeeded = False
        self.result = None
        self._attempt_fn = attempt
        self._on_success = on_success
        self._on_give_up = on_give_up
        self._pending = None
        self._cancelled = False
        self._rng = kernel.rng.fork(
            "retry:%s@%r" % (label, kernel.clock.now))

    @property
    def pending(self):
        """True while another attempt is scheduled or in flight."""
        return not self.finished and not self._cancelled

    def cancel(self):
        """Abandon the sequence (e.g. the client suicided mid-backoff)."""
        self._cancelled = True
        self.finished = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    #: Buckets for the attempts-per-sequence histogram: retry policies
    #: in this codebase top out at single-digit attempt counts.
    ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)

    def _attempt(self):
        if self.finished:
            return
        self._pending = None
        self.attempts += 1
        metrics = self.kernel.metrics
        metrics.inc("retry.attempts")
        try:
            result = self._attempt_fn()
        except Exception as exc:
            # An exception still counts as a failed attempt, but it is
            # a different signal from a clean None (the substrate broke
            # rather than declined) — record it instead of silently
            # folding it into the failure path.
            metrics.inc("retry.attempt_errors")
            self.kernel.trace.record(
                "retry", "retry-attempt-error", self.label,
                attempt=self.attempts, error=type(exc).__name__)
            result = None
        if result is not None:
            self.finished = True
            self.succeeded = True
            self.result = result
            metrics.inc("retry.succeeded")
            metrics.observe("retry.attempts_per_task", self.attempts,
                            buckets=self.ATTEMPT_BUCKETS)
            self.kernel.trace.record("retry", "retry-succeeded", self.label,
                                     attempts=self.attempts)
            if self._on_success is not None:
                self._on_success(result)
            return
        if self.attempts >= self.policy.max_attempts:
            self.finished = True
            metrics.inc("retry.exhausted")
            metrics.observe("retry.attempts_per_task", self.attempts,
                            buckets=self.ATTEMPT_BUCKETS)
            self.kernel.trace.record("retry", "retry-exhausted", self.label,
                                     attempts=self.attempts)
            if self._on_give_up is not None:
                self._on_give_up()
            return
        delay = self.policy.delay_for(self.attempts, self._rng)
        metrics.inc("retry.backoffs")
        self.kernel.trace.record("retry", "retry-backoff", self.label,
                                 attempt=self.attempts, delay=delay)
        self._pending = self.kernel.call_later(
            delay, self._attempt, "retry:%s" % self.label)

    def __repr__(self):
        state = ("cancelled" if self._cancelled
                 else "ok" if self.succeeded
                 else "exhausted" if self.finished else "pending")
        return "RetryTask(%r, attempts=%d, %s)" % (
            self.label, self.attempts, state)
