"""Event queue and kernel: the heart of the discrete-event simulation."""

import heapq
import math

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.sim.clock import SimClock
from repro.sim.errors import ScheduleInPastError, SimulationError
from repro.sim.faults import FaultInjector
from repro.sim.rng import DeterministicRandom
from repro.sim.trace import TraceLog


class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so that simultaneous events
    dispatch in the order they were scheduled — a property the replayed
    figure traces rely on.
    """

    __slots__ = ("time", "sequence", "callback", "label", "cancelled", "_queue")

    def __init__(self, time, sequence, callback, label):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = False
        self._queue = None

    def cancel(self):
        """Mark the event so the kernel skips it at dispatch time."""
        if not self.cancelled:
            self.cancelled = True
            if self._queue is not None:
                self._queue._note_cancelled()
                self._queue = None

    def __lt__(self, other):
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self):
        state = " (cancelled)" if self.cancelled else ""
        return "Event(t=%.3f, %r)%s" % (self.time, self.label, state)


class EventQueue:
    """Min-heap of pending events ordered by (time, insertion order).

    Cancelled events stay in the heap until they surface (lazy
    deletion); when they pile up faster than they surface — a campaign
    cancelling thousands of pending retries at suicide time — the queue
    compacts itself, rebuilding the heap from the live events only.
    """

    #: Compact only once at least this many cancelled entries linger,
    #: so small queues never pay the heapify.
    COMPACT_MIN_GARBAGE = 64

    def __init__(self):
        self._heap = []
        self._sequence = 0
        #: Count of non-cancelled events, maintained incrementally so
        #: ``len()`` is O(1) even with millions of pending events.
        self._live = 0

    def push(self, time, callback, label):
        event = Event(time, self._sequence, callback, label)
        event._queue = self
        self._sequence += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self):
        """Remove and return the next non-cancelled event, or None."""
        return self.pop_due(None)

    def pop_due(self, until):
        """Pop the next live event if it is due by ``until``.

        Folds ``peek_time`` + ``pop`` into a single heap traversal for
        the kernel's dispatch loop.  Returns None when the queue is
        drained or the next live event lies beyond ``until``; in the
        latter case the event stays queued.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and event.time > until:
                return None
            heapq.heappop(heap)
            self._live -= 1
            # Detach: cancelling an already-dispatched event must
            # not decrement the live counter again.
            event._queue = None
            return event
        return None

    def restore(self, event):
        """Re-queue an event popped but not dispatched (budget aborts)."""
        event._queue = self
        self._live += 1
        heapq.heappush(self._heap, event)

    def peek_time(self):
        """Time of the next live event, or None if the queue is drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def snapshot_entries(self):
        """Primitive description of the heap for a checkpoint.

        Entries are emitted in canonical ``(time, sequence)`` order —
        not raw heap-array order — so equivalent queues snapshot
        identically; cancelled entries that have not yet surfaced (or
        been compacted away) are included with their flag, keeping the
        restored queue's compaction accounting exact.  Callbacks are
        not serialisable: only the label travels, and
        :meth:`load_entries` re-binds labels to callables.
        """
        return {
            "sequence": self._sequence,
            "entries": [
                {"time": event.time, "sequence": event.sequence,
                 "label": event.label, "cancelled": event.cancelled}
                for event in sorted(self._heap)
            ],
        }

    def load_entries(self, state, resolve):
        """Rebuild the heap from :meth:`snapshot_entries` output.

        ``resolve(label)`` supplies the callback for each live entry
        (checkpoint restore passes a registry, or a placeholder that
        raises if an unbound event is ever dispatched).  A sorted entry
        list is already heap-ordered, but ``heapify`` is cheap and
        keeps this correct for any entry order.
        """
        heap = []
        live = 0
        for entry in state["entries"]:
            event = Event(entry["time"], entry["sequence"],
                          resolve(entry["label"]), entry["label"])
            if entry["cancelled"]:
                event.cancelled = True
            else:
                event._queue = self
                live += 1
            heap.append(event)
        heapq.heapify(heap)
        self._heap = heap
        self._sequence = state["sequence"]
        self._live = live

    def _note_cancelled(self):
        """Bookkeeping from :meth:`Event.cancel`: maybe compact.

        Compaction triggers when cancelled entries both exceed the
        minimum garbage floor and outnumber the live events, keeping
        the heap within 2x of its live size at O(live) amortised cost.
        """
        self._live -= 1
        garbage = len(self._heap) - self._live
        if garbage >= self.COMPACT_MIN_GARBAGE and garbage > self._live:
            self._heap = [event for event in self._heap
                          if not event.cancelled]
            heapq.heapify(self._heap)

    def __len__(self):
        return self._live

    def __bool__(self):
        return self.peek_time() is not None


class PeriodicTask:
    """A callback rescheduled every ``interval`` seconds until stopped.

    Models the recurring jobs the paper describes: the C&C server's
    30-minute stolen-file cleanup, a beacon interval, an AV scan sweep.
    """

    def __init__(self, kernel, interval, callback, label, jitter=0.0):
        if interval <= 0:
            raise ValueError("interval must be positive, got %r" % interval)
        self._kernel = kernel
        self._interval = interval
        self._callback = callback
        self._label = label
        self._jitter = jitter
        self._stopped = False
        self._pending = None
        self._schedule_next()

    @property
    def stopped(self):
        return self._stopped

    def stop(self):
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _schedule_next(self):
        delay = self._interval
        if self._jitter:
            delay += self._kernel.rng.uniform(-self._jitter, self._jitter)
            delay = max(delay, 1e-9)
        self._pending = self._kernel.call_later(delay, self._fire, self._label)

    def _fire(self):
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._schedule_next()


class Kernel:
    """Owns the clock, the event queue, the RNG, and the trace log.

    Typical use::

        kernel = Kernel(seed=7)
        kernel.call_later(60.0, do_something, "usb-insertion")
        kernel.run()
        print(kernel.trace.dump())
    """

    #: Safety valve: a simulation dispatching more events than this is
    #: assumed to be stuck in a self-rescheduling loop.
    DEFAULT_MAX_EVENTS = 5_000_000

    def __init__(self, seed=0, epoch=None, trace_max_records=None):
        self.clock = SimClock() if epoch is None else SimClock(epoch)
        self.rng = DeterministicRandom(seed)
        #: ``trace_max_records`` caps trace memory for million-event
        #: runs (see :meth:`repro.sim.trace.TraceLog.bound`); the
        #: default keeps every record, as the golden exports require.
        self.trace = TraceLog(self.clock, max_records=trace_max_records)
        #: Observability: kill-chain spans and the metrics registry.
        #: Both are pure recorders — they consume no randomness and
        #: schedule no events, so instrumentation never perturbs a
        #: seeded run.
        self.spans = SpanRecorder(self.clock)
        self.metrics = MetricsRegistry()
        self.faults = FaultInjector(self)
        self._queue = EventQueue()
        self._dispatched = 0
        self._events_metric = self.metrics.counter("sim.events_dispatched")
        self._ckpt_hook = None
        self._ckpt_every = 0
        self._ckpt_countdown = 0
        #: Named components whose state travels inside kernel
        #: checkpoints (see :meth:`register_state_provider`).
        self._state_providers = {}
        #: Extension payloads restored from a checkpoint before their
        #: provider was registered; delivered on registration.
        self._pending_extension_state = {}

    @property
    def now(self):
        return self.clock.now

    @property
    def now_dt(self):
        return self.clock.now_dt

    @property
    def dispatched_events(self):
        """Number of events dispatched so far."""
        return self._dispatched

    @property
    def pending_events(self):
        """Number of live events still queued."""
        return len(self._queue)

    def call_at(self, when, callback, label="event"):
        """Schedule ``callback`` at absolute virtual time ``when``.

        NaN is rejected explicitly (mirroring :meth:`run_for`): it
        compares False against every bound, so it would slip past both
        this method's in-past guard and ``run(until=...)``'s stop
        condition, corrupting the heap order along the way.
        """
        if math.isnan(when):
            raise ValueError(
                "call_at() time must be a non-NaN number of seconds, "
                "got %r" % when)
        if when < self.clock.now:
            raise ScheduleInPastError(self.clock.now, when)
        return self._queue.push(when, callback, label)

    def call_later(self, delay, callback, label="event"):
        """Schedule ``callback`` after ``delay`` seconds of virtual time.

        NaN is rejected for the same reason as in :meth:`call_at` — a
        NaN delay would schedule a NaN-timed event that defeats every
        ordering and stop-condition comparison downstream.
        """
        if math.isnan(delay):
            raise ValueError(
                "call_later() delay must be a non-NaN number of "
                "seconds, got %r" % delay)
        if delay < 0:
            raise ScheduleInPastError(self.clock.now, self.clock.now + delay)
        return self._queue.push(self.clock.now + delay, callback, label)

    def call_at_datetime(self, moment, callback, label="event"):
        """Schedule ``callback`` at an absolute calendar datetime.

        This is how hardcoded trigger dates are armed — e.g. Shamoon's
        wiper detonating at 2012-08-15 08:08 UTC.
        """
        return self.call_at(self.clock.to_seconds(moment), callback, label)

    def every(self, interval, callback, label="periodic", jitter=0.0):
        """Create a :class:`PeriodicTask` firing every ``interval`` seconds."""
        return PeriodicTask(self, interval, callback, label, jitter=jitter)

    def span(self, name, **attrs):
        """Open a named kill-chain span for the duration of a ``with``
        block (see :class:`repro.obs.spans.SpanRecorder`).

        Virtual time may advance inside the block (e.g. around
        :meth:`run_for`), so the span's start/end times delimit the
        stage in the simulated timeline.
        """
        return self.spans.span(name, **attrs)

    def register_state_provider(self, name, provider):
        """Attach a named component whose state rides in checkpoints.

        ``provider`` must expose ``snapshot_state()`` (a JSON-safe
        payload, captured without perturbing the run) and
        ``load_state(payload)``.  Snapshots taken by
        :func:`repro.sim.checkpoint.kernel_state` gain an
        ``extensions`` section mapping each registered name to its
        provider's payload; restoring a checkpoint feeds the matching
        providers — and stashes payloads whose provider is not yet
        registered, delivering them the moment it is (a restored
        kernel's components are often built after the restore).

        Returns the provider for chaining.
        """
        if not isinstance(name, str) or not name:
            raise TypeError("provider name must be a non-empty string, "
                            "got %r" % (name,))
        if name in self._state_providers:
            raise SimulationError(
                "state provider %r is already registered" % name)
        self._state_providers[name] = provider
        pending = self._pending_extension_state.pop(name, None)
        if pending is not None:
            provider.load_state(pending)
        return provider

    @property
    def state_providers(self):
        """Registered provider names, sorted (read-only view)."""
        return sorted(self._state_providers)

    def set_checkpoint_hook(self, hook, every_events=1000):
        """Install (or clear) a periodic auto-checkpoint hook.

        ``hook(kernel)`` fires from inside :meth:`run` after every
        ``every_events`` dispatched events, with the dispatch counters
        flushed so a snapshot taken inside the hook is exact.  The hook
        must be a pure observer — it may not schedule events or draw
        randomness, or it would perturb the seeded run it is trying to
        capture.  Pass ``hook=None`` to clear.
        """
        if hook is None:
            self._ckpt_hook = None
            self._ckpt_every = 0
            self._ckpt_countdown = 0
            return
        if isinstance(every_events, bool) or not isinstance(every_events, int):
            raise TypeError("every_events must be an integer, got %r"
                            % (every_events,))
        if every_events < 1:
            raise ValueError("every_events must be >= 1, got %r"
                             % (every_events,))
        self._ckpt_hook = hook
        self._ckpt_every = every_events
        self._ckpt_countdown = every_events

    def run(self, until=None, max_events=DEFAULT_MAX_EVENTS):
        """Dispatch events until the queue drains (or ``until`` seconds).

        Returns the number of events dispatched by this call.

        This is the hot path of every simulation: each iteration makes
        a single heap access (:meth:`EventQueue.pop_due` folds the old
        peek+pop pair), the per-event attribute lookups are hoisted out
        of the loop, and the ``sim.events_dispatched`` metric and
        :attr:`dispatched_events` counter are batched — they update
        once per ``run()`` call (including on error exits), which is
        the granularity every consumer in the codebase reads them at.
        """
        dispatched = 0
        flushed = 0
        last_label = None
        pop_due = self._queue.pop_due
        advance_to = self.clock.advance_to
        # Hoisted: installing a hook mid-run takes effect on the next
        # run() call, which is the granularity checkpointing works at.
        ckpt_hook = self._ckpt_hook
        try:
            while True:
                event = pop_due(until)
                if event is None:
                    break
                if dispatched >= max_events:
                    # Raise *before* dispatching event max_events + 1,
                    # so a budget of N never executes more than N
                    # callbacks; the undispatched event stays queued.
                    self._queue.restore(event)
                    raise SimulationError(
                        "dispatched %d events without draining; runaway "
                        "simulation (last event label: %r)"
                        % (dispatched, last_label)
                    )
                advance_to(event.time)
                event.callback()
                last_label = event.label
                dispatched += 1
                if ckpt_hook is not None:
                    self._ckpt_countdown -= 1
                    if self._ckpt_countdown <= 0:
                        self._ckpt_countdown = self._ckpt_every
                        # Flush the batched counters so the hook sees
                        # (and can snapshot) the exact dispatch state.
                        self._dispatched += dispatched
                        self._events_metric.value += dispatched
                        flushed += dispatched
                        dispatched = 0
                        ckpt_hook(self)
        finally:
            self._dispatched += dispatched
            self._events_metric.value += dispatched
        if until is not None and until > self.clock.now:
            self.clock.advance_to(until)
        return flushed + dispatched

    def run_for(self, duration, max_events=DEFAULT_MAX_EVENTS):
        """Run for ``duration`` seconds of virtual time from now.

        A negative or NaN duration is always a caller bug (a miscomputed
        interval), so it raises rather than silently no-opping.
        """
        duration = float(duration)
        if math.isnan(duration) or duration < 0:
            raise ValueError(
                "run_for() duration must be a non-negative number of "
                "seconds, got %r" % duration
            )
        return self.run(until=self.clock.now + duration, max_events=max_events)
