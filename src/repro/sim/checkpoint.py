"""Deterministic kernel snapshots: a versioned JSON checkpoint format.

A checkpoint captures everything the kernel owns that is pure data —
clock, RNG streams (main + fault-injector fork), dispatch counters, the
event heap (including cancelled entries awaiting lazy compaction), the
full trace log with its bounded-mode accounting, the span recorder, the
metrics registry, and the fault schedule — as one canonical JSON
envelope protected by SHA-256 digests.

Two digests live in the envelope:

* ``state_digest`` hashes only the kernel state.  Two runs that reach
  the same cut with identical state produce identical ``state_digest``
  values, which is what the replay-equivalence harness compares.
* ``digest`` hashes the whole envelope body (meta + state +
  state_digest) and is the file-integrity check: a corrupted,
  truncated, or tampered checkpoint fails :func:`read_checkpoint` with
  a typed :class:`~repro.sim.errors.CheckpointError` instead of
  crashing deep in deserialization.

What is *not* captured: event callbacks.  They are arbitrary Python
closures, so a restored queue holds each pending event's time,
sequence, and label with the callback left unbound — dispatching an
unbound event raises ``CheckpointError``.  Drivers that want to
*continue* a restored kernel pass ``callbacks`` (a label-pattern →
callable registry) to :func:`restore_kernel`; the campaign resume path
in :mod:`repro.core.resume` sidesteps rebinding entirely by replaying
the deterministic run from zero and using the recorded ``state_digest``
chain as its bit-identical correctness oracle.
"""

import hashlib
import json
import os
from datetime import datetime

from repro.sim.clock import SimClock
from repro.sim.errors import (
    CheckpointDigestError,
    CheckpointError,
    CheckpointVersionError,
)

#: Bump whenever the envelope or state payload shape changes; readers
#: reject other versions with :class:`CheckpointVersionError`.
CHECKPOINT_VERSION = 1

#: Envelope kinds: each file type declares what it is, so a sweep
#: replica file can never be mistaken for a kernel snapshot.
KIND_KERNEL = "kernel-checkpoint"
KIND_MANIFEST = "checkpoint-manifest"
KIND_SWEEP = "sweep-manifest"
KIND_REPLICA = "sweep-replica"
KIND_FAILURE = "sweep-failure"


def canonical_json(value):
    """The one serialisation every digest in this format is taken over.

    Sorted keys, no whitespace, no NaN/Infinity literals — so a payload
    has exactly one byte representation and digests are reproducible
    across processes and platforms.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def payload_digest(payload):
    """SHA-256 hex digest of a payload's canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def make_envelope(kind, payload, meta=None):
    """Wrap a state payload in the versioned, digest-protected envelope."""
    state_digest = payload_digest(payload)
    meta = dict(meta or {})
    body = {"meta": meta, "state": payload, "state_digest": state_digest}
    return {
        "format": CHECKPOINT_VERSION,
        "kind": kind,
        "meta": meta,
        "state": payload,
        "state_digest": state_digest,
        "digest": payload_digest(body),
    }


def verify_envelope(envelope, kind=None, path=None):
    """Validate an envelope's shape, version, and both digests.

    Returns the envelope on success; raises the matching typed error
    otherwise.  ``path`` only decorates error messages.
    """
    if not isinstance(envelope, dict):
        raise CheckpointError(
            "checkpoint%s is not a JSON object"
            % (" %s" % path if path else ""))
    missing = {"format", "kind", "meta", "state", "state_digest",
               "digest"} - set(envelope)
    if missing:
        raise CheckpointError(
            "checkpoint%s is missing required fields: %s"
            % (" %s" % path if path else "", sorted(missing)))
    if envelope["format"] != CHECKPOINT_VERSION:
        raise CheckpointVersionError(CHECKPOINT_VERSION, envelope["format"],
                                     path=path)
    if kind is not None and envelope["kind"] != kind:
        raise CheckpointError(
            "checkpoint%s has kind %r, expected %r"
            % (" %s" % path if path else "", envelope["kind"], kind))
    body = {"meta": envelope["meta"], "state": envelope["state"],
            "state_digest": envelope["state_digest"]}
    found = payload_digest(body)
    if found != envelope["digest"]:
        raise CheckpointDigestError(envelope["digest"], found, path=path)
    state_found = payload_digest(envelope["state"])
    if state_found != envelope["state_digest"]:
        raise CheckpointDigestError(envelope["state_digest"], state_found,
                                    path=path)
    return envelope


def write_checkpoint(path, envelope):
    """Atomically write an envelope to ``path``.

    Write-to-temp + ``os.replace`` means a crash (even SIGKILL) mid-
    write leaves either the previous file or no file — never a
    truncated one; the digest check in :func:`read_checkpoint` is the
    backstop for every other corruption mode.

    The file keeps the payload's own key order (digests are taken over
    the canonical sorted form regardless), so dict-valued state — e.g.
    a campaign result's ``infection_vectors`` tally — round-trips in
    insertion order and a resumed run prints byte-identically.
    """
    tmp = "%s.tmp" % path
    try:
        with open(tmp, "w", encoding="utf-8") as stream:
            stream.write(json.dumps(envelope, separators=(",", ":"),
                                    allow_nan=False))
            stream.write("\n")
        os.replace(tmp, path)
    except OSError as exc:
        # An unwritable or vanished checkpoint directory is a caller-
        # facing condition, not an internal bug: surface it as the same
        # typed error every other checkpoint failure mode uses.
        raise CheckpointError(
            "cannot write checkpoint %s: %s: %s"
            % (path, type(exc).__name__, exc)) from exc
    return path


def read_checkpoint(path, kind=None):
    """Read and fully validate an envelope from ``path``.

    Every failure mode — unreadable file, truncated or non-JSON
    content, missing fields, version mismatch, digest mismatch — maps
    to a typed :class:`CheckpointError` subclass.
    """
    try:
        with open(path, encoding="utf-8") as stream:
            envelope = json.load(stream)
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            "cannot read checkpoint %s: %s: %s"
            % (path, type(exc).__name__, exc)) from exc
    return verify_envelope(envelope, kind=kind, path=path)


# -- kernel snapshot / restore -------------------------------------------------

def kernel_state(kernel):
    """The raw state payload for one kernel (no envelope, no digests).

    Kernels carrying registered state providers (see
    :meth:`repro.sim.events.Kernel.register_state_provider`) gain an
    ``extensions`` section — absent otherwise, so checkpoints of plain
    kernels are byte-identical to the pre-extension format.
    """
    state = {
        "clock": {
            "epoch": kernel.clock.epoch.isoformat(),
            "now": kernel.clock.now,
        },
        "rng": kernel.rng.getstate(),
        "dispatched": kernel.dispatched_events,
        "queue": kernel._queue.snapshot_entries(),
        "trace": kernel.trace.snapshot_state(),
        "spans": kernel.spans.snapshot_state(),
        "metrics": kernel.metrics.snapshot(),
        "faults": kernel.faults.snapshot_state(),
    }
    extensions = {name: provider.snapshot_state()
                  for name, provider in kernel._state_providers.items()}
    for name, payload in kernel._pending_extension_state.items():
        # Restored-but-unclaimed state passes through, so re-snapshotting
        # a restored kernel never silently drops an extension.
        extensions.setdefault(name, payload)
    if extensions:
        state["extensions"] = extensions
    return state


def snapshot_kernel(kernel, meta=None):
    """Capture a kernel as a validated checkpoint envelope.

    Pure observation: consumes no randomness, schedules no events,
    records no trace — snapshotting never perturbs the seeded run.
    """
    from repro.obs.export import jsonable_ordered

    meta = {str(key): jsonable_ordered(value)
            for key, value in (meta or {}).items()}
    return make_envelope(KIND_KERNEL, kernel_state(kernel), meta=meta)


def state_digest(kernel):
    """The state digest a checkpoint of ``kernel`` would record now."""
    return payload_digest(kernel_state(kernel))


def _unbound_callback(label):
    """Placeholder for a restored event whose callback was not re-bound."""

    def _raise():
        raise CheckpointError(
            "event %r was restored from a checkpoint without a callback "
            "binding; pass callbacks={...} to restore_kernel() (or use "
            "the replay-based resume in repro.core.resume)" % label)

    return _raise


def _make_resolver(callbacks):
    """Turn a label→callable mapping into the queue's resolve function.

    Keys match an event label exactly, or by prefix with a trailing
    ``*`` (the :meth:`TraceLog.query` convention); unmatched labels get
    a placeholder that raises :class:`CheckpointError` if dispatched.
    """
    callbacks = dict(callbacks or {})
    exact = {key: fn for key, fn in callbacks.items()
             if not key.endswith("*")}
    prefixes = sorted(((key[:-1], fn) for key, fn in callbacks.items()
                       if key.endswith("*")),
                      key=lambda item: -len(item[0]))

    def resolve(label):
        factory = exact.get(label)
        if factory is None:
            for prefix, fn in prefixes:
                if label.startswith(prefix):
                    factory = fn
                    break
        if factory is None:
            return _unbound_callback(label)
        return factory(label)

    return resolve


def restore_kernel(envelope, kernel=None, callbacks=None):
    """Rehydrate a kernel from a checkpoint envelope.

    With ``kernel=None`` a fresh kernel is built on the checkpointed
    epoch; otherwise the supplied kernel (which must share that epoch
    and not have advanced past the checkpoint) is overwritten in place.
    Everything that is pure data — clock, RNG streams, counters, trace,
    spans, metrics, fault schedule — restores exactly; pending events
    restore with callbacks resolved through ``callbacks`` (see
    :func:`_make_resolver`), unbound by default.

    ``callbacks`` values are factories: ``factory(label)`` returns the
    callable to dispatch for that label.
    """
    verify_envelope(envelope, kind=KIND_KERNEL)
    state = envelope["state"]
    try:
        epoch = datetime.fromisoformat(state["clock"]["epoch"])
        now = float(state["clock"]["now"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            "malformed clock state: %s: %s"
            % (type(exc).__name__, exc)) from exc
    from repro.sim.events import Kernel

    if kernel is None:
        kernel = Kernel(seed=0, epoch=epoch)
    else:
        if kernel.clock.epoch != SimClock(epoch).epoch:
            raise CheckpointError(
                "cannot restore onto a kernel with epoch %s; checkpoint "
                "was taken on epoch %s"
                % (kernel.clock.epoch.isoformat(), epoch.isoformat()))
        if kernel.clock.now > now:
            raise CheckpointError(
                "cannot restore to t=%.6f on a kernel already at t=%.6f "
                "(the virtual clock never moves backwards)"
                % (now, kernel.clock.now))
    kernel.clock.advance_to(now)
    kernel.rng.setstate(state["rng"])
    kernel._dispatched = int(state["dispatched"])
    try:
        kernel._queue.load_entries(state["queue"],
                                   _make_resolver(callbacks))
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            "malformed queue state: %s: %s"
            % (type(exc).__name__, exc)) from exc
    kernel.trace.load_state(state["trace"])
    kernel.spans.load_state(state["spans"])
    _restore_metrics(kernel.metrics, state["metrics"])
    kernel.faults.load_state(state["faults"])
    pending = {}
    for name in sorted(state.get("extensions", {})):
        payload = state["extensions"][name]
        provider = kernel._state_providers.get(name)
        if provider is not None:
            try:
                provider.load_state(payload)
            except CheckpointError:
                raise
            except Exception as exc:
                raise CheckpointError(
                    "malformed extension state for %r: %s: %s"
                    % (name, type(exc).__name__, exc)) from exc
        else:
            # No provider yet: hold the payload for a later
            # register_state_provider() call (the resume short-circuit
            # restores onto a bare kernel before components exist).
            pending[name] = payload
    kernel._pending_extension_state = pending
    return kernel


def _restore_metrics(registry, snapshot):
    """Overwrite a registry's contents with a checkpointed snapshot.

    Existing metric objects are updated in place (the kernel holds a
    direct reference to its ``sim.events_dispatched`` counter, which
    must keep its identity); metrics absent from the snapshot are
    dropped.
    """
    try:
        for name in sorted(snapshot):
            entry = snapshot[name]
            metric_type = entry["type"]
            if metric_type == "counter":
                registry.counter(name).value = entry["value"]
            elif metric_type == "gauge":
                registry.gauge(name).value = entry["value"]
            elif metric_type == "histogram":
                histogram = registry.histogram(name, entry["bounds"])
                histogram.counts = list(entry["counts"])
                histogram.sum = entry["sum"]
                histogram.count = entry["count"]
            else:
                raise CheckpointError(
                    "unknown metric type %r for %r" % (metric_type, name))
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            "malformed metrics state: %s: %s"
            % (type(exc).__name__, exc)) from exc
    for name in list(registry._metrics):
        if name not in snapshot:
            del registry._metrics[name]
