"""Bluetooth neighbourhood: the BEETLEJUICE substrate.

§III.A: "Flame is the first Windows malware using bluetooth ... this
module enumerates devices around the infected machine and turns itself
into a 'beacon'", enabling social-network mapping, physical tracking,
and exfiltration "through bluetooth connected devices which will bypass
firewall and network controls".
"""

from repro.bluetooth.device import BluetoothDevice
from repro.bluetooth.radio import BluetoothNeighborhood

__all__ = ["BluetoothDevice", "BluetoothNeighborhood"]
