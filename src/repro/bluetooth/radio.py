"""Radio-range bookkeeping and discovery/beacon operations."""


class BluetoothNeighborhood:
    """Who is in radio range of whom.

    The environment builder places devices near hosts; BEETLEJUICE then
    enumerates, beacons, and bridges through them.  Beacon sightings are
    recorded per device so the physical-tracking claim (an attacker can
    localise a victim by which devices saw its beacon) is measurable.
    """

    def __init__(self, kernel):
        self._kernel = kernel
        self._nearby = {}
        #: hostname -> True while that host announces itself.
        self._beaconing = {}
        #: (device.address, hostname, time) sighting log.
        self.beacon_sightings = []

    def place_device(self, host, device):
        """Put ``device`` in radio range of ``host``."""
        self._nearby.setdefault(host.hostname, []).append(device)
        return device

    def remove_device(self, host, device):
        devices = self._nearby.get(host.hostname, [])
        if device in devices:
            devices.remove(device)
            return True
        return False

    def devices_near(self, host, discoverable_only=True):
        """Enumerate devices in range (what an inquiry scan returns)."""
        devices = self._nearby.get(host.hostname, [])
        if discoverable_only:
            return [d for d in devices if d.discoverable]
        return list(devices)

    def start_beacon(self, host):
        """Make the host's adapter discoverable and log who can see it."""
        if not host.config.has_bluetooth:
            return []
        self._beaconing[host.hostname] = True
        witnesses = self.devices_near(host, discoverable_only=False)
        for device in witnesses:
            self.beacon_sightings.append(
                (device.address, host.hostname, self._kernel.clock.now)
            )
        return witnesses

    def stop_beacon(self, host):
        self._beaconing.pop(host.hostname, None)

    def is_beaconing(self, host):
        return self._beaconing.get(host.hostname, False)

    def sightings_of(self, host):
        """All (device, time) pairs that observed this host's beacon."""
        return [
            (address, time)
            for address, hostname, time in self.beacon_sightings
            if hostname == host.hostname
        ]

    def bridge_exfiltrate(self, host, payload_size):
        """Push data out through any internet-connected nearby device.

        Returns the device used, or None — the firewall-bypass path the
        paper's footnote 5 describes.
        """
        for device in self.devices_near(host, discoverable_only=False):
            if device.bridge(payload_size):
                self._kernel.trace.record(
                    host.hostname, "bluetooth-exfil", device.name,
                    size=payload_size,
                )
                return device
        return None
