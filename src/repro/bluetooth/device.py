"""Personal bluetooth devices near simulated hosts."""


class BluetoothDevice:
    """A phone/headset/laptop in radio range of some host.

    Carries the data BEETLEJUICE harvests (address book, SMS) plus an
    ``internet_connected`` flag: a paired phone with a data plan can
    bridge stolen data straight past the victim network's firewall.
    """

    KINDS = ("phone", "laptop", "headset", "tablet")

    def __init__(self, name, kind="phone", owner=None, address=None,
                 discoverable=True, internet_connected=False,
                 address_book=(), sms_messages=()):
        if kind not in self.KINDS:
            raise ValueError("unknown device kind: %r" % kind)
        self.name = name
        self.kind = kind
        self.owner = owner
        self.address = address or "bt:%s" % name.lower().replace(" ", "-")
        self.discoverable = discoverable
        self.internet_connected = internet_connected
        self.address_book = list(address_book)
        self.sms_messages = list(sms_messages)
        #: Bytes pushed through this device by a BT exfil bridge.
        self.bridged_bytes = 0

    def bridge(self, payload_size):
        """Relay ``payload_size`` bytes to the internet, if able."""
        if not self.internet_connected:
            return False
        self.bridged_bytes += payload_size
        return True

    def __repr__(self):
        return "BluetoothDevice(%r, %s, owner=%r)" % (
            self.name, self.kind, self.owner,
        )
