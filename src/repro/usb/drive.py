"""The USB drive object and its host-interaction hooks."""


class UsbFile:
    """One file on a USB drive.

    ``on_insert``/``on_render`` are the behavioural hooks: ``on_insert``
    fires when the drive is plugged into a host with autorun enabled,
    ``on_render`` when Explorer displays the file's icon (the LNK
    vector).  Plain documents have neither.
    """

    __slots__ = ("name", "data", "hidden", "on_insert", "on_render")

    def __init__(self, name, data=b"", hidden=False, on_insert=None, on_render=None):
        self.name = name.lower()
        self.data = bytes(data)
        self.hidden = hidden
        self.on_insert = on_insert
        self.on_render = on_render

    @property
    def size(self):
        return len(self.data)

    def __repr__(self):
        return "UsbFile(%r, %d bytes%s)" % (
            self.name, self.size, ", hidden" if self.hidden else "",
        )


class UsbDrive:
    """A removable drive that moves between hosts.

    The drive keeps a visit history (which hosts it was plugged into and
    whether they had internet access at the time) because Flame's
    air-gap courier logic keys on exactly that.
    """

    def __init__(self, label):
        self.label = label
        self._files = {}
        self.visit_history = []

    # -- contents -------------------------------------------------------------

    def add_file(self, usb_file):
        self._files[usb_file.name] = usb_file
        return usb_file

    def write(self, name, data=b"", hidden=False, on_insert=None, on_render=None):
        return self.add_file(
            UsbFile(name, data, hidden=hidden, on_insert=on_insert,
                    on_render=on_render)
        )

    def get(self, name):
        return self._files.get(name.lower())

    def exists(self, name):
        return name.lower() in self._files

    def delete(self, name):
        return self._files.pop(name.lower(), None) is not None

    def files(self, include_hidden=False):
        """What Explorer shows (hidden files excluded by default)."""
        out = [f for f in self._files.values() if include_hidden or not f.hidden]
        return sorted(out, key=lambda f: f.name)

    def total_bytes(self):
        return sum(f.size for f in self._files.values())

    # -- host interaction --------------------------------------------------------

    def on_insert(self, host):
        """Called by the host when the drive is plugged in."""
        had_internet = (
            host.nic is not None and not host.nic[0].air_gapped
        )
        self.visit_history.append(
            {"host": host.hostname, "had_internet": had_internet,
             "time": host.now()}
        )
        if host.config.autorun_enabled:
            for usb_file in self.files(include_hidden=True):
                if usb_file.on_insert is not None:
                    host.trace("autorun-executed", target=usb_file.name,
                               drive=self.label)
                    usb_file.on_insert(host, self)

    def on_explorer_open(self, host):
        """Called when Explorer renders the drive's directory listing."""
        for usb_file in self.files(include_hidden=False):
            if usb_file.on_render is not None:
                usb_file.on_render(host, self)

    def on_remove(self, host):
        """Called when the drive is unplugged (no-op hook point)."""

    def visited_internet_connected_host(self):
        """Has this stick ever been in a machine with internet access?"""
        return any(v["had_internet"] for v in self.visit_history)

    def __repr__(self):
        return "UsbDrive(%r, %d files)" % (self.label, len(self._files))
