"""Flame's hidden USB database: the air-gap courier.

§III.B: "Flame uses a hidden database loaded in USB sticks. If a USB
stick is inserted into an infected system in such environments, Flame
reads the hidden database (if it does not exist, it will create one),
and checks if the USB stick has already been in a computer with an
internet connection. If it is the case, Flame begins storing leaked
documents in the hidden database."
"""

import json

HIDDEN_DB_FILENAME = "."  # a dot-named, hidden FAT entry

_MAX_DB_BYTES = 16 * 1024 * 1024  # courier capacity of a period thumb drive


class HiddenDatabase:
    """Structured view over the hidden file on a USB drive."""

    def __init__(self, drive):
        self._drive = drive
        self._state = {"seen_internet": False, "documents": [], "beacons": []}
        existing = drive.get(HIDDEN_DB_FILENAME)
        if existing is not None and existing.data:
            loaded = self._parse(existing.data)
            if loaded is not None:
                self._state = loaded

    @staticmethod
    def _parse(blob):
        """Decode a hidden-db blob, or None when it is corrupt.

        Couriers get yanked mid-write and FAT entries rot; per §III.B
        ("if it does not exist, it will create one") a corrupt or
        truncated database is treated as absent and recreated rather
        than crashing the insertion handler.
        """
        try:
            loaded = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(loaded, dict):
            return None
        if not isinstance(loaded.get("seen_internet"), bool):
            return None
        if not isinstance(loaded.get("documents"), list):
            return None
        if not isinstance(loaded.get("beacons"), list):
            return None
        return loaded

    @classmethod
    def load_or_create(cls, drive):
        """Read the hidden DB off a drive, creating it when absent."""
        db = cls(drive)
        db.flush()
        return db

    @classmethod
    def exists_on(cls, drive):
        return drive.exists(HIDDEN_DB_FILENAME)

    # -- courier state ----------------------------------------------------------

    def mark_internet_connected(self):
        """Stamp the DB: this stick has touched a connected machine."""
        self._state["seen_internet"] = True
        self.flush()

    @property
    def seen_internet(self):
        """True when the stick was ever in an internet-connected host.

        The drive's own visit history is the ground truth; the DB keeps a
        durable stamp so the decision survives between infected hosts.
        """
        return self._state["seen_internet"] or (
            self._drive.visited_internet_connected_host()
        )

    # -- stolen document storage ---------------------------------------------------

    def store_document(self, source_host, path, content_size, summary):
        """Queue one leaked document for exfiltration.

        Returns False when the courier is full.
        """
        if self.used_bytes() + content_size > _MAX_DB_BYTES:
            return False
        self._state["documents"].append(
            {
                "source": source_host,
                "path": path,
                "size": content_size,
                "summary": summary,
            }
        )
        self.flush()
        return True

    def documents(self):
        return list(self._state["documents"])

    def drain_documents(self):
        """Remove and return everything queued (done on upload)."""
        docs = self._state["documents"]
        self._state["documents"] = []
        self.flush()
        return docs

    def used_bytes(self):
        return sum(d["size"] for d in self._state["documents"])

    # -- persistence ------------------------------------------------------------

    def flush(self):
        blob = json.dumps(self._state).encode("utf-8")
        self._drive.write(HIDDEN_DB_FILENAME, blob, hidden=True)
