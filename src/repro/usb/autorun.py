"""Malicious autorun.inf construction."""

from repro.usb.drive import UsbFile

AUTORUN_FILENAME = "autorun.inf"

_TEMPLATE = b"[autorun]\r\nopen=%s\r\naction=Open folder to view files\r\n"


def make_autorun(payload, launcher_name="setup.exe"):
    """Build an ``autorun.inf`` whose open= target runs ``payload``.

    ``payload(host, drive)`` executes on insertion into a host that still
    has autorun enabled — the older of the two USB vectors, "used also by
    Stuxnet" per the Flame EUPHORIA description (§III.A).
    """

    def fire(host, drive):
        from repro.winsim.processes import IntegrityLevel

        host.processes.spawn(launcher_name, IntegrityLevel.USER)
        payload(host, drive)

    return UsbFile(
        AUTORUN_FILENAME,
        _TEMPLATE % launcher_name.encode("ascii"),
        on_insert=fire,
    )
