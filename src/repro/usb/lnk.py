"""Crafted LNK files exploiting MS10-046.

§II.A: "The vulnerability exists because Windows incorrectly parses
shortcuts (.LNK files) in such a way that malicious code may be executed
when the icon of a specially crafted LNK file is displayed," and the
footnote: "A typical configuration of the USB drive will contain several
LNK files each one for a particular Windows OS version (e.g. XP, Vista,
7, Server 2003)."
"""

from repro.usb.drive import UsbFile
from repro.winsim.host import OS_VERSIONS
from repro.winsim.patches import MS10_046_LNK
from repro.winsim.processes import IntegrityLevel

LNK_BULLETIN = MS10_046_LNK

_LNK_HEADER = b"L\x00\x00\x00\x01\x14\x02\x00"  # shell link magic-alike


def craft_lnk_files(payload, os_versions=OS_VERSIONS):
    """One crafted LNK per targeted Windows version.

    ``payload(host, drive)`` runs at the logged-on user's integrity when
    a matching, unpatched host renders the icon.  Returns the list of
    :class:`UsbFile` to place on a drive.
    """

    def make_render_hook(version):
        def fire(host, drive):
            if host.config.os_version != version:
                return
            if not host.patches.is_vulnerable(MS10_046_LNK):
                host.event_log.info(
                    "shell", "malformed shortcut ignored (MS10-046 applied)"
                )
                return
            host.trace("lnk-exploit-fired", target=drive.label,
                       os_version=version)
            host.processes.spawn("explorer-shellcode", IntegrityLevel.USER)
            payload(host, drive)

        return fire

    files = []
    for version in os_versions:
        files.append(
            UsbFile(
                "copy of shortcut to %s.lnk" % version,
                _LNK_HEADER + version.encode("ascii"),
                on_render=make_render_hook(version),
            )
        )
    return files
