"""Removable media: the campaign's favourite infection vector.

Section V.E: "USB drives, in addition to zero-day exploits, are emerging
as the main infection vector in targeted attacks."  This package models
the three USB tricks the paper describes:

* a malicious ``autorun.inf`` that fires on insertion (older hosts);
* crafted LNK files, one per Windows version, that fire when Explorer
  merely *renders the icons* of the drive (MS10-046 — Stuxnet's primary
  vector, reused by Flame);
* Flame's hidden database, which turns a USB stick into a courier that
  carries stolen documents out of air-gapped networks.
"""

from repro.usb.drive import UsbDrive, UsbFile
from repro.usb.autorun import AUTORUN_FILENAME, make_autorun
from repro.usb.lnk import LNK_BULLETIN, craft_lnk_files
from repro.usb.hidden_db import HIDDEN_DB_FILENAME, HiddenDatabase

__all__ = [
    "AUTORUN_FILENAME",
    "HIDDEN_DB_FILENAME",
    "HiddenDatabase",
    "LNK_BULLETIN",
    "UsbDrive",
    "UsbFile",
    "craft_lnk_files",
    "make_autorun",
]
