"""Kernel driver loading with signature enforcement.

This is where two of the paper's certificate stories execute:

* Stuxnet's rootkit drivers load *because* they are signed with stolen
  JMicron/Realtek certificates — "The signing of drivers allowed to
  install the rootkit drivers successfully" (§II.A);
* Shamoon's wiper loads the legitimate Eldos-signed ``DRDISK.sys``, whose
  capability grant ("raw-disk-access") then lets a user-mode process
  overwrite the MBR (§IV.B).

Unsigned or badly signed drivers are refused and the refusal lands in the
event log — which is exactly the detection surface the stolen
certificates were stolen to avoid.
"""

from repro.pe import PeFormatError, parse_pe


class DriverLoadError(Exception):
    """Raised when a driver image fails policy and cannot load."""


class Driver:
    """One loaded kernel driver."""

    def __init__(self, name, image_path, signer, capabilities, payload=None):
        self.name = name
        self.image_path = image_path
        self.signer = signer
        #: Capability strings the driver grants, e.g. "raw-disk-access",
        #: "file-hiding".
        self.capabilities = frozenset(capabilities)
        self.payload = payload
        self.loaded = True

    def grants(self, capability):
        return capability in self.capabilities

    def __repr__(self):
        return "Driver(%r, signer=%r, caps=%s)" % (
            self.name, self.signer, sorted(self.capabilities),
        )


class DriverManager:
    """Load/unload drivers under the host's signature policy."""

    def __init__(self, host):
        self._host = host
        self._drivers = {}

    def load(self, name, image_path, capabilities=(), payload=None):
        """Load a driver from a PE image stored in the host's VFS.

        Policy: the image must parse as PE and carry a code signature
        that verifies against the host's trust store (unless the host was
        configured with ``enforce_driver_signatures=False``, the XP-era
        laxity knob).  Returns the loaded :class:`Driver`.
        """
        if name.lower() in self._drivers:
            raise DriverLoadError("driver already loaded: %r" % name)
        record = self._host.vfs.get(image_path, raw=True)
        signer = None
        if self._host.config.enforce_driver_signatures:
            try:
                pe = parse_pe(record.data)
            except PeFormatError as exc:
                self._host.event_log.error(
                    "driver-load", "driver %r image unparseable: %s" % (name, exc)
                )
                raise DriverLoadError("unparseable driver image: %s" % exc)
            result = self._host.trust_store.verify_code_signature(
                record.data, pe, at_time=self._host.now()
            )
            if not result:
                self._host.event_log.error(
                    "driver-load",
                    "driver %r rejected: %s" % (name, result.reason),
                )
                raise DriverLoadError(
                    "signature policy rejected %r: %s" % (name, result.reason)
                )
            signer = result.signer
        driver = Driver(name, image_path, signer, capabilities, payload)
        self._drivers[name.lower()] = driver
        self._host.event_log.info(
            "driver-load", "driver %r loaded (signer: %s)" % (name, signer)
        )
        if "raw-disk-access" in driver.capabilities:
            self._host.disk.grant_raw_access(name.lower())
        if payload is not None:
            payload(self._host, driver)
        return driver

    def unload(self, name):
        driver = self._drivers.pop(name.lower(), None)
        if driver is None:
            return False
        driver.loaded = False
        if "raw-disk-access" in driver.capabilities:
            self._host.disk.revoke_raw_access(name.lower())
        return True

    def get(self, name):
        return self._drivers.get(name.lower())

    def loaded(self):
        return sorted(self._drivers.values(), key=lambda d: d.name)

    def grants(self, capability):
        """True when any loaded driver grants the capability."""
        return any(d.grants(capability) for d in self._drivers.values())
