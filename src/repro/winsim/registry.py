"""Simulated Windows registry.

Keys are backslash paths under the usual hives (HKLM, HKCU); values are
(name → python value) maps.  Malware persistence (Run keys, service
definitions) and infection markers live here, and the forensic tooling
diffs registries before/after detonation.
"""


class Registry:
    """Case-insensitive hierarchical key/value store."""

    def __init__(self):
        self._keys = {}

    @staticmethod
    def _canonical(key):
        canonical = key.replace("/", "\\").lower().rstrip("\\")
        if not canonical:
            raise ValueError("empty registry key")
        return canonical

    def set_value(self, key, name, value):
        """Create the key if needed and set one value under it."""
        canonical = self._canonical(key)
        self._keys.setdefault(canonical, {})[name.lower()] = value

    def get_value(self, key, name, default=None):
        values = self._keys.get(self._canonical(key))
        if values is None:
            return default
        return values.get(name.lower(), default)

    def key_exists(self, key):
        return self._canonical(key) in self._keys

    def delete_value(self, key, name):
        """Remove one value; True if it existed."""
        values = self._keys.get(self._canonical(key))
        if values is None:
            return False
        return values.pop(name.lower(), None) is not None

    def delete_key(self, key):
        """Remove a key and everything under it; True if anything went."""
        canonical = self._canonical(key)
        doomed = [k for k in self._keys if k == canonical or k.startswith(canonical + "\\")]
        for k in doomed:
            del self._keys[k]
        return bool(doomed)

    def values(self, key):
        """All (name, value) pairs under a key."""
        return dict(self._keys.get(self._canonical(key), {}))

    def subkeys(self, key):
        """Immediate child key names under ``key``."""
        canonical = self._canonical(key)
        prefix = canonical + "\\"
        children = set()
        for existing in self._keys:
            if existing.startswith(prefix):
                remainder = existing[len(prefix):]
                children.add(remainder.split("\\")[0])
        return sorted(children)

    def all_keys(self):
        """Every key path — used by forensic diffing."""
        return sorted(self._keys)

    def snapshot(self):
        """Deep copy of the whole registry for before/after comparison."""
        return {key: dict(values) for key, values in self._keys.items()}
