"""API hook table.

Stuxnet "will hook specific APIs used to open Step 7 projects" (§II.B)
and its PLC rootkit intercepts every read/write routine of
``s7otbxdx.dll`` (§II.C).  The hook table lets malware wrap any named
"API" on a host: callers invoke :meth:`call`, hooks run outermost-first
and each receives a ``call_next`` continuation so it can observe,
rewrite, or swallow the call — exactly the man-in-the-middle position a
real IAT/inline hook takes.
"""


class ApiHookTable:
    """Named call sites with chainable interceptors."""

    def __init__(self):
        self._implementations = {}
        self._hooks = {}

    def register_api(self, name, implementation):
        """Declare an API and its genuine implementation."""
        self._implementations[name] = implementation

    def is_registered(self, name):
        return name in self._implementations

    def hook(self, name, interceptor, label=None):
        """Install an interceptor around ``name``.

        ``interceptor(call_next, *args, **kwargs)`` — call
        ``call_next(*args, **kwargs)`` to proceed down the chain.
        Returns an unhook callable.
        """
        if name not in self._implementations:
            raise KeyError("unknown API: %r" % name)
        entry = (interceptor, label)
        self._hooks.setdefault(name, []).append(entry)

        def unhook():
            hooks = self._hooks.get(name, [])
            if entry in hooks:
                hooks.remove(entry)

        return unhook

    def hooks_on(self, name):
        """Labels of hooks currently installed on an API."""
        return [label for _, label in self._hooks.get(name, [])]

    def hooked_apis(self):
        """All APIs with at least one live hook — an IOC surface."""
        return sorted(name for name, hooks in self._hooks.items() if hooks)

    def call(self, name, *args, **kwargs):
        """Invoke an API through whatever hooks are installed."""
        try:
            implementation = self._implementations[name]
        except KeyError:
            raise KeyError("unknown API: %r" % name) from None
        chain = [interceptor for interceptor, _ in self._hooks.get(name, [])]

        def invoke(index, *a, **kw):
            if index < len(chain):
                return chain[index](
                    lambda *na, **nkw: invoke(index + 1, *na, **nkw), *a, **kw
                )
            return implementation(*a, **kw)

        return invoke(0, *args, **kwargs)
