"""The campaign's vulnerability catalogue and per-host patch state.

Stuxnet "can distribute itself using an unprecedented set of four
zero-day exploits, namely, MS10-046, MS10-061, MS10-073, and MS10-092"
(§II.A); Flame reuses the LNK vector and adds the certificate flaw that
advisory 2718704 closed.  A host is exploitable through a vector exactly
while the corresponding bulletin is unapplied — and, before the bulletin
even exists (the zero-day window), no host can be patched at all.
"""

#: Windows Shell LNK parsing — icon display executes attacker code.
MS10_046_LNK = "MS10-046"
#: Print spooler — crafted print request writes files into %system%.
MS10_061_SPOOLER = "MS10-061"
#: Kernel-mode keyboard layout EoP.
MS10_073_KEYBOARD_EOP = "MS10-073"
#: Task scheduler EoP.
MS10_092_TASK_SCHEDULER = "MS10-092"
#: Unauthorized digital certificates (the Flame TS-cert response):
#: "moving three certificates to the Untrusted Certificate Store".
MS12_ADVISORY_2718704 = "MSA-2718704"


class VulnerabilityInfo:
    """Static facts about one catalogued vulnerability."""

    __slots__ = ("bulletin_id", "component", "effect", "disclosed")

    def __init__(self, bulletin_id, component, effect, disclosed):
        self.bulletin_id = bulletin_id
        self.component = component
        #: One of: remote-code-execution, privilege-escalation,
        #: local-code-execution, spoofing.
        self.effect = effect
        #: ISO date the bulletin shipped — before this the bug is 0-day.
        self.disclosed = disclosed

    def __repr__(self):
        return "VulnerabilityInfo(%s, %s, %s)" % (
            self.bulletin_id, self.component, self.effect,
        )


VULNERABILITIES = {
    MS10_046_LNK: VulnerabilityInfo(
        MS10_046_LNK, "windows-shell", "local-code-execution", "2010-08-02"
    ),
    MS10_061_SPOOLER: VulnerabilityInfo(
        MS10_061_SPOOLER, "print-spooler", "remote-code-execution", "2010-09-14"
    ),
    MS10_073_KEYBOARD_EOP: VulnerabilityInfo(
        MS10_073_KEYBOARD_EOP, "win32k", "privilege-escalation", "2010-10-12"
    ),
    MS10_092_TASK_SCHEDULER: VulnerabilityInfo(
        MS10_092_TASK_SCHEDULER, "task-scheduler", "privilege-escalation", "2010-12-14"
    ),
    MS12_ADVISORY_2718704: VulnerabilityInfo(
        MS12_ADVISORY_2718704, "crypto-certificates", "spoofing", "2012-06-03"
    ),
}


class PatchState:
    """Which bulletins a host has applied.

    Hosts start fully unpatched (the campaign exploited zero-days, so the
    patches did not exist when the malware landed); scenario code applies
    bulletins to model the defensive timeline.
    """

    def __init__(self, applied=()):
        unknown = set(applied) - set(VULNERABILITIES)
        if unknown:
            raise ValueError("unknown bulletins: %s" % sorted(unknown))
        self._applied = set(applied)

    def is_vulnerable(self, bulletin_id):
        if bulletin_id not in VULNERABILITIES:
            raise ValueError("unknown bulletin: %r" % bulletin_id)
        return bulletin_id not in self._applied

    def apply(self, bulletin_id):
        if bulletin_id not in VULNERABILITIES:
            raise ValueError("unknown bulletin: %r" % bulletin_id)
        self._applied.add(bulletin_id)

    def apply_all(self):
        self._applied = set(VULNERABILITIES)

    def applied(self):
        return sorted(self._applied)

    def open_vulnerabilities(self):
        return sorted(set(VULNERABILITIES) - self._applied)
