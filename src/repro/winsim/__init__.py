"""Simulated Windows hosts.

A :class:`WindowsHost` is the unit of compromise in every attack the
paper describes: it owns a virtual filesystem, a registry, a process
table, services and scheduled tasks, a sector-addressed disk with an MBR,
a driver manager that enforces signature policy, a patch state listing
which of the campaign's vulnerabilities are still open, an API hook
table, and a Windows-style event log.

Nothing in this package touches the real operating system — a "file" is
an entry in a dict, the "MBR" is 512 bytes in a bytearray, and "executing
a binary" calls a Python function attached to the simulated file.
"""

from repro.winsim.vfs import (
    FileAttributes,
    FileNotFound,
    VfsError,
    VirtualFile,
    VirtualFileSystem,
    normalize_path,
)
from repro.winsim.registry import Registry
from repro.winsim.disk import Disk, DiskAccessDenied, MBR_SIZE, MBR_MAGIC
from repro.winsim.patches import (
    MS10_046_LNK,
    MS10_061_SPOOLER,
    MS10_073_KEYBOARD_EOP,
    MS10_092_TASK_SCHEDULER,
    MS12_ADVISORY_2718704,
    PatchState,
    VULNERABILITIES,
)
from repro.winsim.processes import IntegrityLevel, Process, ProcessTable
from repro.winsim.services import ScheduledTask, Service, ServiceManager, TaskScheduler
from repro.winsim.drivers import Driver, DriverManager, DriverLoadError
from repro.winsim.eventlog import EventLog, EventLogEntry
from repro.winsim.hooks import ApiHookTable
from repro.winsim.interface import SimHost
from repro.winsim.host import WindowsHost, HostConfig

__all__ = [
    "ApiHookTable",
    "Disk",
    "DiskAccessDenied",
    "Driver",
    "DriverLoadError",
    "DriverManager",
    "EventLog",
    "EventLogEntry",
    "FileAttributes",
    "FileNotFound",
    "HostConfig",
    "IntegrityLevel",
    "MBR_MAGIC",
    "MBR_SIZE",
    "MS10_046_LNK",
    "MS10_061_SPOOLER",
    "MS10_073_KEYBOARD_EOP",
    "MS10_092_TASK_SCHEDULER",
    "MS12_ADVISORY_2718704",
    "PatchState",
    "Process",
    "ProcessTable",
    "Registry",
    "ScheduledTask",
    "Service",
    "ServiceManager",
    "SimHost",
    "TaskScheduler",
    "VULNERABILITIES",
    "VfsError",
    "VirtualFile",
    "VirtualFileSystem",
    "WindowsHost",
    "normalize_path",
]
