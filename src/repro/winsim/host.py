"""The simulated Windows host: the unit of compromise.

Wires together every per-machine subsystem and exposes the handful of
user-visible behaviours the malware models exploit: opening a USB drive
in Explorer, executing a file, booting, checking whether the machine is
still usable after a wiper pass.
"""

from repro.winsim.disk import Disk
from repro.winsim.drivers import DriverManager
from repro.winsim.eventlog import EventLog
from repro.winsim.hooks import ApiHookTable
from repro.winsim.interface import SimHost
from repro.winsim.patches import PatchState
from repro.winsim.processes import IntegrityLevel, ProcessTable
from repro.winsim.registry import Registry
from repro.winsim.services import ServiceManager, TaskScheduler
from repro.winsim.vfs import VirtualFileSystem

#: Windows versions the campaign-era LNK payloads were crafted for: "a
#: typical configuration of the USB drive will contain several LNK files
#: each one for a particular Windows OS version" (§II.A footnote).
OS_VERSIONS = ("xp", "vista", "7", "server2003")

SYSTEM_DIR = "c:\\windows\\system32"


class HostConfig:
    """Per-host knobs a scenario can turn."""

    def __init__(self, os_version="7", enforce_driver_signatures=True,
                 autorun_enabled=False, file_and_print_sharing=False,
                 has_microphone=False, has_bluetooth=False,
                 auto_update_enabled=True):
        if os_version not in OS_VERSIONS:
            raise ValueError("unknown OS version: %r" % os_version)
        self.os_version = os_version
        self.enforce_driver_signatures = enforce_driver_signatures
        self.autorun_enabled = autorun_enabled
        self.file_and_print_sharing = file_and_print_sharing
        self.has_microphone = has_microphone
        self.has_bluetooth = has_bluetooth
        self.auto_update_enabled = auto_update_enabled


class WindowsHost(SimHost):
    """One simulated Windows machine at full fidelity.

    Parameters
    ----------
    kernel:
        The shared simulation kernel (clock/trace/rng).
    hostname:
        Unique name; doubles as the trace actor.
    trust_store:
        The host's certificate trust state (usually from
        :meth:`repro.certs.PkiWorld.make_trust_store`).
    config:
        A :class:`HostConfig`; defaults to a reasonably hardened
        Windows 7 box.
    """

    def __init__(self, kernel, hostname, trust_store, config=None):
        super().__init__(kernel, hostname)
        self.trust_store = trust_store
        self.config = config or HostConfig()

        self.vfs = VirtualFileSystem(clock=kernel.clock)
        self.registry = Registry()
        self.disk = Disk()
        self.event_log = EventLog(clock=kernel.clock)
        self.processes = ProcessTable()
        self.patches = PatchState()
        self.services = ServiceManager(self)
        self.tasks = TaskScheduler(self, kernel)
        self.drivers = DriverManager(self)
        self.hooks = ApiHookTable()

        #: Nearby bluetooth devices; populated by the bluetooth radio env.
        self.bluetooth_radio = None
        #: USB drives currently plugged in.
        self.usb_ports = []

        self._seed_standard_files()

    def _seed_standard_files(self):
        self.vfs.write(SYSTEM_DIR + "\\kernel32.dll", b"\x00" * 64, origin="windows")
        self.vfs.write(SYSTEM_DIR + "\\ntoskrnl.exe", b"\x00" * 64, origin="windows")
        self.vfs.write(SYSTEM_DIR + "\\s7otbxdx.dll.placeholder", b"", origin="windows")
        self.vfs.delete(SYSTEM_DIR + "\\s7otbxdx.dll.placeholder")

    # -- identity / state -------------------------------------------------------

    @property
    def system_dir(self):
        """The %system% directory the paper's droppers write into."""
        return SYSTEM_DIR

    def smb_sharing_enabled(self):
        return self.config.file_and_print_sharing

    def usable(self):
        """Can a user still boot and use this machine?

        Shamoon's success metric: a host with a destroyed MBR or wiped
        active partition is bricked.
        """
        return self.disk.bootable()

    # -- user behaviours ---------------------------------------------------------

    def insert_usb(self, drive, open_in_explorer=True):
        """Plug in a USB drive; optionally browse it immediately.

        Both campaign USB vectors hang off this call: ``autorun.inf``
        fires on insertion (when the host still has autorun enabled) and
        crafted LNK files fire when Explorer renders the drive's icons.
        """
        self.usb_ports.append(drive)
        self.trace("usb-inserted", target=drive.label)
        drive.on_insert(self)
        for infection in list(self.infections.values()):
            handler = getattr(infection, "on_usb_inserted", None)
            if handler is not None:
                handler(self, drive)
        if open_in_explorer:
            self.open_usb_in_explorer(drive)
        return drive

    def open_usb_in_explorer(self, drive):
        """Browse a plugged drive with Explorer (renders icons)."""
        self.trace("usb-opened-in-explorer", target=drive.label)
        drive.on_explorer_open(self)

    def remove_usb(self, drive):
        if drive in self.usb_ports:
            self.usb_ports.remove(drive)
            drive.on_remove(self)
            self.trace("usb-removed", target=drive.label)

    def execute_file(self, path, integrity=IntegrityLevel.USER, raw=False):
        """Run an executable file from the VFS.

        Spawns a process and invokes the file's payload (if any).
        Returns the process.
        """
        record = self.vfs.get(path, raw=raw)
        process = self.processes.spawn(record.name, integrity, image_path=record.path)
        self.trace("process-start", target=record.name,
                   integrity=IntegrityLevel.name(integrity))
        if record.payload is not None:
            record.payload(self, process)
        return process

    def boot(self):
        """(Re)boot: start auto-start services.

        Returns the list of services started, or None if the machine can
        no longer boot (wiped MBR / partition).
        """
        if not self.usable():
            self.trace("boot-failed", detail_reason="disk not bootable")
            return None
        self.trace("boot")
        return self.services.start_all_auto()

    def share_folder(self, share_name, directory):
        """Expose a directory as a network share."""
        self.vfs.mkdir(directory)
        self.shares[share_name.lower()] = directory
        return share_name.lower()

    def __repr__(self):
        return "WindowsHost(%r, os=%s, infections=%s)" % (
            self.hostname, self.config.os_version, sorted(self.infections),
        )
