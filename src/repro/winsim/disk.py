"""Sector-addressed disk with MBR and partition table.

Shamoon's endgame is exactly here: "overwrite and wipe the files and the
Master Boot Record (MBR) of the computer making it unusable" (§IV).  The
disk enforces the Windows rule the paper highlights — "tampering with the
MBR is not allowed for user-mode applications" — so the wiper genuinely
needs the signed raw-disk driver trick to get through.
"""

MBR_SIZE = 512
#: The 2-byte boot signature at the end of a valid MBR.
MBR_MAGIC = b"\x55\xaa"

SECTOR_SIZE = 512


class DiskAccessDenied(Exception):
    """Raised when user-mode code writes to protected sectors."""


class Partition:
    """One partition table entry."""

    __slots__ = ("index", "start_sector", "sector_count", "active", "wiped")

    def __init__(self, index, start_sector, sector_count, active=False):
        self.index = index
        self.start_sector = start_sector
        self.sector_count = sector_count
        self.active = active
        self.wiped = False

    def __repr__(self):
        flags = " active" if self.active else ""
        state = " WIPED" if self.wiped else ""
        return "Partition(%d, sectors %d..%d%s%s)" % (
            self.index,
            self.start_sector,
            self.start_sector + self.sector_count - 1,
            flags,
            state,
        )


class Disk:
    """Sparse sector store plus MBR/partition bookkeeping.

    Only touched sectors consume memory, so a simulated 30,000-host
    organisation stays cheap.  ``kernel_mode`` on the write path is the
    protection boundary: sector 0 (the MBR) and partition metadata demand
    it unless a loaded driver has granted raw access.
    """

    PROTECTED_SECTORS = 64  # MBR + partition bookkeeping region

    def __init__(self, total_sectors=1 << 21):
        self._sectors = {}
        self.total_sectors = total_sectors
        self.partitions = []
        self.raw_access_grants = set()
        self._init_mbr()
        # One active system partition by default.
        self.partitions.append(Partition(0, 2048, total_sectors - 2048, active=True))

    def _init_mbr(self):
        boot_code = b"\xfa\x33\xc0" + b"\x90" * (MBR_SIZE - 5)
        self._sectors[0] = boot_code[: MBR_SIZE - 2] + MBR_MAGIC

    # -- access control -------------------------------------------------------

    def grant_raw_access(self, grantee):
        """A (signed) raw-disk driver grants user-mode raw sector access."""
        self.raw_access_grants.add(grantee)

    def revoke_raw_access(self, grantee):
        self.raw_access_grants.discard(grantee)

    def _check_write(self, sector, kernel_mode, grantee):
        if sector >= self.total_sectors or sector < 0:
            raise ValueError("sector %d out of range" % sector)
        if sector < self.PROTECTED_SECTORS and not kernel_mode:
            if grantee not in self.raw_access_grants:
                raise DiskAccessDenied(
                    "user-mode write to protected sector %d denied" % sector
                )

    # -- sector IO -------------------------------------------------------------

    def read_sector(self, sector):
        if sector >= self.total_sectors or sector < 0:
            raise ValueError("sector %d out of range" % sector)
        return self._sectors.get(sector, b"\x00" * SECTOR_SIZE)

    def write_sector(self, sector, data, kernel_mode=False, grantee=None):
        self._check_write(sector, kernel_mode, grantee)
        if len(data) > SECTOR_SIZE:
            raise ValueError("sector payload exceeds %d bytes" % SECTOR_SIZE)
        self._sectors[sector] = bytes(data).ljust(SECTOR_SIZE, b"\x00")

    # -- MBR ---------------------------------------------------------------------

    @property
    def mbr(self):
        return self.read_sector(0)

    def write_mbr(self, data, kernel_mode=False, grantee=None):
        self.write_sector(0, data, kernel_mode=kernel_mode, grantee=grantee)

    def mbr_intact(self):
        """True when the boot signature is still present."""
        return self.read_sector(0).endswith(MBR_MAGIC)

    # -- partitions ----------------------------------------------------------------

    def active_partition(self):
        for part in self.partitions:
            if part.active:
                return part
        return None

    def wipe_partition(self, partition, kernel_mode=False, grantee=None,
                       sectors_to_touch=8):
        """Overwrite the leading sectors of a partition (enough to kill it).

        A full sector-by-sector pass over a terabyte disk is pointless in
        simulation; wiping the filesystem metadata region has the same
        observable effect (the partition no longer mounts).
        """
        self._check_write(0, kernel_mode, grantee)  # same privilege bar
        junk = b"\x00" * SECTOR_SIZE
        end = min(partition.start_sector + sectors_to_touch,
                  partition.start_sector + partition.sector_count)
        for sector in range(partition.start_sector, end):
            if sector < self.PROTECTED_SECTORS:
                self._check_write(sector, kernel_mode, grantee)
            self._sectors[sector] = junk
        partition.wiped = True

    def bootable(self):
        """Can this disk still boot an OS?"""
        active = self.active_partition()
        return self.mbr_intact() and active is not None and not active.wiped
