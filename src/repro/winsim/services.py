"""Windows services and the task scheduler.

Shamoon persists by creating "a TrkSvr service to start itself whenever
windows starts" and "a task to execute itself" (§IV.A); both primitives
live here.  Services execute the payload attached to their image file;
scheduled tasks ride the simulation kernel's timers.
"""

from repro.winsim.processes import IntegrityLevel
from repro.winsim.vfs import FileNotFound


class Service:
    """One registered service."""

    START_AUTO = "auto"
    START_MANUAL = "manual"

    def __init__(self, name, image_path, start_mode=START_AUTO,
                 integrity=IntegrityLevel.SYSTEM):
        self.name = name
        self.image_path = image_path
        self.start_mode = start_mode
        self.integrity = integrity
        self.running = False
        self.start_count = 0

    def __repr__(self):
        state = "running" if self.running else "stopped"
        return "Service(%r, %s, %s)" % (self.name, self.start_mode, state)


class ServiceManager:
    """Create/start/stop services on one host."""

    def __init__(self, host):
        self._host = host
        self._services = {}

    def create(self, name, image_path, start_mode=Service.START_AUTO,
               integrity=IntegrityLevel.SYSTEM):
        key = name.lower()
        if key in self._services:
            raise ValueError("service already exists: %r" % name)
        service = Service(name, image_path, start_mode, integrity)
        self._services[key] = service
        self._host.registry.set_value(
            r"hklm\system\currentcontrolset\services\%s" % name,
            "imagepath", image_path,
        )
        return service

    def get(self, name):
        return self._services.get(name.lower())

    def exists(self, name):
        return name.lower() in self._services

    def delete(self, name):
        service = self._services.pop(name.lower(), None)
        if service is None:
            return False
        self._host.registry.delete_key(
            r"hklm\system\currentcontrolset\services\%s" % name
        )
        return True

    def start(self, name):
        """Start a service: spawns a process and runs the image payload."""
        service = self._services.get(name.lower())
        if service is None:
            raise ValueError("no such service: %r" % name)
        if service.running:
            return service
        try:
            image = self._host.vfs.get(service.image_path, raw=True)
        except FileNotFound:
            self._host.event_log.error(
                "service-control", "service %r image missing: %s"
                % (service.name, service.image_path),
            )
            raise
        service.running = True
        service.start_count += 1
        process = self._host.processes.spawn(
            image.name, service.integrity, image_path=service.image_path
        )
        if image.payload is not None:
            image.payload(self._host, process)
        return service

    def stop(self, name):
        service = self._services.get(name.lower())
        if service is None or not service.running:
            return False
        service.running = False
        return True

    def start_all_auto(self):
        """Boot-time behaviour: start every auto-start service."""
        started = []
        for service in list(self._services.values()):
            if service.start_mode == Service.START_AUTO and not service.running:
                self.start(service.name)
                started.append(service.name)
        return started

    def listing(self):
        return sorted(self._services.values(), key=lambda s: s.name)


class ScheduledTask:
    """One task registered with the Windows task scheduler."""

    def __init__(self, name, image_path, run_at=None, integrity=IntegrityLevel.USER):
        self.name = name
        self.image_path = image_path
        self.run_at = run_at
        self.integrity = integrity
        self.run_count = 0

    def __repr__(self):
        return "ScheduledTask(%r, runs=%d)" % (self.name, self.run_count)


class TaskScheduler:
    """Host-local facade over the simulation kernel's timers.

    A task runs the payload attached to its image file.  On hosts still
    vulnerable to MS10-092 a task may be registered to run at SYSTEM
    integrity from a user-integrity caller — the escalation Stuxnet used.
    """

    def __init__(self, host, kernel):
        self._host = host
        self._kernel = kernel
        self._tasks = {}

    def register(self, name, image_path, delay=0.0,
                 integrity=IntegrityLevel.USER, caller_integrity=None):
        """Register a task to run after ``delay`` seconds.

        Requesting SYSTEM integrity from a user-integrity caller succeeds
        only through MS10-092; on a patched host the request is clamped
        to the caller's own level.
        """
        if caller_integrity is not None and integrity > caller_integrity:
            if not self._host.patches.is_vulnerable("MS10-092"):
                integrity = caller_integrity
                self._host.event_log.warning(
                    "task-scheduler",
                    "task %r integrity request denied (MS10-092 patched)" % name,
                )
        task = ScheduledTask(name, image_path, integrity=integrity)
        self._tasks[name.lower()] = task
        self._kernel.call_later(delay, lambda: self._run(task),
                                "task:%s:%s" % (self._host.hostname, name))
        return task

    def get(self, name):
        return self._tasks.get(name.lower())

    def exists(self, name):
        return name.lower() in self._tasks

    def listing(self):
        return sorted(self._tasks.values(), key=lambda t: t.name)

    def _run(self, task):
        try:
            image = self._host.vfs.get(task.image_path, raw=True)
        except FileNotFound:
            self._host.event_log.error(
                "task-scheduler", "task %r image missing" % task.name
            )
            return
        task.run_count += 1
        process = self._host.processes.spawn(
            image.name, task.integrity, image_path=task.image_path
        )
        if image.payload is not None:
            image.payload(self._host, process)
