"""Virtual filesystem with Windows path semantics.

Paths are backslash-separated and case-insensitive ("C:\\Windows\\System32"
and "c:\\windows\\system32" name the same directory), which matters because
the malware models drop files under %system% exactly the way the paper
describes (Stuxnet's ``winsta.exe``, Shamoon's ``netinit.exe``).

Files can be *hidden by a rootkit*: listing and existence checks go
through the normal "API" view, which consults the owning host's rootkit
filters, while forensic tooling reads the raw view.
"""


class VfsError(Exception):
    """Base error for filesystem operations."""


class FileNotFound(VfsError):
    """Raised when a path does not resolve to a file."""


def normalize_path(path):
    """Canonical form: backslashes, lowercase, no trailing separator."""
    canonical = path.replace("/", "\\").lower().rstrip("\\")
    while "\\\\" in canonical:
        canonical = canonical.replace("\\\\", "\\")
    if not canonical:
        raise VfsError("empty path")
    return canonical


def split_path(path):
    """(parent, name) of a normalised path."""
    canonical = normalize_path(path)
    if "\\" not in canonical:
        return "", canonical
    parent, _, name = canonical.rpartition("\\")
    return parent, name


class FileAttributes:
    """Mutable attribute set on a file (subset of the Win32 flags)."""

    __slots__ = ("hidden", "system", "readonly", "created", "modified")

    def __init__(self, hidden=False, system=False, readonly=False,
                 created=0.0, modified=0.0):
        self.hidden = hidden
        self.system = system
        self.readonly = readonly
        self.created = created
        self.modified = modified


class VirtualFile:
    """One simulated file: bytes plus (optionally) executable behaviour.

    ``payload`` is how the simulation models machine code: executing the
    file calls ``payload(host, process)``.  Data and payload are
    independent — analysis tooling sees the bytes, the host runs the
    payload.
    """

    __slots__ = ("path", "data", "payload", "attributes", "origin")

    def __init__(self, path, data=b"", payload=None, attributes=None, origin=None):
        self.path = normalize_path(path)
        self.data = bytes(data)
        self.payload = payload
        self.attributes = attributes or FileAttributes()
        #: Free-form provenance label ("dropped-by:shamoon.dropper"), used
        #: by the forensic tooling.
        self.origin = origin

    @property
    def name(self):
        return split_path(self.path)[1]

    @property
    def size(self):
        return len(self.data)

    @property
    def extension(self):
        name = self.name
        if "." not in name:
            return ""
        return name.rpartition(".")[2]

    def __repr__(self):
        return "VirtualFile(%r, %d bytes)" % (self.path, self.size)


class VirtualFileSystem:
    """Flat-index filesystem with hierarchical semantics.

    Files live in one dict keyed by canonical path; directories are a set
    of canonical paths.  ``hide_filter`` callables (installed by rootkit
    drivers through the host) make files invisible to the normal API
    view.
    """

    def __init__(self, clock=None):
        self._files = {}
        self._directories = {""}
        self._clock = clock
        self.hide_filters = []
        # Standard skeleton every Windows install carries.
        for directory in (
            "c:",
            "c:\\windows",
            "c:\\windows\\system32",
            "c:\\windows\\system32\\drivers",
            "c:\\windows\\temp",
            "c:\\users",
            "c:\\program files",
        ):
            self.mkdir(directory)

    # -- time ------------------------------------------------------------

    def _now(self):
        return self._clock.now if self._clock is not None else 0.0

    # -- directories -------------------------------------------------------

    def mkdir(self, path):
        """Create a directory and all its ancestors."""
        canonical = normalize_path(path)
        parts = canonical.split("\\")
        for depth in range(1, len(parts) + 1):
            self._directories.add("\\".join(parts[:depth]))

    def is_dir(self, path):
        return normalize_path(path) in self._directories

    def directories(self):
        """All directory paths (raw view)."""
        return sorted(d for d in self._directories if d)

    # -- files ---------------------------------------------------------------

    def write(self, path, data=b"", payload=None, hidden=False, origin=None):
        """Create or overwrite a file, creating parent directories."""
        canonical = normalize_path(path)
        parent, _ = split_path(canonical)
        if parent:
            self.mkdir(parent)
        existing = self._files.get(canonical)
        created = existing.attributes.created if existing else self._now()
        attributes = FileAttributes(hidden=hidden, created=created, modified=self._now())
        record = VirtualFile(canonical, data, payload, attributes, origin=origin)
        self._files[canonical] = record
        return record

    def overwrite_data(self, path, data, offset=0):
        """Overwrite bytes *in place* starting at ``offset``.

        Existing bytes past the overwritten range survive — this models
        partial overwrites faithfully, which the Shamoon JPEG-bug
        experiment depends on.
        """
        record = self.get(path)
        if record.attributes.readonly:
            raise VfsError("file is read-only: %r" % path)
        buffer = bytearray(record.data)
        end = offset + len(data)
        if end > len(buffer):
            buffer.extend(b"\x00" * (end - len(buffer)))
        buffer[offset:end] = data
        record.data = bytes(buffer)
        record.attributes.modified = self._now()
        return record

    def get(self, path, raw=False):
        """Fetch a file record; the API view honours rootkit hiding."""
        canonical = normalize_path(path)
        record = self._files.get(canonical)
        if record is None:
            raise FileNotFound(canonical)
        if not raw and self._is_hidden_by_rootkit(record):
            raise FileNotFound(canonical)
        return record

    def read(self, path, raw=False):
        """File contents as bytes."""
        return self.get(path, raw=raw).data

    def exists(self, path, raw=False):
        try:
            self.get(path, raw=raw)
            return True
        except FileNotFound:
            return False

    def delete(self, path, missing_ok=False):
        canonical = normalize_path(path)
        if canonical not in self._files:
            if missing_ok:
                return False
            raise FileNotFound(canonical)
        del self._files[canonical]
        return True

    def rename(self, src, dst):
        """Move a file, preserving its payload and attributes."""
        record = self.get(src, raw=True)
        del self._files[record.path]
        record.path = normalize_path(dst)
        parent, _ = split_path(record.path)
        if parent:
            self.mkdir(parent)
        self._files[record.path] = record
        return record

    # -- listing -----------------------------------------------------------

    def _is_hidden_by_rootkit(self, record):
        return any(hide(record) for hide in self.hide_filters)

    def list_dir(self, path, raw=False):
        """Files directly inside ``path`` (API view unless ``raw``)."""
        canonical = normalize_path(path)
        if canonical not in self._directories:
            raise FileNotFound("no such directory: %r" % canonical)
        out = []
        for record in self._files.values():
            parent, _ = split_path(record.path)
            if parent != canonical:
                continue
            if not raw and self._is_hidden_by_rootkit(record):
                continue
            out.append(record)
        return sorted(out, key=lambda r: r.path)

    def walk(self, root="c:", raw=False):
        """Every file at or below ``root`` (API view unless ``raw``)."""
        prefix = normalize_path(root)
        out = []
        for record in self._files.values():
            if record.path == prefix or record.path.startswith(prefix + "\\"):
                if not raw and self._is_hidden_by_rootkit(record):
                    continue
                out.append(record)
        return sorted(out, key=lambda r: r.path)

    def find_by_extension(self, extensions, root="c:", raw=False):
        """All files whose extension is in ``extensions`` (lowercase)."""
        wanted = {ext.lower().lstrip(".") for ext in extensions}
        return [rec for rec in self.walk(root, raw=raw) if rec.extension in wanted]

    def find_in_folders_named(self, folder_names, raw=False):
        """Files living under any directory whose *name* matches.

        Shamoon's wiper targets "files within folders containing the
        following names: download, document, picture, music, video,
        desktop" — this is that selection primitive.
        """
        wanted = {name.lower() for name in folder_names}
        out = []
        for record in self.walk("c:", raw=raw):
            parts = record.path.split("\\")[:-1]
            if any(any(w in part for w in wanted) for part in parts):
                out.append(record)
        return out

    def file_count(self, raw=True):
        if raw:
            return len(self._files)
        return sum(
            1 for r in self._files.values() if not self._is_hidden_by_rootkit(r)
        )

    def total_bytes(self):
        return sum(r.size for r in self._files.values())
