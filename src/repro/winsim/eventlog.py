"""Per-host Windows-style event log.

Security tooling and forensics read this; Flame's adventcfg module
*watches* it — "Whenever Flame notices that Windows OS is issuing a
message ... referencing one Flame file or component" (§III.A) — so the
log supports observer callbacks in addition to plain appends.
"""


class EventLogEntry:
    """One log row: severity, source component, message."""

    __slots__ = ("time", "severity", "source", "message")

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    def __init__(self, time, severity, source, message):
        self.time = time
        self.severity = severity
        self.source = source
        self.message = message

    def __repr__(self):
        return "[%s t=%.1f] %s: %s" % (self.severity.upper(), self.time,
                                       self.source, self.message)


class EventLog:
    """Append-only event log with observer hooks."""

    def __init__(self, clock=None):
        self._clock = clock
        self._entries = []
        self._observers = []

    def _now(self):
        return self._clock.now if self._clock is not None else 0.0

    def _append(self, severity, source, message):
        entry = EventLogEntry(self._now(), severity, source, message)
        self._entries.append(entry)
        for observer in list(self._observers):
            observer(entry)
        return entry

    def info(self, source, message):
        return self._append(EventLogEntry.INFO, source, message)

    def warning(self, source, message):
        return self._append(EventLogEntry.WARNING, source, message)

    def error(self, source, message):
        return self._append(EventLogEntry.ERROR, source, message)

    def subscribe(self, observer):
        """Register a callback invoked for every new entry."""
        self._observers.append(observer)

    def unsubscribe(self, observer):
        if observer in self._observers:
            self._observers.remove(observer)

    def entries(self, severity=None, source=None, containing=None):
        out = []
        for entry in self._entries:
            if severity is not None and entry.severity != severity:
                continue
            if source is not None and entry.source != source:
                continue
            if containing is not None and containing not in entry.message:
                continue
            out.append(entry)
        return out

    def clear(self):
        """Wipe the log (what LogWiper-style anti-forensics does)."""
        removed = len(self._entries)
        self._entries = []
        return removed

    def __len__(self):
        return len(self._entries)
