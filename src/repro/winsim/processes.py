"""Processes and integrity levels.

The process table matters to the models in three ways: exploits land code
at a given integrity level (the LNK exploit runs as the logged-on user;
MS10-073/092 escalate to SYSTEM), rootkits inject into and hide
processes, and the sandbox's behaviour report is largely a process tree.
"""


class IntegrityLevel:
    """Ordered privilege levels of a simulated process."""

    USER = 1
    ADMIN = 2
    SYSTEM = 3

    _NAMES = {USER: "user", ADMIN: "admin", SYSTEM: "system"}

    @classmethod
    def name(cls, level):
        return cls._NAMES.get(level, "unknown(%r)" % (level,))


class Process:
    """One running process."""

    __slots__ = ("pid", "name", "integrity", "parent_pid", "image_path",
                 "alive", "hidden", "injected_payloads")

    def __init__(self, pid, name, integrity, parent_pid=None, image_path=None):
        self.pid = pid
        self.name = name
        self.integrity = integrity
        self.parent_pid = parent_pid
        self.image_path = image_path
        self.alive = True
        #: Rootkit-hidden processes don't appear in the API view.
        self.hidden = False
        #: Labels of payloads injected into this process (rootkit style).
        self.injected_payloads = []

    def __repr__(self):
        state = "" if self.alive else " (dead)"
        return "Process(pid=%d, %r, %s)%s" % (
            self.pid, self.name, IntegrityLevel.name(self.integrity), state,
        )


class ProcessTable:
    """Spawn, kill, inject into, and enumerate processes."""

    def __init__(self):
        self._processes = {}
        self._next_pid = 4
        # The baseline tree every Windows box shows.
        for name in ("system", "smss.exe", "csrss.exe", "winlogon.exe",
                     "services.exe", "lsass.exe", "explorer.exe"):
            integrity = (IntegrityLevel.SYSTEM
                         if name != "explorer.exe" else IntegrityLevel.USER)
            self.spawn(name, integrity)

    def spawn(self, name, integrity=IntegrityLevel.USER, parent_pid=None,
              image_path=None):
        pid = self._next_pid
        self._next_pid += 4
        process = Process(pid, name, integrity, parent_pid, image_path)
        self._processes[pid] = process
        return process

    def kill(self, pid):
        process = self._processes.get(pid)
        if process is None or not process.alive:
            return False
        process.alive = False
        return True

    def get(self, pid):
        return self._processes.get(pid)

    def find_by_name(self, name, include_hidden=False):
        """Live processes with the given image name (API view by default)."""
        wanted = name.lower()
        return [
            p for p in self._processes.values()
            if p.alive and p.name.lower() == wanted
            and (include_hidden or not p.hidden)
        ]

    def inject(self, pid, payload_label):
        """Record a code injection into a live process."""
        process = self._processes.get(pid)
        if process is None or not process.alive:
            raise ValueError("cannot inject into pid %r" % pid)
        process.injected_payloads.append(payload_label)
        return process

    def listing(self, include_hidden=False):
        """What Task Manager shows (rootkit-hidden rows excluded)."""
        return sorted(
            (p for p in self._processes.values()
             if p.alive and (include_hidden or not p.hidden)),
            key=lambda p: p.pid,
        )

    def escalate(self, pid, new_integrity):
        """Raise a process's integrity (the EoP exploits call this)."""
        process = self._processes.get(pid)
        if process is None or not process.alive:
            raise ValueError("cannot escalate pid %r" % pid)
        process.integrity = max(process.integrity, new_integrity)
        return process
