"""The host abstraction: what the network and infection layers rely on.

Historically every simulated machine was a full :class:`WindowsHost` —
a virtual filesystem, registry, disk, process table, and so on — which
caps campaigns at LAN scale.  The epidemic tier models a million hosts
as rows in a struct-of-arrays pool and only *promotes* a sampled few to
full fidelity, so the substrate layers (LANs, NetBIOS, SMB, infection
bookkeeping) must be written against an interface rather than against
``WindowsHost`` itself.

:class:`SimHost` is that interface.  It carries exactly the state the
network stack mutates (NIC binding, shares, NetBIOS claims, proxy
configuration, accepted credentials) and the infection registry the
malware models use, with conservative defaults for everything a
reduced-fidelity host cannot answer: no filesystem (``vfs is None``),
no SMB sharing, and ``usable()`` is True because there is no disk to
brick.  ``WindowsHost`` subclasses it and overrides those capability
probes with answers backed by its real subsystems.
"""


class SimHost:
    """Minimal simulated host: the contract netsim and malware code on.

    Parameters
    ----------
    kernel:
        The shared simulation kernel (clock/trace/rng).
    hostname:
        Unique name; doubles as the trace actor.
    """

    #: Reduced-fidelity hosts have no virtual filesystem; SMB operations
    #: that need one fail with a typed error instead of an attribute
    #: crash.  :class:`WindowsHost` shadows this with a real VFS.
    vfs = None

    def __init__(self, kernel, hostname):
        self.kernel = kernel
        self.hostname = hostname

        #: Network interface; set by :meth:`repro.netsim.Lan.attach`.
        self.nic = None
        #: Shared folders exposed over the LAN: name -> directory path.
        self.shares = {}
        #: NetBIOS names this host answers broadcasts for:
        #: name -> callable(client_host) -> value.  Flame's SNACK module
        #: claims "wpad" here.
        self.netbios_claims = {}
        #: Cached proxy configuration (set by the WPAD dance).
        self.proxy_config = None
        #: When this host acts as an HTTP proxy, the object whose
        #: ``handle(request)`` may intercept proxied traffic.
        self.proxy_service = None
        #: Credentials this host accepts for remote (SMB/psexec) access.
        self.accepted_credentials = set()
        #: Installed software labels ("step7", "ie", ...).
        self.installed_software = set()
        #: Malware instances resident on this host: name -> object.
        self.infections = {}

    # -- plumbing -------------------------------------------------------------

    def now(self):
        return self.kernel.clock.now

    def trace(self, action, target=None, **detail):
        """Record a host-attributed event in the global trace."""
        return self.kernel.trace.record(self.hostname, action, target,
                                        **detail)

    # -- infection registry ------------------------------------------------------

    def is_infected_by(self, malware_name):
        return malware_name in self.infections

    def register_infection(self, malware_name, instance):
        """Called by malware models when they take residence."""
        self.infections[malware_name] = instance
        self.trace("infected", target=malware_name)

    def remove_infection(self, malware_name):
        return self.infections.pop(malware_name, None)

    # -- capability probes -------------------------------------------------------

    def usable(self):
        """Can a user still boot and use this machine?

        A reduced-fidelity host has no disk to wipe, so it is always
        usable; :class:`WindowsHost` answers from its MBR state.
        """
        return True

    def smb_sharing_enabled(self):
        """Does this host expose Windows file-and-print sharing?

        The SMB layer consults this instead of reaching into
        ``host.config`` so hosts without a full configuration object
        read as cleanly unreachable rather than crashing the probe.
        """
        return False

    def __repr__(self):
        return "%s(%r, infections=%s)" % (type(self).__name__,
                                          self.hostname,
                                          sorted(self.infections))
