"""A signature-driven antivirus vendor and endpoint product.

Models the arms race §V.D describes: a vendor that ships a new rule some
days after first seeing a sample, and endpoints that scan on a schedule.
Because endpoints scan through the API view, rootkit-hidden files evade
them; and because rules match concrete bytes/names, a malware that
*updates itself* (Flame's module churn) resets the vendor's clock —
which is exactly what the modularity ablation measures.
"""

from repro.winsim.eventlog import EventLogEntry
from repro.analysis.signatures import Signature, SignatureEngine


class AvVendor:
    """Builds detection rules with a realistic lag after sample capture."""

    def __init__(self, kernel, response_days=14.0):
        self.kernel = kernel
        self.response_lag = response_days * 86400.0
        self.engine = SignatureEngine()
        #: pattern bytes -> time first submitted.
        self._submissions = {}

    def submit_sample(self, family, pattern, name_hint=None):
        """A sample reached the vendor; a rule ships after the lag.

        Returns the Signature that will become active.
        """
        key = bytes(pattern)
        if key in self._submissions:
            return None
        now = self.kernel.clock.now
        self._submissions[key] = now
        signature = Signature(
            "%s-auto-%d" % (family, len(self._submissions)), family,
            byte_patterns=[key],
            name_patterns=[name_hint] if name_hint else (),
            released_at=now + self.response_lag,
        )
        self.engine.add(signature)
        return signature

    def rules_active_now(self):
        return self.engine.active_rules(self.kernel.clock.now)


class AntivirusProduct:
    """The endpoint agent: periodic scans through the API view."""

    def __init__(self, kernel, host, vendor, scan_interval=86400.0):
        self.kernel = kernel
        self.host = host
        self.vendor = vendor
        self.detections = []
        self._task = kernel.every(scan_interval, self.scan_now,
                                  "av-scan:%s" % host.hostname)

    def stop(self):
        self._task.stop()

    def scan_now(self):
        """One scan pass.  Detections land in the Windows event log —
        the very channel Flame's adventcfg watches."""
        findings = self.vendor.engine.scan_host(
            self.host, at_time=self.kernel.clock.now, raw=False
        )
        for signature, path in findings:
            if (signature.name, path) in self.detections:
                continue
            self.detections.append((signature.name, path))
            self.host.event_log.warning(
                "antivirus",
                "threat %s detected in %s" % (signature.name, path),
            )
        return findings

    def detected_families(self):
        families = set()
        for name, _ in self.detections:
            families.add(name.rsplit("-auto-", 1)[0].split("-")[0])
        return sorted(families)

    @property
    def alert_count(self):
        return len([e for e in self.host.event_log.entries(
            severity=EventLogEntry.WARNING, source="antivirus")])
