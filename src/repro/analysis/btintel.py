"""Bluetooth intelligence: what BEETLEJUICE's harvest is *for*.

§III.A: the bluetooth functionality lets the attacker "identify the
victim's social networks" and "identify the victim's physical location".
This module turns the recovered device/beacon data into those two
products: a social graph (victims linked through shared contacts,
built with networkx) and a co-location map (which victims' beacons the
same personal device has witnessed).
"""

import json

import networkx as nx


def decode_bluetooth_entries(recovered_intelligence):
    """Pull the decoded bluetooth harvests out of attack-center intel."""
    harvests = []
    for item in recovered_intelligence:
        data = item.get("data", b"")
        head = data.split(b"\x00", 1)[0]
        try:
            payload = json.loads(head.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if payload.get("kind") == "bluetooth":
            harvests.append(payload)
    return harvests


def build_social_graph(harvests):
    """Victims + device owners + contacts as one network.

    Nodes carry a ``kind`` attribute (victim / owner / contact); edges
    record how the link was observed.  Two victims connected through a
    shared contact is exactly the "social network" the paper says the
    attacker can map.
    """
    graph = nx.Graph()
    for harvest in harvests:
        victim = harvest["client"]
        graph.add_node(victim, kind="victim")
        for device in harvest.get("devices", []):
            owner = device.get("owner")
            if owner:
                graph.add_node(owner, kind="owner")
                graph.add_edge(victim, owner, via="device:%s" % device["name"])
            for contact in device.get("address_book", []):
                graph.add_node(contact, kind="contact")
                if owner:
                    graph.add_edge(owner, contact, via="address-book")
                else:
                    graph.add_edge(victim, contact, via="address-book")
    return graph


def victims_linked_through_contacts(graph):
    """Pairs of victims reachable through the harvested social tissue."""
    victims = [n for n, d in graph.nodes(data=True) if d.get("kind") == "victim"]
    linked = []
    for i, a in enumerate(victims):
        for b in victims[i + 1:]:
            if graph.has_node(a) and graph.has_node(b) and nx.has_path(graph, a, b):
                linked.append((a, b, nx.shortest_path_length(graph, a, b)))
    return linked


def colocation_map(neighborhood):
    """Physical-location product: device -> victims it has seen beacon.

    A personal device that witnessed two victims' beacons places those
    victims at the same physical location (within radio range of the
    same phone) — the paper's "identify the victim's physical location".
    """
    sightings = {}
    for address, hostname, time in neighborhood.beacon_sightings:
        sightings.setdefault(address, []).append((hostname, time))
    return sightings


def colocated_victims(neighborhood):
    """Victim pairs placed together by at least one shared witness."""
    pairs = set()
    for witnesses in colocation_map(neighborhood).values():
        hosts = sorted({hostname for hostname, _ in witnesses})
        for i, a in enumerate(hosts):
            for b in hosts[i + 1:]:
                pairs.add((a, b))
    return sorted(pairs)
