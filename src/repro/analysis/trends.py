"""The Section V trend matrix, computed from campaign artefacts.

The paper closes with six cross-cutting trends.  Rather than hardcoding
its prose, the matrix scores each family 0-5 per trend from *measured*
facts a campaign simulation produces (exploits actually fired, certs
actually abused, modules actually updated, ...).  Literature rows for
Duqu and Gauss — which the paper mentions but does not dissect — can be
added from reported facts and are marked as such.
"""

TREND_NAMES = (
    "sophistication",   # §V.A
    "targeting",        # §V.B
    "certified",        # §V.C
    "modularity",       # §V.D
    "usb_spreading",    # §V.E
    "suicide",          # §V.F
)


class CampaignArtifacts:
    """Measured facts about one family's simulated campaign."""

    def __init__(self, family, zero_days_used=0, stolen_certs=0,
                 forged_certs=0, signed_driver_abuse=0, module_count=0,
                 module_updates=0, infrastructure_domains=0,
                 infrastructure_servers=0, fingerprint_gated=False,
                 infections=0, intended_targets=0, usb_vectors=0,
                 network_vectors=0, has_suicide=False, suicide_executed=False,
                 source="measured"):
        self.family = family
        self.zero_days_used = zero_days_used
        self.stolen_certs = stolen_certs
        self.forged_certs = forged_certs
        self.signed_driver_abuse = signed_driver_abuse
        self.module_count = module_count
        self.module_updates = module_updates
        self.infrastructure_domains = infrastructure_domains
        self.infrastructure_servers = infrastructure_servers
        self.fingerprint_gated = fingerprint_gated
        self.infections = infections
        self.intended_targets = intended_targets
        self.usb_vectors = usb_vectors
        self.network_vectors = network_vectors
        self.has_suicide = has_suicide
        self.suicide_executed = suicide_executed
        #: "measured" (from a simulation) or "reported" (literature row).
        self.source = source

    # -- per-trend scores (0-5) -------------------------------------------------

    def score_sophistication(self):
        score = min(self.zero_days_used, 4)
        if self.forged_certs:
            score += 2  # "only very knowledgeable cryptographers"
        elif self.stolen_certs or self.signed_driver_abuse:
            score += 1
        if self.module_count >= 5:
            score += 1
        if self.infrastructure_domains >= 20:
            score += 1
        return min(score, 5)

    def score_targeting(self):
        score = 0
        if self.fingerprint_gated:
            score += 3
        if self.intended_targets and self.infections:
            # Tight campaigns infect few machines beyond their targets.
            ratio = self.intended_targets / self.infections
            if ratio >= 0.5:
                score += 2
            elif ratio >= 0.1:
                score += 1
        elif self.infections and self.infections <= 50:
            score += 1
        return min(score, 5)

    def score_certified(self):
        score = 0
        score += min(self.stolen_certs * 2, 3)
        score += min(self.forged_certs * 3, 3)
        score += min(self.signed_driver_abuse, 2)
        return min(score, 5)

    def score_modularity(self):
        score = min(self.module_count, 3)
        score += min(self.module_updates, 2)
        return min(score, 5)

    def score_usb_spreading(self):
        return min(self.usb_vectors * 2, 5)

    def score_suicide(self):
        if not self.has_suicide:
            return 0
        return 5 if self.suicide_executed else 3

    def scores(self):
        return {
            "sophistication": self.score_sophistication(),
            "targeting": self.score_targeting(),
            "certified": self.score_certified(),
            "modularity": self.score_modularity(),
            "usb_spreading": self.score_usb_spreading(),
            "suicide": self.score_suicide(),
        }


class TrendMatrix:
    """Rows of per-family trend scores."""

    def __init__(self):
        self.rows = {}
        self.sources = {}

    def add(self, artifacts):
        self.rows[artifacts.family] = artifacts.scores()
        self.sources[artifacts.family] = artifacts.source
        return self

    def families(self):
        return sorted(self.rows)

    def score(self, family, trend):
        return self.rows[family][trend]

    def as_table(self):
        """Render rows for printing: family, then the six scores."""
        lines = []
        header = ["family".ljust(10)] + [t[:12].ljust(14) for t in TREND_NAMES]
        lines.append(" ".join(header))
        for family in self.families():
            row = [family.ljust(10)]
            for trend in TREND_NAMES:
                mark = "%d (%s)" % (self.rows[family][trend],
                                    self.sources[family][:4])
                row.append(mark.ljust(14))
            lines.append(" ".join(row))
        return "\n".join(lines)


def _count_usb_vectors(infections_by_vector):
    return sum(1 for v in infections_by_vector if v.startswith("usb"))


def _count_network_vectors(infections_by_vector):
    return sum(1 for v in infections_by_vector
               if v.startswith(("network", "windows-update")))


def score_campaign(stuxnet=None, flame=None, shamoon=None,
                   stuxnet_facts=None, flame_facts=None, shamoon_facts=None):
    """Build a TrendMatrix from live malware instances.

    Each ``*_facts`` dict can override/extend what introspection sees
    (e.g. infrastructure counts live outside the malware object).
    """
    matrix = TrendMatrix()
    if stuxnet is not None:
        vectors = stuxnet.infections_by_vector()
        facts = {
            "zero_days_used": 4,
            "stolen_certs": 2,
            "fingerprint_gated": stuxnet.config.targeted,
            "infections": max(stuxnet.infection_count, 1),
            "intended_targets": len(stuxnet.armed_plc_payloads()),
            "usb_vectors": _count_usb_vectors(vectors),
            "network_vectors": _count_network_vectors(vectors),
            "has_suicide": True,
            "module_count": 2,
        }
        facts.update(stuxnet_facts or {})
        matrix.add(CampaignArtifacts("stuxnet", **facts))
    if flame is not None:
        vectors = flame.infections_by_vector()
        facts = {
            "zero_days_used": 1,
            "forged_certs": 0 if flame.forgery_failed else 1,
            "module_count": len(flame.modules.names()) + 6,
            "module_updates": flame.stats["updates_applied"],
            "infections": max(flame.infection_count
                              + len(flame.infection_log), 1),
            "usb_vectors": _count_usb_vectors(vectors),
            "network_vectors": _count_network_vectors(vectors),
            "has_suicide": True,
            "suicide_executed": any(s.suicided
                                    for s in flame._states.values()),
        }
        facts.update(flame_facts or {})
        matrix.add(CampaignArtifacts("flame", **facts))
    if shamoon is not None:
        vectors = shamoon.infections_by_vector()
        facts = {
            "zero_days_used": 0,
            "signed_driver_abuse": 1 if shamoon.wiped_hosts else 0,
            "infections": max(shamoon.infection_count, 1),
            "usb_vectors": _count_usb_vectors(vectors),
            "network_vectors": _count_network_vectors(vectors),
            "has_suicide": False,
            "module_count": 3,
        }
        facts.update(shamoon_facts or {})
        matrix.add(CampaignArtifacts("shamoon", **facts))
    return matrix


def duqu_artifacts(duqu):
    """Measured trend facts from a live :class:`repro.malware.duqu.Duqu`."""
    vectors = duqu.infections_by_vector()
    removed = len(duqu.infection_log) - duqu.infection_count
    return CampaignArtifacts(
        "duqu",
        zero_days_used=1,                      # the document kernel EoP
        stolen_certs=1,                        # C-Media driver signing
        # Loader, RPC component, keylogger, exfil — plus the fact that
        # each victim gets its own compiled set.
        module_count=max(4, len(duqu.infection_builds)),
        module_updates=len(duqu.infection_builds),  # one build per victim
        fingerprint_gated=True,                # hand-picked delivery
        infections=max(len(duqu.infection_log), 1),
        intended_targets=max(len(duqu.infection_log), 1),
        usb_vectors=_count_usb_vectors(vectors),
        network_vectors=_count_network_vectors(vectors),
        has_suicide=True,
        suicide_executed=removed > 0,
        source="measured",
    )


def gauss_artifacts(gauss):
    """Measured trend facts from a live :class:`repro.malware.gauss.Gauss`."""
    vectors = gauss.infections_by_vector()
    return CampaignArtifacts(
        "gauss",
        zero_days_used=1,                      # the reused LNK vector
        forged_certs=0,
        module_count=5,
        fingerprint_gated=gauss.config.godel_ciphertext is not None,
        infections=max(len(gauss.infection_log), 1),
        intended_targets=len(gauss.godel_detonations),
        usb_vectors=max(_count_usb_vectors(vectors), 1),
        network_vectors=_count_network_vectors(vectors),
        has_suicide=True,
        source="measured",
    )


def literature_rows():
    """Duqu and Gauss from the paper's reported facts (not simulated)."""
    return [
        CampaignArtifacts(
            "duqu", zero_days_used=1, stolen_certs=1, module_count=4,
            module_updates=3, fingerprint_gated=True, infections=20,
            intended_targets=12, usb_vectors=0, network_vectors=1,
            has_suicide=True, suicide_executed=True, source="reported",
        ),
        CampaignArtifacts(
            "gauss", zero_days_used=1, module_count=5, module_updates=1,
            infections=2500, intended_targets=1800, usb_vectors=1,
            network_vectors=0, has_suicide=True, suicide_executed=False,
            infrastructure_domains=10, source="reported",
        ),
    ]
