"""Forensic timeline reconstruction.

The paper is, at heart, an after-the-fact reconstruction of what these
weapons did.  This module rebuilds that view from simulation artefacts:
the kernel trace, per-host filesystems (raw view), event logs, and
driver/service state — producing the incident chronology an analyst
would assemble from disk images and logs.
"""

from datetime import timedelta


class TimelineEvent:
    """One reconstructed incident event."""

    __slots__ = ("time", "host", "category", "description")

    def __init__(self, time, host, category, description):
        self.time = time
        self.host = host
        self.category = category
        self.description = description

    def __repr__(self):
        return "[t=%10.1f] %-12s %-18s %s" % (
            self.time, self.host or "-", self.category, self.description)


#: Trace actions that matter to an incident chronology, with categories.
_ACTION_CATEGORIES = {
    "infection": "initial-access",
    "lnk-exploit-fired": "initial-access",
    "autorun-executed": "initial-access",
    "usb-weaponised": "lateral-movement",
    "spooler-files-dropped": "lateral-movement",
    "mof-launched-dropper": "execution",
    "rootkit-installed": "defense-evasion",
    "s7otbxdx-swapped": "defense-evasion",
    "step7-project-infected": "persistence",
    "plc-payload-armed": "impact-staging",
    "plc-attack-start": "impact",
    "plc-attack-complete": "impact",
    "host-wiped": "impact",
    "shamoon-files-wiped": "impact",
    "shamoon-mbr-wiped": "impact",
    "stuxnet-cnc-contact": "command-and-control",
    "stuxnet-update-applied": "command-and-control",
    "flame-courier-stored": "exfiltration",
    "flame-courier-flushed": "exfiltration",
    "bluetooth-exfil": "exfiltration",
    "flame-suicide-complete": "anti-forensics",
    "suicide-broadcast": "command-and-control",
    "snack-wpad-hijack-armed": "lateral-movement",
    "munch-update-intercepted": "lateral-movement",
    "windows-update-install": "execution",
    "godel-payload-detonated": "impact",
    "lifetime-self-removal": "anti-forensics",
    "cnc-entries-shredded": "anti-forensics",
}


def reconstruct_timeline(kernel, hosts=(), categories=None):
    """Build the incident chronology from a finished simulation.

    Returns a time-ordered list of :class:`TimelineEvent`.  ``hosts``
    restricts to events touching those hostnames (as actor or target);
    ``categories`` filters to the given category set.
    """
    hostnames = {h.hostname for h in hosts}
    events = []
    for record in kernel.trace:
        category = _ACTION_CATEGORIES.get(record.action)
        if category is None:
            continue
        if categories is not None and category not in categories:
            continue
        host = None
        if record.actor in hostnames or not hostnames:
            host = record.actor
        elif record.target in hostnames:
            host = record.target
        else:
            continue
        detail = ""
        if record.target and record.target != host:
            detail = " -> %s" % record.target
        if record.detail:
            detail += " %s" % record.detail
        events.append(TimelineEvent(record.time, host,
                                    category, record.action + detail))
    return events


def dwell_time(kernel, malware_name, hostname):
    """Seconds between first compromise of a host and the present.

    The paper's detection story is about *dwell*: Flame ran for at least
    two years before anyone noticed.  None -> never infected.
    """
    first = None
    for record in kernel.trace.query(actor=malware_name, action="infection",
                                     target=hostname):
        first = record
        break
    if first is None:
        return None
    return kernel.clock.now - first.time


def render_timeline(events, clock=None, limit=None):
    """Human-readable chronology, optionally with calendar timestamps."""
    rows = events if limit is None else events[:limit]
    lines = []
    for event in rows:
        if clock is not None:
            stamp = (clock.epoch + timedelta(seconds=event.time)).isoformat()
        else:
            stamp = "t=%.0fs" % event.time
        lines.append("%-25s %-12s %-18s %s" % (stamp, event.host or "-",
                                               event.category,
                                               event.description))
    return "\n".join(lines)


def category_histogram(events):
    """How much of each tactic the incident contained."""
    histogram = {}
    for event in events:
        histogram[event.category] = histogram.get(event.category, 0) + 1
    return histogram
