"""Static PE dissection.

What an analyst's first pass over ``TrkSvr.exe`` produces: structure,
encrypted resources, import surface, signature provenance, anomalies.
"""

from repro.certs.codesign import extract_signature
from repro.pe import PeFormatError, parse_pe

#: Imports that raise an analyst's eyebrow, and why.
_SUSPICIOUS_IMPORTS = {
    "kernel32.dll!CreateServiceA": "installs a service",
    "kernel32.dll!CreateProcessA": "spawns processes",
    "mpr.dll!WNetAddConnection2A": "mounts network shares",
    "ntoskrnl.exe!IoCreateDevice": "kernel-mode device (driver)",
    "ntoskrnl.exe!ZwWriteFile": "raw kernel file IO",
    "ntoskrnl.exe!ZwQueryDirectoryFile": "directory enumeration (hiding?)",
}


class StaticReport:
    """Findings from one static pass."""

    def __init__(self, parsed, machine, size, sections, resources,
                 encrypted_resources, imports, suspicious_imports,
                 signature, signature_valid, signer, anomalies):
        self.parsed = parsed
        self.machine = machine
        self.size = size
        self.sections = sections
        self.resources = resources
        self.encrypted_resources = encrypted_resources
        self.imports = imports
        self.suspicious_imports = suspicious_imports
        self.signature = signature
        self.signature_valid = signature_valid
        self.signer = signer
        self.anomalies = anomalies

    @property
    def suspicion_score(self):
        """Rough 0..10 triage score an analyst would assign."""
        score = 0
        score += min(len(self.encrypted_resources) * 2, 4)
        score += min(len(self.suspicious_imports), 3)
        score += len(self.anomalies)
        if self.signature is not None and not self.signature_valid:
            score += 2
        return min(score, 10)

    def summary_lines(self):
        lines = [
            "machine: %s, size: %d bytes" % (self.machine, self.size),
            "sections: %s" % ", ".join(self.sections),
            "resources: %d (%d encrypted)" % (len(self.resources),
                                              len(self.encrypted_resources)),
            "signed by: %s (valid: %s)" % (self.signer, self.signature_valid),
            "suspicion: %d/10" % self.suspicion_score,
        ]
        lines.extend("anomaly: %s" % a for a in self.anomalies)
        return lines


def analyze_pe(image_bytes, trust_store=None, at_time=0):
    """Run the static pass over PE bytes.

    Never raises on malformed input: an unparseable image comes back as
    a maximally suspicious report, because that is itself a finding.
    """
    try:
        pe = parse_pe(image_bytes)
    except PeFormatError as exc:
        return StaticReport(
            parsed=False, machine="unknown", size=len(image_bytes),
            sections=[], resources=[], encrypted_resources=[], imports=[],
            suspicious_imports={}, signature=None, signature_valid=False,
            signer=None, anomalies=["unparseable image: %s" % exc],
        )

    anomalies = []
    encrypted = [r.name for r in pe.encrypted_resources()]
    if encrypted:
        anomalies.append("XOR-encrypted resources: %s" % ", ".join(encrypted))
    pad = next((s for s in pe.sections if s.name == ".pad"), None)
    if pad is not None and pad.size > len(image_bytes) // 2:
        anomalies.append("padding dominates image (size inflation)")
    for resource in pe.resources:
        if resource.data[:2] == b"MZ" or (resource.xor_key and
                                          resource.decrypt()[:2] == b"MZ"):
            anomalies.append("embedded executable in resource %r" % resource.name)

    imports = pe.imported_functions()
    suspicious = {name: _SUSPICIOUS_IMPORTS[name]
                  for name in imports if name in _SUSPICIOUS_IMPORTS}

    signature = extract_signature(pe)
    signature_valid = False
    signer = None
    if signature is not None:
        signer = signature.signer_subject
        if trust_store is not None:
            signature_valid = bool(
                trust_store.verify_code_signature(image_bytes, pe, at_time=at_time)
            )
        if signature.algorithm == "weakmd5":
            anomalies.append("signature uses collision-prone hash (weakmd5)")

    return StaticReport(
        parsed=True,
        machine=pe.machine_label,
        size=len(image_bytes),
        sections=[s.name for s in pe.sections],
        resources=[r.name for r in pe.resources],
        encrypted_resources=encrypted,
        imports=imports,
        suspicious_imports=suspicious,
        signature=signature,
        signature_valid=signature_valid,
        signer=signer,
        anomalies=anomalies,
    )
