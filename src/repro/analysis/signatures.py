"""A YARA-like signature engine.

Rules match byte patterns (or path fragments) against file contents and
names; the stock rule set covers the artefacts the three families drop.
"""


class Signature:
    """One detection rule."""

    def __init__(self, name, family, byte_patterns=(), name_patterns=(),
                 require_all=False, released_at=0.0):
        if not byte_patterns and not name_patterns:
            raise ValueError("signature %r matches nothing" % name)
        self.name = name
        self.family = family
        self.byte_patterns = [p if isinstance(p, bytes) else p.encode("utf-8")
                              for p in byte_patterns]
        self.name_patterns = [p.lower() for p in name_patterns]
        self.require_all = require_all
        #: Virtual time the AV vendor shipped this rule (0 = always had).
        self.released_at = released_at

    def matches_bytes(self, data):
        if not self.byte_patterns:
            return False
        hits = [pattern in data for pattern in self.byte_patterns]
        return all(hits) if self.require_all else any(hits)

    def matches_name(self, path):
        lowered = path.lower()
        return any(pattern in lowered for pattern in self.name_patterns)

    def matches_file(self, path, data):
        return self.matches_name(path) or self.matches_bytes(data)

    def __repr__(self):
        return "Signature(%r, family=%s)" % (self.name, self.family)


class SignatureEngine:
    """Scan bytes, files, or entire hosts with a rule set."""

    def __init__(self, signatures=()):
        self.signatures = list(signatures)

    def add(self, signature):
        self.signatures.append(signature)

    def active_rules(self, at_time=None):
        if at_time is None:
            return list(self.signatures)
        return [s for s in self.signatures if s.released_at <= at_time]

    def scan_bytes(self, data, at_time=None):
        return [s for s in self.active_rules(at_time) if s.matches_bytes(data)]

    def scan_host(self, host, at_time=None, raw=True):
        """Scan every file on a host.

        ``raw=True`` is a forensic scan (sees rootkit-hidden files);
        ``raw=False`` is what a live AV sees *through* the rootkit —
        comparing the two is how an analyst proves hiding happened.
        """
        findings = []
        rules = self.active_rules(at_time)
        for record in host.vfs.walk("c:", raw=raw):
            for signature in rules:
                if signature.matches_file(record.path, record.data):
                    findings.append((signature, record.path))
        return findings

    def families_found(self, findings):
        return sorted({signature.family for signature, _ in findings})


def default_signatures():
    """The stock rules for the campaign's three families."""
    return [
        Signature("stuxnet-dropper", "stuxnet",
                  byte_patterns=[b"stuxnet dropper"],
                  name_patterns=["winsta.exe", "oem7a.pnf"]),
        Signature("stuxnet-rootkit-drivers", "stuxnet",
                  byte_patterns=[b"stuxnet loader driver",
                                 b"stuxnet hider driver"],
                  name_patterns=["mrxcls.sys", "mrxnet.sys"]),
        Signature("stuxnet-fake-s7-dll", "stuxnet",
                  byte_patterns=[b"stuxnet compromised s7 library"],
                  name_patterns=["s7otbxsx.dll"]),
        Signature("flame-main-module", "flame",
                  name_patterns=["mssecmgr.ocx", "advnetcfg.ocx",
                                 "msglu32.ocx", "soapr32.ocx"]),
        Signature("shamoon-disttrack", "shamoon",
                  byte_patterns=[b"shamoon dropper logic",
                                 b"shamoon wiper", b"shamoon reporter"],
                  name_patterns=["trksvr.exe", "netinit.exe",
                                 "f1.inf", "f2.inf"]),
        Signature("shamoon-eldos-abuse", "shamoon",
                  byte_patterns=[b"eldos rawdisk kernel driver"],
                  name_patterns=["drdisk.sys"]),
    ]
