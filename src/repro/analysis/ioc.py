"""Indicator-of-compromise scanning.

IOCs are the cheap, shareable facts an incident responder sweeps a fleet
for: dropped filenames, contacted domains, registry keys, service names.
"""


class Indicator:
    """One IOC."""

    KINDS = ("file-path", "domain", "registry-key", "service-name",
             "hooked-api")

    def __init__(self, kind, value, family):
        if kind not in self.KINDS:
            raise ValueError("unknown IOC kind: %r" % kind)
        self.kind = kind
        self.value = value.lower()
        self.family = family

    def __repr__(self):
        return "Indicator(%s=%r, %s)" % (self.kind, self.value, self.family)


class IocDatabase:
    """Sweep hosts and network captures for known indicators."""

    def __init__(self, indicators=()):
        self.indicators = list(indicators)

    def add(self, indicator):
        self.indicators.append(indicator)

    def _of_kind(self, kind):
        return [i for i in self.indicators if i.kind == kind]

    def scan_host(self, host, raw=True):
        """All IOC hits on one host."""
        hits = []
        file_paths = [r.path for r in host.vfs.walk("c:", raw=raw)]
        for indicator in self._of_kind("file-path"):
            for path in file_paths:
                if indicator.value in path:
                    hits.append((indicator, path))
        for indicator in self._of_kind("registry-key"):
            for key in host.registry.all_keys():
                if indicator.value in key:
                    hits.append((indicator, key))
        for indicator in self._of_kind("service-name"):
            for service in host.services.listing():
                if indicator.value == service.name.lower():
                    hits.append((indicator, service.name))
        for indicator in self._of_kind("hooked-api"):
            for api in host.hooks.hooked_apis():
                if indicator.value in api.lower():
                    hits.append((indicator, api))
        return hits

    def scan_capture(self, capture):
        """IOC hits in a packet capture (C&C domains)."""
        hits = []
        domains = self._of_kind("domain")
        for packet in capture:
            for indicator in domains:
                if indicator.value in str(packet.dst).lower():
                    hits.append((indicator, packet))
        return hits

    def infected_hosts(self, hosts, raw=True):
        """Which of ``hosts`` show at least one IOC, and for what family."""
        result = {}
        for host in hosts:
            families = sorted({i.family for i, _ in self.scan_host(host, raw=raw)})
            if families:
                result[host.hostname] = families
        return result


def default_iocs():
    """Stock indicators for the three families."""
    return IocDatabase([
        Indicator("file-path", "winsta.exe", "stuxnet"),
        Indicator("file-path", "mrxnet.sys", "stuxnet"),
        Indicator("file-path", "s7otbxsx.dll", "stuxnet"),
        Indicator("hooked-api", "s7.open_project", "stuxnet"),
        Indicator("domain", "mypremierfutbol.com", "stuxnet"),
        Indicator("domain", "todayfutbol.com", "stuxnet"),
        Indicator("file-path", "mssecmgr.ocx", "flame"),
        Indicator("file-path", "advnetcfg.ocx", "flame"),
        Indicator("file-path", "trksvr.exe", "shamoon"),
        Indicator("file-path", "netinit.exe", "shamoon"),
        Indicator("file-path", "f1.inf", "shamoon"),
        Indicator("file-path", "drdisk.sys", "shamoon"),
        Indicator("service-name", "trksvr", "shamoon"),
    ])
