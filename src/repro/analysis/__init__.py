"""The dissection toolkit: the paper's own methodology, as code.

The paper *is* an analysis exercise — reading samples, detonating them,
extracting indicators, comparing families.  This package provides that
workflow against the simulated artefacts:

* :mod:`repro.analysis.static` — PE dissection (sections, encrypted
  resources, imports, signature verification);
* :mod:`repro.analysis.sandbox` — detonate a sample on a sacrificial
  host and diff everything (files, registry, processes, services,
  drivers, event log);
* :mod:`repro.analysis.signatures` — a YARA-like pattern engine plus the
  stock rules for the three families;
* :mod:`repro.analysis.ioc` — indicator-of-compromise scanning across a
  fleet;
* :mod:`repro.analysis.avsim` — a signature-driven AV vendor model (for
  the evasion/modularity experiments);
* :mod:`repro.analysis.trends` — the Section V trend matrix, scored from
  measured artefacts rather than hardcoded prose.
"""

from repro.analysis.static import StaticReport, analyze_pe
from repro.analysis.sandbox import BehaviorReport, Sandbox
from repro.analysis.signatures import (
    Signature,
    SignatureEngine,
    default_signatures,
)
from repro.analysis.ioc import IocDatabase, default_iocs
from repro.analysis.avsim import AntivirusProduct, AvVendor
from repro.analysis.btintel import (
    build_social_graph,
    colocated_victims,
    decode_bluetooth_entries,
    victims_linked_through_contacts,
)
from repro.analysis.timeline import (
    TimelineEvent,
    category_histogram,
    dwell_time,
    reconstruct_timeline,
    render_timeline,
)
from repro.analysis.trends import TREND_NAMES, TrendMatrix, score_campaign

__all__ = [
    "AntivirusProduct",
    "AvVendor",
    "BehaviorReport",
    "IocDatabase",
    "Sandbox",
    "Signature",
    "SignatureEngine",
    "StaticReport",
    "TREND_NAMES",
    "TimelineEvent",
    "TrendMatrix",
    "category_histogram",
    "dwell_time",
    "reconstruct_timeline",
    "render_timeline",
    "analyze_pe",
    "build_social_graph",
    "colocated_victims",
    "decode_bluetooth_entries",
    "default_iocs",
    "default_signatures",
    "score_campaign",
    "victims_linked_through_contacts",
]
