"""Dynamic analysis: detonate a sample on a sacrificial host.

The sandbox builds a fresh, instrumented :class:`WindowsHost`, snapshots
it, runs the sample, runs the clock forward, and diffs everything an
incident responder would look at.
"""

from repro.certs import PkiWorld
from repro.sim import Kernel
from repro.winsim import HostConfig, WindowsHost
from repro.winsim.processes import IntegrityLevel


class BehaviorReport:
    """What happened when the sample ran."""

    def __init__(self, files_created, files_modified, files_deleted,
                 registry_keys_added, processes_spawned, services_created,
                 tasks_created, drivers_loaded, hooked_apis, event_log_entries,
                 host_usable, hidden_files):
        self.files_created = files_created
        self.files_modified = files_modified
        self.files_deleted = files_deleted
        self.registry_keys_added = registry_keys_added
        self.processes_spawned = processes_spawned
        self.services_created = services_created
        self.tasks_created = tasks_created
        self.drivers_loaded = drivers_loaded
        self.hooked_apis = hooked_apis
        self.event_log_entries = event_log_entries
        self.host_usable = host_usable
        #: Files visible in the raw view but not the API view: rootkit!
        self.hidden_files = hidden_files

    @property
    def verdict(self):
        """Rough triage verdict from the observed behaviour."""
        if not self.host_usable:
            return "destructive"
        if self.hidden_files or self.hooked_apis:
            return "rootkit"
        if self.services_created or self.drivers_loaded:
            return "persistent-implant"
        if self.files_created:
            return "dropper"
        return "inert"

    def summary_lines(self):
        return [
            "verdict: %s" % self.verdict,
            "files: +%d ~%d -%d (hidden: %d)" % (
                len(self.files_created), len(self.files_modified),
                len(self.files_deleted), len(self.hidden_files)),
            "registry keys added: %d" % len(self.registry_keys_added),
            "processes: %s" % ", ".join(self.processes_spawned[:8]),
            "services: %s" % ", ".join(self.services_created),
            "drivers: %s" % ", ".join(self.drivers_loaded),
            "hooked APIs: %s" % ", ".join(self.hooked_apis),
            "host usable after run: %s" % self.host_usable,
        ]


class Sandbox:
    """An isolated detonation chamber."""

    def __init__(self, seed=1234, os_version="7", host_config=None):
        self.kernel = Kernel(seed=seed)
        self.world = PkiWorld()
        config = host_config or HostConfig(
            os_version=os_version, file_and_print_sharing=True,
            has_microphone=True,
        )
        self.host = WindowsHost(self.kernel, "SANDBOX-01",
                                self.world.make_trust_store(), config)
        # Bait documents so stealers have something to chew on.
        self.host.vfs.write("c:\\users\\analyst\\documents\\secret-plans.docx",
                            b"B" * 4096)
        self.host.vfs.write("c:\\users\\analyst\\downloads\\invoice.pdf",
                            b"B" * 2048)

    def _snapshot(self):
        return {
            "files": {r.path for r in self.host.vfs.walk("c:", raw=True)},
            "file_data": {r.path: r.data
                          for r in self.host.vfs.walk("c:", raw=True)},
            "registry": set(self.host.registry.all_keys()),
            "processes": {p.pid for p in
                          self.host.processes.listing(include_hidden=True)},
            "services": {s.name for s in self.host.services.listing()},
            "tasks": {t.name for t in self.host.tasks.listing()},
            "drivers": {d.name for d in self.host.drivers.loaded()},
            "log_len": len(self.host.event_log),
        }

    def detonate(self, sample, run_seconds=3600.0,
                 integrity=IntegrityLevel.USER):
        """Run a sample and report.

        ``sample`` is either a callable ``sample(host)`` or raw bytes
        with an attached behaviour registered via ``payload=`` when the
        caller writes it to the sandbox first.
        """
        before = self._snapshot()
        if callable(sample):
            process = self.host.processes.spawn("sample.exe", integrity)
            sample(self.host)
        else:
            path = "c:\\users\\analyst\\downloads\\sample.exe"
            self.host.vfs.write(path, sample)
            self.host.execute_file(path, integrity=integrity)
        self.kernel.run_for(run_seconds)
        after = self._snapshot()

        modified = sorted(
            path for path in (before["files"] & after["files"])
            if before["file_data"][path] != after["file_data"].get(path)
        )
        api_view = {r.path for r in self.host.vfs.walk("c:", raw=False)}
        hidden = sorted(set(after["files"]) - api_view)
        spawned = [p.name for p in
                   self.host.processes.listing(include_hidden=True)
                   if p.pid not in before["processes"]]

        return BehaviorReport(
            files_created=sorted(after["files"] - before["files"]),
            files_modified=modified,
            files_deleted=sorted(before["files"] - after["files"]),
            registry_keys_added=sorted(after["registry"] - before["registry"]),
            processes_spawned=spawned,
            services_created=sorted(after["services"] - before["services"]),
            tasks_created=sorted(after["tasks"] - before["tasks"]),
            drivers_loaded=sorted(after["drivers"] - before["drivers"]),
            hooked_apis=self.host.hooks.hooked_apis(),
            event_log_entries=len(self.host.event_log) - before["log_len"],
            host_usable=self.host.usable(),
            hidden_files=hidden,
        )
