"""Client side of the C&C protocol.

§III.B: "When a computer is infected with Flame, it uses a default
configuration of 5 domains to contact the C&C servers. Once it
successfully connects to a server, the list is updated to reach around
10 domains."
"""

import json

from repro.cnc.server import NEWSFORYOU, decode_package
from repro.crypto.sealed import seal
from repro.netsim.network import NetworkError


class CncClient:
    """The C&C stub embedded in an infected host's malware.

    ``rotate=False`` is the resilience-ablation lever: the client pins
    itself to its first default domain and never learns the wider
    rotation, so a single takedown severs it — exactly what the paper's
    80-domain design exists to prevent.
    """

    def __init__(self, client_id, default_domains, client_type="CLIENT_TYPE_FL",
                 rotate=True):
        self.client_id = client_id
        self.domains = list(default_domains)
        self.client_type = client_type
        self.rotate = rotate
        self.contact_count = 0
        self.failed_contacts = 0
        self.bytes_uploaded = 0
        self._nonce = 0

    def _try_domains(self, lan, host, send):
        """Walk the domain list until one server answers."""
        candidates = list(self.domains) if self.rotate else self.domains[:1]
        for domain in candidates:
            try:
                response = send(domain)
            except NetworkError:
                self.failed_contacts += 1
                continue
            if response.ok:
                self._promote(domain)
                return domain, response
            self.failed_contacts += 1
        return None, None

    def _promote(self, domain):
        """Move the last known-good domain to the front of the rotation,
        so steady-state traffic stops paying for dead list prefixes."""
        if self.rotate and self.domains and self.domains[0] != domain:
            try:
                self.domains.remove(domain)
            except ValueError:
                return
            self.domains.insert(0, domain)

    def get_news(self, lan, host):
        """Fetch pending packages; learn new domains on success.

        Returns the list of decoded package dicts (possibly empty), or
        None when no C&C server could be reached.
        """

        def send(domain):
            return lan.http_get(
                host, "http://%s%s" % (domain, NEWSFORYOU),
                params={"command": "GET_NEWS", "client_id": self.client_id,
                        "client_type": self.client_type},
            )

        domain, response = self._try_domains(lan, host, send)
        if response is None:
            return None
        self.contact_count += 1
        payload = json.loads(response.body.decode("utf-8"))
        if self.rotate:
            for new_domain in payload.get("domains", []):
                if new_domain not in self.domains:
                    self.domains.append(new_domain)
        return [decode_package(p.encode("utf-8")) for p in payload.get("packages", [])]

    def add_entry(self, lan, host, plaintext, coordinator_public_key):
        """Seal and upload stolen data.  Returns True on success."""
        self._nonce += 1
        blob = seal(coordinator_public_key, plaintext,
                    nonce=("%s|%d" % (self.client_id, self._nonce)).encode("ascii"))
        wire = blob.to_bytes()

        def send(domain):
            return lan.http(
                host, "POST", "http://%s%s" % (domain, NEWSFORYOU),
                params={"command": "ADD_ENTRY", "client_id": self.client_id},
                body=wire,
            )

        domain, response = self._try_domains(lan, host, send)
        if response is None:
            return False
        self.contact_count += 1
        self.bytes_uploaded += len(wire)
        return True
