"""The attack center: one place steering all C&C servers (Fig. 4).

§III.B: the operator uses a GUI control panel to move data through each
server; "the corresponding private key is only known by the attack
coordinator ... Even the admin and operator do not know the private key
and hence do not have access to the stolen data. This hierarchical
structure at the attack center is another evidence that the attackers
are not typical cyber-criminals or hacktivists."
"""

from repro.crypto.rsa import generate_keypair
from repro.crypto.sealed import SealedBlob, unseal


class AttackCenterRole:
    """One person at the attack center."""

    def __init__(self, name, role):
        self.name = name
        self.role = role  # "admin" | "operator" | "coordinator"

    def __repr__(self):
        return "AttackCenterRole(%r, %s)" % (self.name, self.role)


class AttackCenter:
    """Builds, provisions, and drives a fleet of C&C servers."""

    def __init__(self, kernel, label="attack-center"):
        self.kernel = kernel
        self.label = label
        #: Only the coordinator holds this key pair; servers get only
        #: the public half.
        self._coordinator_keypair = generate_keypair("coordinator:%s" % label)
        self.admin = AttackCenterRole("admin-1", "admin")
        self.operator = AttackCenterRole("operator-1", "operator")
        self.coordinator = AttackCenterRole("coordinator-1", "coordinator")
        self.servers = []
        #: Decrypted stolen documents, keyed by (server, entry id).
        self.recovered_intelligence = []
        self.sealed_backlog = []

    @property
    def coordinator_public_key(self):
        return self._coordinator_keypair.public

    # -- fleet management ------------------------------------------------------

    def provision_server(self, server, internet, domains, server_ip=None):
        """Put a C&C server online behind a set of domains.

        Registers every domain at the same address (one server, many
        aliases), runs the admin setup automation, and remembers the
        server for fleet-wide commands.
        """
        address = internet.register_site(domains[0], server.http, address=server_ip)
        for domain in domains[1:]:
            internet.register_site(domain, server.http, address=address)
        server.admin_setup()
        self.servers.append(server)
        return address

    # -- operator actions (GUI control panel) --------------------------------------

    def push_command(self, name, payload=b"", client_id=None, kind="command",
                     client_type=None):
        """Queue a package on every server (news) or for one client (ads).

        ``client_type`` scopes a broadcast to one of the four client
        families (§III.B) — clients of other types ignore the package.
        """
        package = {"name": name, "kind": kind, "payload": payload}
        if client_type is not None:
            package["client_type"] = client_type
        for server in self.servers:
            if client_id is None:
                server.put_news(package)
            else:
                server.put_ad(client_id, package)
        return package

    def push_module_update(self, module_name, lua_source, client_id=None):
        """Ship a (Lua) module update — Flame's self-extension mechanism."""
        return self.push_command(module_name, lua_source.encode("utf-8"),
                                 client_id=client_id, kind="module")

    def broadcast_suicide(self, client_type=None):
        """The kill switch: clients must remove themselves completely.

        The real May-2012 broadcast targeted the Flame clients proper;
        "CLIENT_TYPE_SP, CLIENT_TYPE_SPE, and CLIENT_TYPE_IP" variants
        stayed deployable (§III.B) — pass ``client_type`` to reproduce
        that scoping, or None to kill everything.
        """
        self.kernel.trace.record(self.label, "suicide-broadcast",
                                 client_type=client_type)
        return self.push_command("SUICIDE", kind="command",
                                 client_type=client_type)

    def harvest(self):
        """Operator pass: pull sealed entries off every server.

        The operator cannot read them — they stack up for the
        coordinator.
        Returns the number of entries pulled.
        """
        pulled = 0
        for server in self.servers:
            for entry_id, blob in server.collect_entries():
                self.sealed_backlog.append((server.name, entry_id, blob))
                pulled += 1
        return pulled

    # -- coordinator actions ---------------------------------------------------------

    def coordinator_decrypt_backlog(self):
        """Open every sealed entry with the coordinator's private key."""
        opened = 0
        while self.sealed_backlog:
            server_name, entry_id, blob = self.sealed_backlog.pop(0)
            plaintext = unseal(self._coordinator_keypair,
                               SealedBlob.from_bytes(blob))
            self.recovered_intelligence.append(
                {"server": server_name, "entry": entry_id, "data": plaintext}
            )
            opened += 1
        return opened

    def operator_can_read(self, blob):
        """Demonstrably False: the operator lacks the private key."""
        return False

    # -- reporting ---------------------------------------------------------------------

    def total_clients(self):
        seen = set()
        for server in self.servers:
            for row in server.known_clients():
                seen.add(row["client_id"])
        return len(seen)

    def total_stolen_bytes(self):
        return sum(server.bytes_received for server in self.servers)

    def __repr__(self):
        return "AttackCenter(%d servers, %d clients, %d intel items)" % (
            len(self.servers), self.total_clients(),
            len(self.recovered_intelligence),
        )
