"""MiniDatabase: the MySQL stand-in on each C&C server.

§III.B "Database": "the server maintains a MySQL database. The database
stores data about: connecting clients, packages to send to the clients,
encryption settings, authentication to access the control panel."
"""


class MiniDatabase:
    """Tiny schemaless table store with predicate queries."""

    def __init__(self):
        self._tables = {}
        self._next_rowid = 1

    def create_table(self, name):
        self._tables.setdefault(name, [])

    def tables(self):
        return sorted(self._tables)

    def insert(self, table, **row):
        self.create_table(table)
        row = dict(row)
        row["_rowid"] = self._next_rowid
        self._next_rowid += 1
        self._tables[table].append(row)
        return row["_rowid"]

    def select(self, table, **equals):
        """Rows where every given column equals the given value."""
        rows = self._tables.get(table, [])
        out = []
        for row in rows:
            if all(row.get(column) == value for column, value in equals.items()):
                out.append(dict(row))
        return out

    def select_one(self, table, **equals):
        rows = self.select(table, **equals)
        return rows[0] if rows else None

    def update(self, table, where, changes):
        """Apply ``changes`` to rows matching the ``where`` equals-dict."""
        count = 0
        for row in self._tables.get(table, []):
            if all(row.get(c) == v for c, v in where.items()):
                row.update(changes)
                count += 1
        return count

    def delete(self, table, **equals):
        rows = self._tables.get(table, [])
        keep = []
        removed = 0
        for row in rows:
            if all(row.get(c) == v for c, v in equals.items()):
                removed += 1
            else:
                keep.append(row)
        self._tables[table] = keep
        return removed

    def delete_where(self, table, predicate):
        """Delete rows matching an arbitrary predicate (cleanup tasks)."""
        rows = self._tables.get(table, [])
        keep = [row for row in rows if not predicate(row)]
        removed = len(rows) - len(keep)
        self._tables[table] = keep
        return removed

    def count(self, table, **equals):
        return len(self.select(table, **equals))

    def drop_all(self):
        """Destroy every table (server suicide)."""
        self._tables = {}
