"""Command-and-control infrastructure (Figs. 4 and 5).

The full platform the paper maps behind Flame: ~80 registered domains
(fake identities, mostly German/Austrian addresses, many registrars)
pointing at 22 server IPs; each server a hardened LAMP box whose Apache
dead-drops data through the ``newsforyou/{ads,news,entries}`` folders;
all of it steered by a single attack center whose admin, operator, and
coordinator roles deliberately partition knowledge (only the coordinator
holds the private key that opens stolen data).
"""

from repro.cnc.domains import DomainPool, DomainRegistration
from repro.cnc.database import MiniDatabase
from repro.cnc.server import CncServer, ADS_FOLDER, ENTRIES_FOLDER, NEWS_FOLDER
from repro.cnc.protocol import CncClient
from repro.cnc.attack_center import AttackCenter

__all__ = [
    "ADS_FOLDER",
    "AttackCenter",
    "CncClient",
    "CncServer",
    "DomainPool",
    "DomainRegistration",
    "ENTRIES_FOLDER",
    "MiniDatabase",
    "NEWS_FOLDER",
]
