"""One Flame-style C&C server (Fig. 5).

A "Debian Linux virtual machine running under OpenVZ ... a database
(MySQL) and an Apache web server" whose web root hides the
``newsforyou`` dead-drop:

* ``ads``     — commands/updates for one specific client;
* ``news``    — commands/updates for every client;
* ``entries`` — stolen data uploaded by clients, sealed to the
  coordinator's public key.

Clients speak two verbs: ``GET_NEWS`` (fetch packages; also receive the
expanded domain list) and ``ADD_ENTRY`` (upload sealed stolen data).
The server never talks to the attack center directly — "data flows in a
military-like approach: one party uploads files on the server and then
the other party will retrieve those files".
"""

import base64
import json

from repro.cnc.database import MiniDatabase
from repro.netsim.http import HttpResponse, HttpServer
from repro.obs.metrics import BYTE_BUCKETS

NEWSFORYOU = "/newsforyou"
ADS_FOLDER = "newsforyou/ads"
NEWS_FOLDER = "newsforyou/news"
ENTRIES_FOLDER = "newsforyou/entries"

#: "stolen files from the infected machines are cleaned up every 30
#: minutes" (after upload to the attack center).
CLEANUP_INTERVAL = 30 * 60.0

#: The four client types Kaspersky found in the C&C code (§III.B).
CLIENT_TYPES = ("CLIENT_TYPE_FL", "CLIENT_TYPE_SP",
                "CLIENT_TYPE_SPE", "CLIENT_TYPE_IP")


def encode_package(package):
    """Serialise a package dict to wire bytes."""
    safe = dict(package)
    payload = safe.pop("payload", b"")
    safe["payload_b64"] = base64.b64encode(payload).decode("ascii")
    return json.dumps(safe).encode("utf-8")


def decode_package(blob):
    """Inverse of :func:`encode_package`."""
    safe = json.loads(blob.decode("utf-8"))
    safe["payload"] = base64.b64decode(safe.pop("payload_b64", ""))
    return safe


class CncServer:
    """One command-and-control node."""

    PLATFORM = "Debian GNU/Linux (OpenVZ container), Apache, MySQL, PHP"

    def __init__(self, kernel, name, coordinator_public_key, extra_domains=()):
        self.kernel = kernel
        self.name = name
        self.coordinator_public_key = coordinator_public_key
        #: Domains handed to clients on first contact (the 5 -> ~10
        #: rotation the paper describes).
        self.extra_domains = list(extra_domains)
        self.db = MiniDatabase()
        for table in ("clients", "packages", "settings", "panel_users"):
            self.db.create_table(table)
        self.db.insert("settings", key="encryption",
                       value=coordinator_public_key.fingerprint())
        #: Server-local unix filesystem (what LogWiper.sh shreds).
        self.files = {
            "/var/log/syslog": b"boot messages...\n",
            "/var/log/auth.log": b"sshd sessions...\n",
            "/root/LogWiper.sh": b"#!/bin/sh\n# stop loggers, shred logs, rm self\n",
        }
        self.logging_enabled = True
        #: Dead-drop folders: path -> bytes.
        self.folders = {ADS_FOLDER: {}, NEWS_FOLDER: {}, ENTRIES_FOLDER: {}}
        self._entry_counter = 0
        self.bytes_received = 0
        self.bytes_served = 0
        self._cleanup_task = None
        self.http = HttpServer("cnc:%s" % name)
        self.http.route(NEWSFORYOU, self._handle_protocol)
        self.http.route("/", lambda request: HttpResponse(200, b"<html>It works!</html>"))
        self.alive = True

    # -- admin-side setup (the automation the paper describes) -------------------

    def admin_setup(self):
        """Run the server-preparation scripts over 'ssh'.

        LogWiper.sh stops the logging daemons, shreds the logs, and
        deletes itself; a scheduled task starts cleaning the entries
        folder every 30 minutes.
        """
        self.logging_enabled = False
        for path in ("/var/log/syslog", "/var/log/auth.log"):
            # shred: overwrite before unlink so nothing is recoverable.
            self.files[path] = b"\x00" * len(self.files[path])
            del self.files[path]
        del self.files["/root/LogWiper.sh"]
        self._cleanup_task = self.kernel.every(
            CLEANUP_INTERVAL, self._cleanup_entries, "cnc-cleanup:%s" % self.name
        )
        self.kernel.trace.record(self.name, "cnc-setup-complete")
        return self

    def _cleanup_entries(self):
        """Delete entry files already retrieved by the attack center."""
        removed = 0
        for entry_id in list(self.folders[ENTRIES_FOLDER]):
            row = self.db.select_one("packages", entry_id=entry_id)
            if row is not None and row.get("retrieved"):
                del self.folders[ENTRIES_FOLDER][entry_id]
                self.db.delete("packages", entry_id=entry_id)
                removed += 1
        if removed:
            self.kernel.metrics.inc("cnc.entries_shredded", removed)
            self.kernel.trace.record(self.name, "cnc-entries-shredded",
                                     count=removed)

    def shutdown(self):
        """Take the server dark (suicide or takedown)."""
        self.alive = False
        if self._cleanup_task is not None:
            self._cleanup_task.stop()
        self.folders = {ADS_FOLDER: {}, NEWS_FOLDER: {}, ENTRIES_FOLDER: {}}
        self.db.drop_all()

    # -- operator-side dead-drop writes ---------------------------------------------

    def put_ad(self, client_id, package):
        """Queue a package for one specific client."""
        folder = self.folders[ADS_FOLDER].setdefault(client_id, {})
        folder[package["name"]] = encode_package(package)

    def put_news(self, package):
        """Queue a package for every client."""
        self.folders[NEWS_FOLDER][package["name"]] = encode_package(package)

    def collect_entries(self):
        """Attack-center side: download sealed entries, mark retrieved.

        The scheduled cleanup removes them from disk afterwards.
        """
        collected = []
        for entry_id, blob in self.folders[ENTRIES_FOLDER].items():
            row = self.db.select_one("packages", entry_id=entry_id)
            if row is None or not row.get("retrieved"):
                collected.append((entry_id, blob))
                self.db.update("packages", {"entry_id": entry_id},
                               {"retrieved": True})
        return collected

    def pending_entry_count(self):
        return len(self.folders[ENTRIES_FOLDER])

    # -- the wire protocol ---------------------------------------------------------

    def _handle_protocol(self, request):
        if not self.alive:
            return HttpResponse.error("connection refused")
        command = request.params.get("command")
        if command == "GET_NEWS":
            return self._handle_get_news(request)
        if command == "ADD_ENTRY":
            return self._handle_add_entry(request)
        return HttpResponse(400, "unknown command")

    def _handle_get_news(self, request):
        # One GET_NEWS answered = one full C&C round-trip completed.
        self.kernel.metrics.inc("cnc.round_trips")
        self.kernel.metrics.inc("cnc.get_news")
        client_id = request.params.get("client_id", "anonymous")
        client_type = request.params.get("client_type", "CLIENT_TYPE_FL")
        if self.db.select_one("clients", client_id=client_id) is None:
            self.db.insert("clients", client_id=client_id,
                           client_type=client_type,
                           first_seen=self.kernel.clock.now)
        packages = []
        personal = self.folders[ADS_FOLDER].get(client_id, {})
        for name in sorted(personal):
            packages.append(personal[name].decode("utf-8"))
        del_names = list(personal)
        for name in del_names:
            del personal[name]
        for name in sorted(self.folders[NEWS_FOLDER]):
            packages.append(self.folders[NEWS_FOLDER][name].decode("utf-8"))
        body = json.dumps(
            {"packages": packages, "domains": self.extra_domains}
        ).encode("utf-8")
        self.bytes_served += len(body)
        return HttpResponse(200, body)

    def _handle_add_entry(self, request):
        self.kernel.metrics.inc("cnc.round_trips")
        self.kernel.metrics.inc("cnc.add_entry")
        self.kernel.metrics.observe("cnc.entry_bytes", len(request.body),
                                    buckets=BYTE_BUCKETS)
        client_id = request.params.get("client_id", "anonymous")
        self._entry_counter += 1
        entry_id = "entry-%06d" % self._entry_counter
        self.folders[ENTRIES_FOLDER][entry_id] = request.body
        self.db.insert("packages", entry_id=entry_id, client_id=client_id,
                       size=len(request.body), retrieved=False,
                       uploaded_at=self.kernel.clock.now)
        self.bytes_received += len(request.body)
        return HttpResponse(200, json.dumps({"stored": entry_id}))

    # -- reporting ----------------------------------------------------------------

    def known_clients(self):
        return self.db.select("clients")

    def client_type_histogram(self):
        histogram = {}
        for row in self.db.select("clients"):
            key = row["client_type"]
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def __repr__(self):
        return "CncServer(%r, clients=%d, pending_entries=%d)" % (
            self.name, self.db.count("clients"), self.pending_entry_count(),
        )
