"""Domain registrations with fake identities.

§III.B: "the infected machines use 80 domains to contact the C&C servers.
These domains are registered with fake identities (with fake addresses
mostly in Germany and Austria) and with a variety of registrars. All used
domains point to a total of 22 C&C server IPs hosted around the world."
"""

_FIRST_NAMES = ("Adam", "Bernd", "Claudia", "Dieter", "Eva", "Franz", "Greta",
                "Hans", "Ivan", "Jutta", "Karl", "Lena")
_LAST_NAMES = ("Horler", "Schmidt", "Muller", "Weber", "Wagner", "Becker",
               "Hoffmann", "Koch", "Bauer", "Richter")
_REGISTRARS = ("GoDaddy", "eNom", "Tucows", "PublicDomainRegistry",
               "Network Solutions", "1&1 Internet")
_WORDS = ("traffic", "spot", "dns", "update", "sync", "flash", "video",
          "quick", "net", "serve", "chan", "bannerzone", "smart", "localize")


class DomainRegistration:
    """One registered domain and its (fabricated) WHOIS identity."""

    __slots__ = ("name", "registrant", "address_country", "registrar", "server_ip")

    def __init__(self, name, registrant, address_country, registrar, server_ip):
        self.name = name
        self.registrant = registrant
        self.address_country = address_country
        self.registrar = registrar
        self.server_ip = server_ip

    def __repr__(self):
        return "DomainRegistration(%r -> %s, %s via %s)" % (
            self.name, self.server_ip, self.address_country, self.registrar,
        )


class DomainPool:
    """The attacker's stock of registered domains over a set of servers."""

    def __init__(self, rng):
        self._rng = rng
        self.registrations = []

    def register_many(self, count, server_ips, germany_austria_bias=0.8):
        """Register ``count`` domains spread across ``server_ips``.

        Fake registrant addresses land in Germany/Austria with the given
        bias, mirroring the WHOIS geography Kaspersky reported.
        """
        created = []
        for index in range(count):
            word_a = self._rng.choice(list(_WORDS))
            word_b = self._rng.choice(list(_WORDS))
            name = "%s%s%d.com" % (word_a, word_b, index)
            registrant = "%s %s" % (
                self._rng.choice(list(_FIRST_NAMES)),
                self._rng.choice(list(_LAST_NAMES)),
            )
            if self._rng.chance(germany_austria_bias):
                country = self._rng.choice(["DE", "AT"])
            else:
                country = self._rng.choice(["NL", "CH", "TR", "UK"])
            registration = DomainRegistration(
                name=name,
                registrant=registrant,
                address_country=country,
                registrar=self._rng.choice(list(_REGISTRARS)),
                server_ip=server_ips[index % len(server_ips)],
            )
            self.registrations.append(registration)
            created.append(registration)
        return created

    def domains(self):
        return [r.name for r in self.registrations]

    def domains_for_server(self, server_ip):
        return [r.name for r in self.registrations if r.server_ip == server_ip]

    def server_ips(self):
        return sorted({r.server_ip for r in self.registrations})

    def country_histogram(self):
        histogram = {}
        for registration in self.registrations:
            histogram[registration.address_country] = (
                histogram.get(registration.address_country, 0) + 1
            )
        return histogram

    def registrar_count(self):
        return len({r.registrar for r in self.registrations})

    def __len__(self):
        return len(self.registrations)
