"""Windows Update: the genuine service and the client-side check.

The Flame MUNCH/GADGET hijack (Fig. 2) rides this flow: a victim whose
traffic is proxied through an infected machine asks Windows Update for
binaries; the proxy substitutes a fake update.  The client-side routine
here enforces the rule the paper states — "Windows OS computers launch
Windows update binaries without any restrictions provided that the
update is genuine, that is, signed by a Microsoft certificate."
"""

from repro.netsim.http import HttpResponse, HttpServer
from repro.pe import PeBuilder, PeFormatError, parse_pe
from repro.certs.codesign import sign_image
from repro.winsim.processes import IntegrityLevel

WINDOWS_UPDATE_DOMAIN = "update.windows.com"
UPDATE_PATH = "/v6/selfupdate"


class WindowsUpdateService:
    """Microsoft's genuine update infrastructure on the simulated internet."""

    def __init__(self, pki_world, internet):
        self._pki = pki_world
        self.server = HttpServer("windows-update")
        self.server.route(UPDATE_PATH, self._serve_update)
        self.update_payload = None  # genuine updates carry no behaviour
        self._image = self._build_genuine_update()
        internet.register_site(WINDOWS_UPDATE_DOMAIN, self.server)
        # The connectivity-probe aliases Stuxnet checks also resolve here.
        internet.register_site("www.windowsupdate.com", self.server)

    def _build_genuine_update(self):
        builder = PeBuilder()
        builder.add_code_section(b"genuine windows update payload")
        return sign_image(
            builder,
            self._pki.update_signer_key,
            self._pki.update_signing_chain(),
        )

    @property
    def genuine_image(self):
        return self._image

    def _serve_update(self, request):
        return HttpResponse(200, self._image,
                            headers={"content-type": "application/x-msdownload"})


def run_windows_update(host, lan, update_registry=None):
    """One client update check, with full signature validation.

    Fetches the update binary over the host's (possibly hijacked) HTTP
    path, parses it, verifies the code signature against the host's
    trust store, and — only if genuine — executes it.  Returns a dict
    describing what happened; ``installed`` is True when a binary ran.

    ``update_registry`` maps image bytes to payload callables: the
    simulation's stand-in for "what this binary does when executed" (the
    genuine update does nothing; Flame's fake update installs Flame).
    """
    outcome = {"installed": False, "verified": False, "signer": None, "reason": None}
    if not host.config.auto_update_enabled:
        outcome["reason"] = "automatic updates disabled"
        return outcome
    try:
        response = lan.http_get(host, "http://%s%s" % (WINDOWS_UPDATE_DOMAIN, UPDATE_PATH))
    except Exception as exc:  # air-gapped or NXDOMAIN
        outcome["reason"] = "unreachable: %s" % exc
        return outcome
    if not response.ok:
        outcome["reason"] = "http %d" % response.status
        return outcome
    image = response.body
    try:
        pe = parse_pe(image)
    except PeFormatError as exc:
        outcome["reason"] = "unparseable update: %s" % exc
        return outcome
    result = host.trust_store.verify_code_signature(image, pe, at_time=host.now())
    if not result:
        host.event_log.warning(
            "windows-update", "update rejected: %s" % result.reason
        )
        outcome["reason"] = result.reason
        return outcome
    outcome["verified"] = True
    outcome["signer"] = result.signer
    host.trace("windows-update-install", detail_signer=result.signer)
    payload = None
    if update_registry is not None:
        payload = update_registry.get(image)
    process = host.processes.spawn("wuauclt.exe", IntegrityLevel.SYSTEM)
    if payload is not None:
        payload(host, process)
    outcome["installed"] = True
    return outcome


class UpdateRegistry:
    """Maps served update images to the behaviour they carry.

    Keyed by image bytes (hashable); lets the MITM experiment attach an
    install-Flame payload to the forged binary while the genuine binary
    stays inert.
    """

    def __init__(self):
        self._payloads = {}

    def register(self, image_bytes, payload):
        self._payloads[bytes(image_bytes)] = payload

    def get(self, image_bytes):
        return self._payloads.get(bytes(image_bytes))
