"""Web Proxy Auto-Discovery plumbing.

The paper (Fig. 2): "When Internet Explorer is launched ... it broadcasts
a packet through the Web Proxy Auto-Discovery Protocol (WPAD) asking for
the proxy settings (wpad.dat)" and, when enterprise DNS has no ``wpad``
record, falls back to NetBIOS broadcast — the hole Flame's SNACK module
answers through.
"""


class WpadConfig:
    """Contents of a (possibly malicious) ``wpad.dat``."""

    __slots__ = ("proxy_hostname", "served_by")

    def __init__(self, proxy_hostname, served_by):
        #: Hostname the browser should proxy all traffic through.
        self.proxy_hostname = proxy_hostname
        #: Who answered the WPAD request (forensics cares).
        self.served_by = served_by

    def __repr__(self):
        return "WpadConfig(proxy=%r, served_by=%r)" % (
            self.proxy_hostname, self.served_by,
        )


def discover_proxy(lan, client_host):
    """Run the IE proxy-discovery dance for ``client_host``.

    1. Ask the LAN's local DNS for ``wpad`` — enterprise networks in the
       paper's scenarios typically have no such record.
    2. Fall back to a NetBIOS broadcast; the first host claiming the
       ``wpad`` name serves the configuration.

    Returns a :class:`WpadConfig` or None.
    """
    address = lan.local_dns.resolve("wpad", client=client_host.hostname)
    if address is not None:
        server = lan.host_by_ip(address)
        if server is not None and "wpad" in server.netbios_claims:
            return server.netbios_claims["wpad"](client_host)
        return WpadConfig(proxy_hostname=address, served_by="dns")
    responder, value = lan.netbios_broadcast(client_host, "wpad")
    if responder is None:
        return None
    return value
