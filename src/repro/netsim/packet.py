"""Packet records and capture buffers."""


class Packet:
    """One captured exchange on a network segment."""

    __slots__ = ("time", "src", "dst", "protocol", "summary", "size")

    def __init__(self, time, src, dst, protocol, summary, size=0):
        self.time = time
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.summary = summary
        self.size = size

    def __repr__(self):
        return "[t=%8.1f] %s %s -> %s: %s" % (
            self.time, self.protocol, self.src, self.dst, self.summary,
        )


class PacketCapture:
    """Append-only capture with protocol filtering.

    This is both the IDS tap and the raw material for regenerating the
    data-flow figures.
    """

    def __init__(self, clock):
        self._clock = clock
        self._packets = []

    def record(self, src, dst, protocol, summary, size=0):
        packet = Packet(self._clock.now, src, dst, protocol, summary, size)
        self._packets.append(packet)
        return packet

    def __len__(self):
        return len(self._packets)

    def __iter__(self):
        return iter(self._packets)

    def by_protocol(self, protocol):
        return [p for p in self._packets if p.protocol == protocol]

    def between(self, src=None, dst=None):
        return [
            p for p in self._packets
            if (src is None or p.src == src) and (dst is None or p.dst == dst)
        ]

    def total_bytes(self, protocol=None):
        return sum(
            p.size for p in self._packets
            if protocol is None or p.protocol == protocol
        )
