"""Simulated network: LANs, the internet, and campaign-relevant protocols.

The protocols modelled here are exactly the ones the paper's attack
narratives need: DNS and NetBIOS/WPAD name resolution (Flame's SNACK
man-in-the-middle, Fig. 2), HTTP (C&C traffic, Shamoon's reporter), SMB
shares and a psexec-style remote execute (Shamoon's LAN spread), the
print-spooler protocol (Stuxnet's MS10-061 vector), and Windows Update
(Flame's MUNCH/GADGET hijack).

Delivery is synchronous within a call but every exchange is recorded as
a :class:`Packet` in the owning network's capture, which is what the
intrusion-detection and figure-regeneration tooling read.
"""

from repro.netsim.packet import Packet, PacketCapture
from repro.netsim.http import HttpRequest, HttpResponse, HttpServer
from repro.netsim.dns import DnsServer
from repro.netsim.network import Internet, Lan, NetworkError, NoRouteError
from repro.netsim.wpad import WpadConfig
from repro.netsim.smb import SmbError, smb_accessible, smb_copy_and_execute, smb_list_shares
from repro.netsim.spooler import send_crafted_print_request
from repro.netsim.windowsupdate import (
    WINDOWS_UPDATE_DOMAIN,
    WindowsUpdateService,
    run_windows_update,
)

__all__ = [
    "DnsServer",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "Internet",
    "Lan",
    "NetworkError",
    "NoRouteError",
    "Packet",
    "PacketCapture",
    "SmbError",
    "WINDOWS_UPDATE_DOMAIN",
    "WindowsUpdateService",
    "WpadConfig",
    "run_windows_update",
    "send_crafted_print_request",
    "smb_accessible",
    "smb_copy_and_execute",
    "smb_list_shares",
]
