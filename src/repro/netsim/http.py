"""Minimal HTTP model: requests, responses, and routed servers."""


class HttpRequest:
    """One HTTP request as the simulation sees it."""

    __slots__ = ("method", "url", "path", "params", "body", "client", "headers")

    def __init__(self, method, url, client=None, params=None, body=b"", headers=None):
        self.method = method.upper()
        self.url = url
        self.path = url_path(url)
        self.params = dict(params or {})
        self.body = bytes(body)
        #: Hostname/ip of the requesting machine (what a server logs).
        self.client = client
        self.headers = dict(headers or {})

    @property
    def size(self):
        return len(self.body) + len(self.url) + sum(
            len(k) + len(str(v)) for k, v in self.params.items()
        )

    def __repr__(self):
        return "HttpRequest(%s %s)" % (self.method, self.url)


class HttpResponse:
    """One HTTP response."""

    __slots__ = ("status", "body", "headers")

    def __init__(self, status=200, body=b"", headers=None):
        self.status = status
        self.body = body if isinstance(body, bytes) else str(body).encode("utf-8")
        self.headers = dict(headers or {})

    @property
    def ok(self):
        return 200 <= self.status < 300

    @property
    def size(self):
        return len(self.body)

    @classmethod
    def not_found(cls, message="not found"):
        return cls(404, message)

    @classmethod
    def error(cls, message="server error"):
        return cls(500, message)

    def __repr__(self):
        return "HttpResponse(%d, %d bytes)" % (self.status, len(self.body))


def url_host(url):
    """Hostname part of an ``http://host/path`` URL."""
    stripped = url.split("://", 1)[-1]
    return stripped.split("/", 1)[0]


def url_path(url):
    """Path part of a URL ('/' when absent)."""
    stripped = url.split("://", 1)[-1]
    if "/" not in stripped:
        return "/"
    return "/" + stripped.split("/", 1)[1]


class HttpServer:
    """A routed HTTP server attached to a domain or a LAN host.

    Routes are exact paths mapped to ``handler(request) -> HttpResponse``
    (or a prefix when registered with ``prefix=True``).  The access log
    records every request — C&C hosting providers "are not aware of the
    activity of the servers" precisely because these logs look ordinary.
    """

    def __init__(self, name):
        self.name = name
        self._routes = {}
        self._prefix_routes = []
        self.access_log = []

    def route(self, path, handler, prefix=False):
        if prefix:
            self._prefix_routes.append((path, handler))
        else:
            self._routes[path] = handler
        return self

    def handle(self, request):
        self.access_log.append(request)
        handler = self._routes.get(request.path)
        if handler is None:
            for prefix, candidate in self._prefix_routes:
                if request.path.startswith(prefix):
                    handler = candidate
                    break
        if handler is None:
            return HttpResponse.not_found("no route for %s" % request.path)
        return handler(request)

    def requests_seen(self):
        return len(self.access_log)
