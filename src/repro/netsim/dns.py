"""DNS for the simulated internet.

Besides plain name → address records, the server supports *sinkholing* —
the takedown countermeasure researchers actually applied to Flame's C&C
domains — which the domain-rotation ablation measures.
"""


class DnsServer:
    """Flat authoritative DNS with sinkhole support.

    ``faults`` is an optional :class:`repro.sim.faults.FaultInjector`;
    when set, scheduled DNS fault windows (blackouts, takedowns,
    sinkholing campaigns) override the static record table, so injected
    failures are indistinguishable from real ones to clients.
    """

    def __init__(self, faults=None):
        self._records = {}
        self._sinkholed = {}
        self.query_log = []
        self.faults = faults

    @staticmethod
    def _canonical(name):
        return name.strip().lower().rstrip(".")

    def register(self, name, address):
        """Create/replace an A record."""
        self._records[self._canonical(name)] = address

    def unregister(self, name):
        return self._records.pop(self._canonical(name), None) is not None

    def sinkhole(self, name, sinkhole_address="sinkhole.research.net"):
        """Point an existing name at a research sinkhole.

        Returns True if the name existed.  Resolutions keep succeeding —
        but to the sinkhole, so infected clients reveal themselves
        instead of reaching their C&C.
        """
        canonical = self._canonical(name)
        if canonical not in self._records:
            return False
        self._sinkholed[canonical] = sinkhole_address
        return True

    def is_sinkholed(self, name):
        return self._canonical(name) in self._sinkholed

    def resolve(self, name, client=None):
        """Resolve a name; returns the address or None (NXDOMAIN)."""
        canonical = self._canonical(name)
        self.query_log.append((canonical, client))
        if self.faults is not None:
            disposition = self.faults.dns_disposition(canonical)
            if disposition is not None:
                action, value = disposition
                return value if action == "sinkhole" else None
        if canonical in self._sinkholed:
            return self._sinkholed[canonical]
        return self._records.get(canonical)

    def registered_names(self):
        return sorted(self._records)

    def queries_for(self, name):
        canonical = self._canonical(name)
        return [q for q in self.query_log if q[0] == canonical]
