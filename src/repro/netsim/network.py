"""LAN segments and the simulated internet."""

from repro.netsim.dns import DnsServer
from repro.netsim.http import HttpRequest, url_host
from repro.netsim.packet import PacketCapture
from repro.netsim.wpad import discover_proxy
from repro.sim.faults import GLOBAL_SCOPE, REQUEST_TIMEOUT, lan_scope
from repro.winsim.interface import SimHost


class NetworkError(Exception):
    """Base error for network operations."""


class NoRouteError(NetworkError):
    """Raised when a destination is unreachable (e.g. air-gapped LAN)."""


class Internet:
    """The global network: DNS plus sites addressable by domain.

    C&C servers, Windows Update, and connectivity-probe sites all live
    here.  Every request is captured, which is how the Fig. 4 benchmark
    counts domain → server traffic.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.faults = getattr(kernel, "faults", None)
        self.dns = DnsServer(faults=self.faults)
        self.capture = PacketCapture(kernel.clock)
        self._sites = {}
        self._next_ip = [1]

    def allocate_ip(self):
        value = self._next_ip[0]
        self._next_ip[0] += 1
        return "203.0.%d.%d" % (value // 250, value % 250 + 1)

    def register_site(self, domain, server, address=None):
        """Host a site: DNS record + server registration.

        Several domains may point at one address (Flame's 80 domains map
        to 22 server IPs); pass the same ``address`` to alias them.
        """
        if address is None:
            address = self.allocate_ip()
        self._sites[address] = server
        self.dns.register(domain, address)
        return address

    def site_at(self, address):
        return self._sites.get(address)

    def site_count(self):
        return len(self._sites)

    def http(self, client_label, method, url, params=None, body=b""):
        """Resolve and dispatch an HTTP request from ``client_label``."""
        metrics = self.kernel.metrics
        metrics.inc("net.http_requests")
        domain = url_host(url)
        address = self.dns.resolve(domain, client=client_label)
        if address is None:
            metrics.inc("net.dns_nxdomain")
            metrics.inc("net.http_failures")
            raise NoRouteError("NXDOMAIN: %r" % domain)
        server = self._sites.get(address)
        if server is None:
            metrics.inc("net.http_failures")
            raise NoRouteError("no server at %s (domain %r)" % (address, domain))
        request = HttpRequest(method, url, client=client_label,
                              params=params, body=body)
        self.capture.record(client_label, domain, "http",
                            "%s %s" % (method, request.path), size=request.size)
        metrics.inc("net.bytes_sent", request.size)
        if self.faults is not None:
            # The request went out (captured above) but never completes:
            # injected faults surface as the ordinary error taxonomy.
            if self.faults.site_down(address):
                metrics.inc("net.http_failures")
                raise NoRouteError(
                    "connection refused: server at %s is down (domain %r)"
                    % (address, domain))
            if self.faults.should_drop(GLOBAL_SCOPE, domain):
                metrics.inc("net.http_failures")
                raise NetworkError(
                    "packet loss: request from %r to %r dropped"
                    % (client_label, domain))
            delay = self.faults.extra_latency(GLOBAL_SCOPE, domain)
            if delay >= REQUEST_TIMEOUT:
                self.faults.note_timeout(domain)
                metrics.inc("net.http_failures")
                raise NetworkError(
                    "request to %r timed out (%.0fs injected latency)"
                    % (domain, delay))
        response = server.handle(request)
        self.capture.record(domain, client_label, "http",
                            "response %d" % response.status, size=response.size)
        metrics.inc("net.http_responses")
        metrics.inc("net.bytes_received", response.size)
        return response

    def reachable(self, domain, client_label="probe"):
        """Can ``domain`` be resolved and contacted at all?"""
        address = self.dns.resolve(domain, client=client_label)
        if address is None or address not in self._sites:
            return False
        if self.faults is not None and self.faults.site_down(address):
            return False
        return True


class Lan:
    """One broadcast domain of Windows hosts.

    ``internet=None`` models the protected/air-gapped networks the paper
    repeatedly returns to (Natanz, the confidential sub-networks Flame
    steals from over USB).
    """

    def __init__(self, kernel, name, internet=None, domain_name="corp.local"):
        self.kernel = kernel
        self.name = name
        self.internet = internet
        self.domain_name = domain_name
        self.local_dns = DnsServer(faults=getattr(kernel, "faults", None))
        self.capture = PacketCapture(kernel.clock)
        self._hosts_by_ip = {}
        self._hosts_by_name = {}
        self._next_ip = 10
        #: The Windows-domain administrator credential; hosts that join
        #: the domain accept it for remote execution.
        self.domain_admin_credential = "domain-admin:%s" % domain_name

    # -- membership -----------------------------------------------------------

    def attach(self, host, ip=None, join_domain=True):
        """Connect a host; assigns an address and (optionally) domain trust.

        ``host`` must implement the :class:`~repro.winsim.SimHost`
        interface — attaching anything else used to fail much later
        with an ``AttributeError`` deep inside NetBIOS or SMB; now it
        is rejected here with a typed error.
        """
        if not isinstance(host, SimHost):
            raise NetworkError(
                "cannot attach %r to LAN %r: hosts must implement the "
                "SimHost interface (repro.winsim.SimHost)"
                % (type(host).__name__, self.name))
        hostname = host.hostname.lower()
        if hostname in self._hosts_by_name:
            raise NetworkError(
                "hostname already on LAN %r: %s" % (self.name, hostname))
        if ip is None:
            ip = "10.0.0.%d" % self._next_ip
            self._next_ip += 1
        if ip in self._hosts_by_ip:
            raise NetworkError("address already in use: %s" % ip)
        host.nic = (self, ip)
        self._hosts_by_ip[ip] = host
        self._hosts_by_name[hostname] = host
        if join_domain:
            host.accepted_credentials.add(self.domain_admin_credential)
        return ip

    def detach(self, host):
        if host.nic is None or host.nic[0] is not self:
            return False
        _, ip = host.nic
        del self._hosts_by_ip[ip]
        del self._hosts_by_name[host.hostname.lower()]
        host.nic = None
        return True

    def hosts(self):
        """Attached hosts in address order (deterministic)."""
        return [self._hosts_by_ip[ip] for ip in sorted(self._hosts_by_ip)]

    def host_by_ip(self, ip):
        return self._hosts_by_ip.get(ip)

    def host_by_name(self, hostname):
        return self._hosts_by_name.get(hostname.lower())

    def ip_of(self, host):
        if host.nic is None or host.nic[0] is not self:
            raise NetworkError("host %r is not on LAN %r" % (host.hostname, self.name))
        return host.nic[1]

    @property
    def air_gapped(self):
        return self.internet is None

    # -- NetBIOS --------------------------------------------------------------

    def netbios_broadcast(self, client_host, name):
        """Broadcast a NetBIOS name query; first claimant answers.

        Returns ``(responder_host, value)`` or ``(None, None)``.
        """
        self.capture.record(client_host.hostname, "broadcast", "netbios",
                            "name query %r" % name)
        for host in self.hosts():
            if host is client_host:
                continue
            claim = host.netbios_claims.get(name)
            if claim is not None:
                value = claim(client_host)
                self.capture.record(host.hostname, client_host.hostname,
                                    "netbios", "claim %r" % name)
                return host, value
        return None, None

    # -- HTTP (browser-shaped, honours WPAD proxies) ----------------------------

    def browser_start(self, client_host):
        """Model launching IE: run proxy discovery and cache the result."""
        client_host.proxy_config = discover_proxy(self, client_host)
        return client_host.proxy_config

    def http(self, client_host, method, url, params=None, body=b"",
             use_cached_proxy=True):
        """HTTP from a host on this LAN, via its proxy when one is set."""
        request = HttpRequest(method, url, client=client_host.hostname,
                              params=params, body=body)
        proxy = client_host.proxy_config if use_cached_proxy else None
        if proxy is not None:
            proxy_host = self.host_by_name(proxy.proxy_hostname)
            if proxy_host is not None and proxy_host.proxy_service is not None:
                self.capture.record(client_host.hostname, proxy_host.hostname,
                                    "http-proxied", "%s %s" % (method, url),
                                    size=request.size)
                response = proxy_host.proxy_service.handle(request)
                if response is not None:
                    return response
                # Proxy passed the request through untouched.
                return self._direct(request)
        return self._direct(request)

    def _direct(self, request):
        if self.internet is None:
            raise NoRouteError(
                "LAN %r is air-gapped; cannot reach %r" % (self.name, request.url)
            )
        self.kernel.metrics.inc("net.lan_uplink_requests")
        faults = getattr(self.kernel, "faults", None)
        if faults is not None:
            scope = lan_scope(self.name)
            if faults.site_down(scope):
                raise NoRouteError(
                    "LAN %r uplink is down; cannot reach %r"
                    % (self.name, request.url))
            if faults.should_drop(scope):
                raise NetworkError(
                    "packet loss on LAN %r uplink: %r dropped"
                    % (self.name, request.url))
            delay = faults.extra_latency(scope)
            if delay >= REQUEST_TIMEOUT:
                faults.note_timeout(scope)
                raise NetworkError(
                    "request via LAN %r uplink timed out (%.0fs injected "
                    "latency)" % (self.name, delay))
        return self.internet.http(request.client, request.method, request.url,
                                  params=request.params, body=request.body)

    def http_get(self, client_host, url, params=None, **kwargs):
        return self.http(client_host, "GET", url, params=params, **kwargs)

    def has_internet_access(self, client_host, probe_domains=None):
        """The Stuxnet connectivity probe: can well-known sites be reached?

        Stuxnet "checks whether an internet connection is available by
        trying to open www.windowsupdate.com and www.msn.com" (§II.A).
        """
        if self.internet is None:
            return False
        domains = probe_domains or ("www.windowsupdate.com", "www.msn.com")
        for domain in domains:
            self.capture.record(client_host.hostname, domain, "http",
                                "connectivity probe")
            if self.internet.reachable(domain, client_label=client_host.hostname):
                return True
        return False
