"""SMB shares and psexec-style remote execution.

Shamoon's LAN spread (§IV.A): "Tries to infect other systems in the same
LAN by attempting to copy itself in windows shared folders of targets
... the malware will attempt to remotely open and close a list of files
to determine if it has access. If it has access it will copy and execute
itself using psexec.exe."
"""

from repro.winsim.processes import IntegrityLevel
from repro.winsim.vfs import FileNotFound


class SmbError(Exception):
    """Raised on SMB access failures."""


def _check_access(lan, src_host, dst_host, credential):
    if dst_host.nic is None or dst_host.nic[0] is not lan:
        raise SmbError("target %r not on LAN %r" % (dst_host.hostname, lan.name))
    # Capability probe, not a config read: reduced-fidelity hosts have
    # no HostConfig and answer False here instead of crashing.
    if not dst_host.smb_sharing_enabled():
        return False
    if credential not in dst_host.accepted_credentials:
        return False
    return True


def _require_filesystem(dst_host):
    """SMB file operations need a target with filesystem fidelity."""
    if dst_host.vfs is None:
        raise SmbError(
            "target %r has no filesystem fidelity; promote it to a full "
            "WindowsHost before SMB file operations" % dst_host.hostname)
    return dst_host.vfs


def smb_accessible(lan, src_host, dst_host, credential,
                   probe_paths=("c:\\windows\\system32\\kernel32.dll",)):
    """The open/close access probe Shamoon runs before spreading.

    Remotely opens and closes files on the target; True when the share
    accepts the credential and the files are reachable.
    """
    lan.capture.record(src_host.hostname, dst_host.hostname, "smb",
                       "access probe (open/close %d files)" % len(probe_paths))
    if not _check_access(lan, src_host, dst_host, credential):
        return False
    if dst_host.vfs is None:
        return False
    for path in probe_paths:
        if not dst_host.vfs.exists(path):
            return False
    return True


def smb_list_shares(lan, src_host, dst_host, credential):
    """Enumerate share names on the target."""
    lan.capture.record(src_host.hostname, dst_host.hostname, "smb", "list shares")
    if not _check_access(lan, src_host, dst_host, credential):
        raise SmbError("access denied to %r" % dst_host.hostname)
    return sorted(dst_host.shares)


def smb_copy_file(lan, src_host, dst_host, credential, data, remote_path,
                  payload=None, origin=None):
    """Copy bytes (and behavioural payload) to a path on the target."""
    lan.capture.record(src_host.hostname, dst_host.hostname, "smb",
                       "copy to %s" % remote_path, size=len(data))
    if not _check_access(lan, src_host, dst_host, credential):
        raise SmbError("access denied to %r" % dst_host.hostname)
    vfs = _require_filesystem(dst_host)
    return vfs.write(remote_path, data, payload=payload, origin=origin)


def smb_read_file(lan, src_host, dst_host, credential, remote_path):
    """Read a remote file over the share."""
    lan.capture.record(src_host.hostname, dst_host.hostname, "smb",
                       "read %s" % remote_path)
    if not _check_access(lan, src_host, dst_host, credential):
        raise SmbError("access denied to %r" % dst_host.hostname)
    vfs = _require_filesystem(dst_host)
    try:
        return vfs.read(remote_path)
    except FileNotFound:
        raise SmbError("remote file missing: %s" % remote_path)


def smb_copy_and_execute(lan, src_host, dst_host, credential, data, remote_path,
                         payload=None, origin=None,
                         integrity=IntegrityLevel.ADMIN):
    """The psexec pattern: copy an executable to the target and run it.

    Returns the remote process.  psexec runs the service-side binary
    with administrative rights, hence the default integrity.
    """
    smb_copy_file(lan, src_host, dst_host, credential, data, remote_path,
                  payload=payload, origin=origin)
    lan.capture.record(src_host.hostname, dst_host.hostname, "smb",
                       "psexec %s" % remote_path)
    return dst_host.execute_file(remote_path, integrity=integrity, raw=True)
