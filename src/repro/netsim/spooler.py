"""The print-spooler remote-code-execution vector (MS10-061).

From §II.A: Stuxnet "proceeds by sending a specially crafted print
request of two documents. Due to a flaw in the print spooler, the
documents can be printed to files in the Windows %system% directory.
Then, under certain conditions, the first file (sysnullevnt.mof) will be
used to register providers and events and also to launch the second file
(dropper: winsta.exe) whose execution results in the infection of the
system."
"""

from repro.winsim.patches import MS10_061_SPOOLER
from repro.winsim.processes import IntegrityLevel

#: Delay before the MOF event-consumer machinery launches the dropped
#: binary ("under certain conditions" — WMI evaluates consumers lazily).
MOF_TRIGGER_DELAY = 30.0


def send_crafted_print_request(lan, src_host, dst_host, documents):
    """Fire the MS10-061 exploit at ``dst_host``.

    ``documents`` is a sequence of ``(filename, data, payload)`` tuples —
    for the Stuxnet vector, exactly two: ``sysnullevnt.mof`` and the
    dropper ``winsta.exe``.  Returns True when the target accepted the
    crafted request (files landed in %system%); the dropped binary then
    executes after :data:`MOF_TRIGGER_DELAY` seconds of virtual time.
    """
    lan.capture.record(src_host.hostname, dst_host.hostname, "spooler",
                       "crafted print request (%d documents)" % len(documents))
    if not dst_host.config.file_and_print_sharing:
        return False
    if not dst_host.patches.is_vulnerable(MS10_061_SPOOLER):
        dst_host.event_log.info(
            "print-spooler", "malformed print request rejected (MS10-061 applied)"
        )
        return False

    dropped = []
    for filename, data, payload in documents:
        path = dst_host.system_dir + "\\" + filename
        dst_host.vfs.write(path, data, payload=payload,
                           origin="spooler-exploit:%s" % src_host.hostname)
        dropped.append(path)
    dst_host.trace("spooler-files-dropped", detail_files=list(dropped))

    mof_paths = [p for p in dropped if p.endswith(".mof")]
    binary_paths = [p for p in dropped if not p.endswith(".mof")]
    if mof_paths and binary_paths:
        target = binary_paths[0]

        def fire():
            if dst_host.vfs.exists(target, raw=True):
                dst_host.trace("mof-launched-dropper", target=target)
                dst_host.execute_file(target, integrity=IntegrityLevel.SYSTEM,
                                      raw=True)

        dst_host.kernel.call_later(
            MOF_TRIGGER_DELAY, fire,
            "mof-trigger:%s" % dst_host.hostname,
        )
    return True
