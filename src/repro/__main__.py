"""Command-line interface: run the paper's campaigns from a shell.

Usage::

    python -m repro stuxnet  [--seed N] [--days D] [--centrifuges C]
    python -m repro flame    [--seed N] [--victims V] [--weeks W] [--suicide]
    python -m repro shamoon  [--seed N] [--hosts H]
    python -m repro sweep    --campaign NAME [--replicas N] [--workers W]
                             [--seed N] [--serial] [--fault-profile P] [--full]

Each subcommand prints the campaign's headline measurements (``sweep``
prints ensemble statistics over N seeded replicas instead); exit code 0
means the simulation completed.
"""

import argparse
import json
import sys

from repro import (
    CampaignSpec,
    FlameEspionageCampaign,
    ShamoonWiperCampaign,
    StuxnetNatanzCampaign,
    SweepConfig,
    ensemble_table,
    run_sweep,
)
from repro.core.ensemble import CAMPAIGNS, FAULT_PROFILES


def _print_result(result, as_json):
    if as_json:
        print(json.dumps(result, indent=2, default=str))
        return
    width = max(len(key) for key in result)
    for key in sorted(result):
        print("  %-*s  %s" % (width, key, result[key]))


def _cmd_stuxnet(args):
    campaign = StuxnetNatanzCampaign(seed=args.seed,
                                     centrifuge_count=args.centrifuges,
                                     duration_days=args.days)
    result = campaign.run()
    print("Stuxnet / Natanz (%d days):" % args.days)
    _print_result(result, args.json)


def _cmd_flame(args):
    campaign = FlameEspionageCampaign(seed=args.seed,
                                      victim_count=args.victims,
                                      duration_weeks=args.weeks)
    result = campaign.run(suicide_at_end=args.suicide)
    print("Flame espionage (%d victims, %d weeks):"
          % (args.victims, args.weeks))
    _print_result(result, args.json)


def _cmd_shamoon(args):
    campaign = ShamoonWiperCampaign(seed=args.seed, host_count=args.hosts)
    result = campaign.run()
    print("Shamoon wiper (%d hosts):" % args.hosts)
    _print_result(result, args.json)


def _cmd_sweep(args):
    if args.full:
        spec = CampaignSpec(args.campaign, fault_profile=args.fault_profile)
    else:
        spec = CampaignSpec.quick(args.campaign,
                                  fault_profile=args.fault_profile)
    config = SweepConfig(replicas=args.replicas, workers=args.workers,
                         chunk_size=args.chunk_size, base_seed=args.seed,
                         mode="serial" if args.serial else "auto")
    result = run_sweep(spec, config)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, default=str))
        return
    profile = (" + %s faults" % spec.fault_profile
               if spec.fault_profile else "")
    print("Monte-Carlo sweep: %s%s, %d replicas (%s, %d worker%s, "
          "chunk %d) in %.2fs"
          % (args.campaign, profile, len(result.replicas), result.mode,
             result.workers, "" if result.workers == 1 else "s",
             result.chunk_size, result.wall_seconds))
    print("distinct trace digests: %d / %d"
          % (len(set(result.digests())), len(result.replicas)))
    print(ensemble_table(
        "per-measurement statistics over %d replicas (base seed %r)"
        % (len(result.replicas), result.base_seed),
        result.aggregate()))


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the simulated campaigns from "
                    "'Dissecting Cyber Weapons' (ICDCS 2013).",
    )
    parser.add_argument("--json", action="store_true",
                        help="print results as JSON")
    sub = parser.add_subparsers(dest="command", required=True)

    stuxnet = sub.add_parser("stuxnet", help="the Natanz campaign (SII)")
    stuxnet.add_argument("--seed", type=int, default=2010)
    stuxnet.add_argument("--days", type=int, default=180)
    stuxnet.add_argument("--centrifuges", type=int, default=984)
    stuxnet.set_defaults(func=_cmd_stuxnet)

    flame = sub.add_parser("flame", help="the espionage campaign (SIII)")
    flame.add_argument("--seed", type=int, default=2012)
    flame.add_argument("--victims", type=int, default=10)
    flame.add_argument("--weeks", type=int, default=2)
    flame.add_argument("--suicide", action="store_true",
                       help="broadcast SUICIDE at the end")
    flame.set_defaults(func=_cmd_flame)

    shamoon = sub.add_parser("shamoon", help="the wiper campaign (SIV)")
    shamoon.add_argument("--seed", type=int, default=2012)
    shamoon.add_argument("--hosts", type=int, default=1000)
    shamoon.set_defaults(func=_cmd_shamoon)

    sweep = sub.add_parser(
        "sweep", help="Monte-Carlo ensemble of seeded campaign replicas")
    sweep.add_argument("--campaign", required=True,
                       choices=sorted(CAMPAIGNS))
    sweep.add_argument("--replicas", type=int, default=16)
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: CPU count)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="base seed each replica's seed is forked from")
    sweep.add_argument("--chunk-size", type=int, default=None,
                       help="replicas per dispatched work unit")
    sweep.add_argument("--serial", action="store_true",
                       help="force the bit-identical serial fallback path")
    sweep.add_argument("--fault-profile", default=None,
                       choices=sorted(FAULT_PROFILES),
                       help="apply a named fault-injection profile")
    sweep.add_argument("--full", action="store_true",
                       help="paper-scale campaign parameters instead of "
                            "the quick ensemble preset")
    # Also accepted after the subcommand (the global flag must precede it).
    sweep.add_argument("--json", action="store_true",
                       help="print the full sweep result as JSON")
    sweep.set_defaults(func=_cmd_sweep)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
