"""Command-line interface: run the paper's campaigns from a shell.

Usage::

    python -m repro stuxnet  [--seed N] [--days D] [--centrifuges C]
    python -m repro flame    [--seed N] [--victims V] [--weeks W] [--suicide]
    python -m repro shamoon  [--seed N] [--hosts H]

Each subcommand prints the campaign's headline measurements; exit code 0
means the simulation completed.
"""

import argparse
import json
import sys

from repro import (
    FlameEspionageCampaign,
    ShamoonWiperCampaign,
    StuxnetNatanzCampaign,
)


def _print_result(result, as_json):
    if as_json:
        print(json.dumps(result, indent=2, default=str))
        return
    width = max(len(key) for key in result)
    for key in sorted(result):
        print("  %-*s  %s" % (width, key, result[key]))


def _cmd_stuxnet(args):
    campaign = StuxnetNatanzCampaign(seed=args.seed,
                                     centrifuge_count=args.centrifuges,
                                     duration_days=args.days)
    result = campaign.run()
    print("Stuxnet / Natanz (%d days):" % args.days)
    _print_result(result, args.json)


def _cmd_flame(args):
    campaign = FlameEspionageCampaign(seed=args.seed,
                                      victim_count=args.victims,
                                      duration_weeks=args.weeks)
    result = campaign.run(suicide_at_end=args.suicide)
    print("Flame espionage (%d victims, %d weeks):"
          % (args.victims, args.weeks))
    _print_result(result, args.json)


def _cmd_shamoon(args):
    campaign = ShamoonWiperCampaign(seed=args.seed, host_count=args.hosts)
    result = campaign.run()
    print("Shamoon wiper (%d hosts):" % args.hosts)
    _print_result(result, args.json)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the simulated campaigns from "
                    "'Dissecting Cyber Weapons' (ICDCS 2013).",
    )
    parser.add_argument("--json", action="store_true",
                        help="print results as JSON")
    sub = parser.add_subparsers(dest="command", required=True)

    stuxnet = sub.add_parser("stuxnet", help="the Natanz campaign (SII)")
    stuxnet.add_argument("--seed", type=int, default=2010)
    stuxnet.add_argument("--days", type=int, default=180)
    stuxnet.add_argument("--centrifuges", type=int, default=984)
    stuxnet.set_defaults(func=_cmd_stuxnet)

    flame = sub.add_parser("flame", help="the espionage campaign (SIII)")
    flame.add_argument("--seed", type=int, default=2012)
    flame.add_argument("--victims", type=int, default=10)
    flame.add_argument("--weeks", type=int, default=2)
    flame.add_argument("--suicide", action="store_true",
                       help="broadcast SUICIDE at the end")
    flame.set_defaults(func=_cmd_flame)

    shamoon = sub.add_parser("shamoon", help="the wiper campaign (SIV)")
    shamoon.add_argument("--seed", type=int, default=2012)
    shamoon.add_argument("--hosts", type=int, default=1000)
    shamoon.set_defaults(func=_cmd_shamoon)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
