"""Command-line interface: run the paper's campaigns from a shell.

Usage::

    python -m repro stuxnet  [--seed N] [--days D] [--centrifuges C] [--metrics]
    python -m repro flame    [--seed N] [--victims V] [--weeks W] [--suicide]
    python -m repro shamoon  [--seed N] [--hosts H]
    python -m repro epidemic [--scenario stuxnet|flame] [--hosts H]
                             [--epochs E] [--seed N] [--curve-out PATH]
    python -m repro sweep    --campaign NAME [--replicas N] [--workers W]
                             [--seed N] [--serial] [--fault-profile P] [--full]
    python -m repro trace    --campaign NAME [--quick|--full] [--seed N]
                             [--out PATH|-] [--figures DIR]

Each subcommand prints the campaign's headline measurements (``sweep``
prints ensemble statistics over N seeded replicas instead; ``trace``
exports the observability record — spans, trace, metrics — as JSONL);
exit code 0 means the simulation completed.  ``--metrics`` appends a
Prometheus-style metrics dump (or a ``metrics`` key under ``--json``).

The campaign subcommands and ``sweep`` also take ``--checkpoint-dir
DIR`` (record a resumable checkpoint manifest) and ``--resume``
(continue an interrupted run from that directory); the campaign
subcommands additionally take ``--checkpoint-every N`` for periodic
snapshots between stage boundaries.
"""

import argparse
import json
import sys

from repro import (
    CampaignSpec,
    FlameEspionageCampaign,
    ShamoonWiperCampaign,
    StuxnetNatanzCampaign,
    SweepConfig,
    ensemble_table,
    run_sweep,
)
from repro.core.ensemble import CAMPAIGNS, FAULT_PROFILES, QUICK_PARAMS
from repro.obs.export import (
    export_figures,
    prometheus_text,
    write_jsonl,
)


def _print_result(result, as_json):
    if as_json:
        print(json.dumps(result, indent=2, default=str))
        return
    width = max(len(key) for key in result)
    for key in sorted(result):
        print("  %-*s  %s" % (width, key, result[key]))


def _emit_campaign(args, header, result, kernel):
    """Shared tail of the single-campaign subcommands."""
    metrics = kernel.metrics.snapshot() if args.metrics else None
    if args.json:
        payload = (result if metrics is None
                   else {"result": result, "metrics": metrics})
        print(json.dumps(payload, indent=2, default=str))
        return
    print(header)
    _print_result(result, False)
    if metrics is not None:
        print(prometheus_text(metrics), end="")


def _apply_trace_limit(campaign, args):
    """Honour ``--trace-limit`` before the campaign starts recording."""
    limit = getattr(args, "trace_limit", None)
    if limit is not None:
        campaign.world.kernel.trace.bound(limit)
    return campaign


def _run_single(args, header, meta, factory, run=None):
    """Shared driver for the single-campaign subcommands.

    Without ``--checkpoint-dir`` this is a plain build-and-run.  With
    it, the run records a resumable checkpoint chain (every kill-chain
    stage boundary, plus every ``--checkpoint-every`` events when
    given); ``--resume`` replays an interrupted run against that chain
    — or short-circuits straight to the recorded result if the run had
    already finished.  ``meta`` pins the campaign name, seed, and
    parameters, so resuming with mismatched flags fails loudly instead
    of silently verifying the wrong simulation.
    """
    if getattr(args, "resume", False) and args.checkpoint_dir is None:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.checkpoint_dir is None:
        campaign = factory()
        result = (run or (lambda c: c.run()))(campaign)
        kernel = campaign.world.kernel
    else:
        from repro.core.resume import resume_checkpointed, run_checkpointed

        if args.resume:
            report = resume_checkpointed(factory, args.checkpoint_dir,
                                         meta=meta, run=run)
        else:
            report = run_checkpointed(factory, args.checkpoint_dir,
                                      meta=meta, run=run,
                                      every_events=args.checkpoint_every)
        result = report.result
        kernel = report.kernel
        if args.resume and not args.json:
            print("resume: verified %d checkpoint%s%s"
                  % (report.verified,
                     "" if report.verified == 1 else "s",
                     " (finished run, no replay needed)"
                     if report.short_circuited else ""))
    _emit_campaign(args, header, result, kernel)


def _cmd_stuxnet(args):
    def factory():
        return _apply_trace_limit(
            StuxnetNatanzCampaign(seed=args.seed,
                                  centrifuge_count=args.centrifuges,
                                  duration_days=args.days), args)

    _run_single(args, "Stuxnet / Natanz (%d days):" % args.days,
                {"campaign": "stuxnet", "seed": args.seed,
                 "centrifuges": args.centrifuges, "days": args.days},
                factory)


def _cmd_flame(args):
    def factory():
        return _apply_trace_limit(
            FlameEspionageCampaign(seed=args.seed,
                                   victim_count=args.victims,
                                   duration_weeks=args.weeks), args)

    _run_single(args, "Flame espionage (%d victims, %d weeks):"
                % (args.victims, args.weeks),
                {"campaign": "flame", "seed": args.seed,
                 "victims": args.victims, "weeks": args.weeks,
                 "suicide": args.suicide},
                factory,
                run=lambda c: c.run(suicide_at_end=args.suicide))


def _cmd_shamoon(args):
    def factory():
        return _apply_trace_limit(
            ShamoonWiperCampaign(seed=args.seed, host_count=args.hosts),
            args)

    _run_single(args, "Shamoon wiper (%d hosts):" % args.hosts,
                {"campaign": "shamoon", "seed": args.seed,
                 "hosts": args.hosts},
                factory)


def _cmd_epidemic(args):
    from repro.epidemic import (
        FlameEpidemicCampaign,
        StuxnetEpidemicCampaign,
    )

    classes = {"stuxnet": StuxnetEpidemicCampaign,
               "flame": FlameEpidemicCampaign}

    def factory():
        return _apply_trace_limit(
            classes[args.scenario](
                seed=args.seed, host_count=args.hosts, epochs=args.epochs,
                initial_infections=args.initial_infections,
                promote_samples=args.promote_samples), args)

    def run(campaign):
        result = dict(campaign.run())
        # The full curve is an artefact, not a headline: keep the
        # printed result scannable and write the curve to a file on
        # request.
        curve = result.pop("curve")
        result["curve_epochs"] = len(curve)
        if args.curve_out is not None:
            with open(args.curve_out, "w", encoding="utf-8") as stream:
                json.dump({"scenario": args.scenario, "seed": args.seed,
                           "host_count": args.hosts, "epochs": args.epochs,
                           "curve": curve},
                          stream, indent=2, sort_keys=True)
                stream.write("\n")
            if not args.json:
                print("wrote %d curve points to %s"
                      % (len(curve), args.curve_out))
        return result

    _run_single(args, "Epidemic %s (%d hosts, %d epochs):"
                % (args.scenario, args.hosts, args.epochs),
                {"campaign": "epidemic", "scenario": args.scenario,
                 "seed": args.seed, "hosts": args.hosts,
                 "epochs": args.epochs,
                 "initial": args.initial_infections,
                 "promote": args.promote_samples},
                factory, run=run)


def _cmd_trace(args):
    params = {} if args.full else dict(QUICK_PARAMS[args.campaign])
    campaign = _apply_trace_limit(
        CAMPAIGNS[args.campaign](seed=args.seed, **params), args)
    campaign.run()
    kernel = campaign.world.kernel
    meta = {"campaign": args.campaign, "seed": args.seed,
            "preset": "full" if args.full else "quick"}
    if args.out == "-":
        write_jsonl(kernel, sys.stdout, meta=meta)
    else:
        with open(args.out, "w", encoding="utf-8") as stream:
            lines = write_jsonl(kernel, stream, meta=meta)
        print("wrote %d lines (%d spans, %d records, %d metrics) to %s"
              % (lines, len(kernel.spans), len(kernel.trace),
                 len(kernel.metrics), args.out))
    if args.figures is not None:
        import os

        os.makedirs(args.figures, exist_ok=True)
        for figure, edges in sorted(export_figures(kernel).items()):
            path = os.path.join(args.figures, "%s.json" % figure)
            with open(path, "w", encoding="utf-8") as stream:
                json.dump({"figure": figure, "campaign": args.campaign,
                           "seed": args.seed, "edges": edges},
                          stream, indent=2, sort_keys=True)
                stream.write("\n")


def _cmd_sweep(args):
    if args.full:
        spec = CampaignSpec(args.campaign, fault_profile=args.fault_profile)
    else:
        spec = CampaignSpec.quick(args.campaign,
                                  fault_profile=args.fault_profile)
    supervision = None
    supervised = (args.supervised or args.replica_timeout is not None
                  or args.max_replica_retries is not None
                  or args.on_failure is not None)
    if supervised:
        if args.serial:
            raise SystemExit("--serial cannot be combined with supervision "
                             "flags: supervision needs worker processes")
        from repro.sim.supervisor import SupervisorConfig

        kwargs = {}
        if args.replica_timeout is not None:
            kwargs["replica_timeout"] = args.replica_timeout
        if args.max_replica_retries is not None:
            kwargs["max_replica_retries"] = args.max_replica_retries
        if args.on_failure is not None:
            kwargs["on_failure"] = args.on_failure
        supervision = SupervisorConfig(**kwargs)
    mode = "supervised" if supervised else ("serial" if args.serial
                                            else "auto")
    config = SweepConfig(replicas=args.replicas, workers=args.workers,
                         chunk_size=args.chunk_size, base_seed=args.seed,
                         mode=mode, pool_warm=args.pool_warm,
                         fallback=args.fallback)
    if args.resume and args.checkpoint_dir is None:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.skip_quarantined and not args.resume:
        raise SystemExit("--skip-quarantined only makes sense with --resume")
    result = run_sweep(spec, config, checkpoint_dir=args.checkpoint_dir,
                       resume=args.resume, supervision=supervision,
                       retry_quarantined=not args.skip_quarantined)
    if args.json:
        payload = result.as_dict()
        if not args.metrics:
            payload.pop("metrics_merged", None)
            payload.pop("metrics_aggregate", None)
        print(json.dumps(payload, indent=2, default=str))
        return
    profile = (" + %s faults" % spec.fault_profile
               if spec.fault_profile else "")
    print("Monte-Carlo sweep: %s%s, %d replicas (%s, %d worker%s, "
          "chunk %d) in %.2fs"
          % (args.campaign, profile, len(result.replicas), result.mode,
             result.workers, "" if result.workers == 1 else "s",
             result.chunk_size, result.wall_seconds))
    if result.dispatch:
        notes = []
        if result.dispatch.get("pool_reused"):
            notes.append("warm pool reused")
        if result.dispatch.get("probe_seconds") is not None:
            notes.append("probe %.3fs/replica"
                         % result.dispatch["probe_seconds"])
        print("dispatch path: %s%s"
              % (result.dispatch.get("path", result.mode),
                 " (%s)" % ", ".join(notes) if notes else ""))
    print("distinct trace digests: %d / %d"
          % (len(set(result.digests())), len(result.replicas)))
    print(ensemble_table(
        "per-measurement statistics over %d replicas (base seed %r)"
        % (len(result.replicas), result.base_seed),
        result.aggregate()))
    if result.failures:
        print("incomplete: %d replica(s) failed (%d quarantined)"
              % (len(result.failures), len(result.quarantined())))
        for failure in result.failures:
            print("  replica %04d: %s after %d attempt(s)%s"
                  % (failure.index, failure.reason, failure.attempts,
                     " [quarantined]" if failure.quarantined else ""))
    if result.supervision is not None:
        report = result.supervision
        print("supervision: %d worker(s), %d restart(s), %d ok / %d "
              "failed%s in %.2fs"
              % (report["workers"], report["worker_restarts"],
                 report["replicas_completed"], report["replicas_failed"],
                 " (salvaged: deadline hit)" if report["salvaged"] else "",
                 report["wall_seconds"]))
    if args.metrics:
        print(prometheus_text(result.merged_metrics()), end="")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the simulated campaigns from "
                    "'Dissecting Cyber Weapons' (ICDCS 2013).",
    )
    parser.add_argument("--json", action="store_true",
                        help="print results as JSON")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_metrics_flag(subparser):
        subparser.add_argument(
            "--metrics", action="store_true",
            help="also dump the kernel metrics registry (Prometheus "
                 "text, or a 'metrics' key under --json)")

    def add_trace_limit_flag(subparser):
        subparser.add_argument(
            "--trace-limit", type=int, default=None, metavar="N",
            help="bound the trace log to the newest N records "
                 "(caps memory on million-event runs; the default "
                 "keeps everything)")

    def add_checkpoint_flags(subparser, periodic=True):
        subparser.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="record a resumable checkpoint manifest into DIR")
        subparser.add_argument(
            "--resume", action="store_true",
            help="resume an interrupted run from --checkpoint-dir "
                 "(replays deterministically and verifies the recorded "
                 "checkpoint chain)")
        if periodic:
            subparser.add_argument(
                "--checkpoint-every", type=int, default=None, metavar="N",
                help="also checkpoint every N dispatched events "
                     "(default: stage boundaries only)")

    stuxnet = sub.add_parser("stuxnet", help="the Natanz campaign (SII)")
    stuxnet.add_argument("--seed", type=int, default=2010)
    stuxnet.add_argument("--days", type=int, default=180)
    stuxnet.add_argument("--centrifuges", type=int, default=984)
    add_metrics_flag(stuxnet)
    add_trace_limit_flag(stuxnet)
    add_checkpoint_flags(stuxnet)
    stuxnet.set_defaults(func=_cmd_stuxnet)

    flame = sub.add_parser("flame", help="the espionage campaign (SIII)")
    flame.add_argument("--seed", type=int, default=2012)
    flame.add_argument("--victims", type=int, default=10)
    flame.add_argument("--weeks", type=int, default=2)
    flame.add_argument("--suicide", action="store_true",
                       help="broadcast SUICIDE at the end")
    add_metrics_flag(flame)
    add_trace_limit_flag(flame)
    add_checkpoint_flags(flame)
    flame.set_defaults(func=_cmd_flame)

    shamoon = sub.add_parser("shamoon", help="the wiper campaign (SIV)")
    shamoon.add_argument("--seed", type=int, default=2012)
    shamoon.add_argument("--hosts", type=int, default=1000)
    add_metrics_flag(shamoon)
    add_trace_limit_flag(shamoon)
    add_checkpoint_flags(shamoon)
    shamoon.set_defaults(func=_cmd_shamoon)

    epidemic = sub.add_parser(
        "epidemic", help="population-scale hybrid-fidelity epidemic "
                         "(the paper's victim distributions at 10^6 "
                         "hosts)")
    epidemic.add_argument("--scenario", choices=("stuxnet", "flame"),
                          default="stuxnet")
    epidemic.add_argument("--seed", type=int, default=2010)
    epidemic.add_argument("--hosts", type=int, default=1_000_000)
    epidemic.add_argument("--epochs", type=int, default=30)
    epidemic.add_argument("--initial-infections", type=int, default=5)
    epidemic.add_argument("--promote-samples", type=int, default=2,
                          help="infectious pool rows promoted to full "
                               "WindowsHost fidelity at the end")
    epidemic.add_argument("--curve-out", default=None, metavar="PATH",
                          help="write the per-epoch infection curve as "
                               "JSON to PATH")
    add_metrics_flag(epidemic)
    add_trace_limit_flag(epidemic)
    add_checkpoint_flags(epidemic)
    epidemic.set_defaults(func=_cmd_epidemic)

    sweep = sub.add_parser(
        "sweep", help="Monte-Carlo ensemble of seeded campaign replicas")
    sweep.add_argument("--campaign", required=True,
                       choices=sorted(CAMPAIGNS))
    sweep.add_argument("--replicas", type=int, default=16)
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: CPU count)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="base seed each replica's seed is forked from")
    sweep.add_argument("--chunk-size", type=int, default=None,
                       help="replicas per dispatched work unit")
    sweep.add_argument("--pool-warm", dest="pool_warm",
                       action="store_true", default=True,
                       help="reuse the process-wide warm worker pool "
                            "across sweeps (default)")
    sweep.add_argument("--no-pool-warm", dest="pool_warm",
                       action="store_false",
                       help="use a private worker pool torn down with "
                            "the sweep")
    sweep.add_argument("--no-fallback", dest="fallback",
                       action="store_false", default=True,
                       help="always dispatch to worker processes, even "
                            "when the probed ensemble cost is below the "
                            "parallelism break-even")
    sweep.add_argument("--serial", action="store_true",
                       help="force the bit-identical serial fallback path")
    sweep.add_argument("--supervised", action="store_true",
                       help="dispatch through the supervised worker pool: "
                            "worker crashes, hangs, and timeouts cost one "
                            "replica attempt instead of the whole sweep")
    sweep.add_argument("--replica-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget per replica attempt "
                            "(implies --supervised)")
    sweep.add_argument("--max-replica-retries", type=int, default=None,
                       metavar="N",
                       help="retries before a replica is quarantined as "
                            "poison (implies --supervised; default 2)")
    sweep.add_argument("--on-failure", default=None,
                       choices=("quarantine", "fail"),
                       help="what a poison replica does to the sweep: "
                            "'quarantine' records it and keeps going "
                            "(default), 'fail' aborts (implies "
                            "--supervised)")
    sweep.add_argument("--skip-quarantined", action="store_true",
                       help="with --resume: carry quarantined replicas' "
                            "failure records instead of retrying them")
    sweep.add_argument("--fault-profile", default=None,
                       choices=sorted(FAULT_PROFILES),
                       help="apply a named fault-injection profile")
    sweep.add_argument("--full", action="store_true",
                       help="paper-scale campaign parameters instead of "
                            "the quick ensemble preset")
    # Also accepted after the subcommand; SUPPRESS keeps the
    # subparser's default from clobbering a global "--json" given
    # before it.
    sweep.add_argument("--json", action="store_true",
                       default=argparse.SUPPRESS,
                       help="print the full sweep result as JSON")
    add_checkpoint_flags(sweep, periodic=False)
    add_metrics_flag(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    trace = sub.add_parser(
        "trace", help="run a campaign and export its spans, trace "
                      "records, and metrics as JSONL")
    trace.add_argument("--campaign", required=True,
                       choices=sorted(CAMPAIGNS))
    trace.add_argument("--seed", type=int, default=0)
    preset = trace.add_mutually_exclusive_group()
    preset.add_argument("--quick", action="store_true", default=True,
                        help="scaled-down campaign parameters (default)")
    preset.add_argument("--full", action="store_true",
                        help="paper-scale campaign parameters")
    trace.add_argument("--out", default="-",
                       help="output path, or '-' for stdout (default)")
    trace.add_argument("--figures", default=None, metavar="DIR",
                       help="also write per-figure edge lists "
                            "(fig*.json) into DIR")
    add_trace_limit_flag(trace)
    trace.set_defaults(func=_cmd_trace)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
