"""Authenticode-like code signing over synthetic PE images."""

from repro.certs.certificate import Certificate
from repro.pe.format import ByteReader, pack_bytes, pack_str, pack_u16


class CodeSignature:
    """A detached signature blob embedded at the tail of a PE image.

    Contains the leaf-first certificate chain, the digest algorithm, and
    the RSA signature the leaf key made over the image's signed span.
    """

    def __init__(self, chain, algorithm, signature):
        if not chain:
            raise ValueError("signature must carry at least the leaf certificate")
        self.chain = list(chain)
        self.algorithm = algorithm
        self.signature = signature

    @property
    def leaf(self):
        return self.chain[0]

    @property
    def signer_subject(self):
        return self.leaf.subject

    def to_bytes(self):
        # Pad the signature to the leaf modulus width so blob size is
        # independent of the particular signature value; file-size
        # targeting (Shamoon's 900 KB) depends on this.
        width = (self.leaf.public_key.modulus.bit_length() + 7) // 8
        sig_bytes = self.signature.to_bytes(width, "big")
        parts = [pack_u16(len(self.chain))]
        parts.extend(pack_bytes(cert.to_bytes()) for cert in self.chain)
        parts.append(pack_str(self.algorithm))
        parts.append(pack_bytes(sig_bytes))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob):
        reader = ByteReader(blob)
        chain = [
            Certificate.from_bytes(reader.length_prefixed_bytes())
            for _ in range(reader.u16())
        ]
        algorithm = reader.length_prefixed_str()
        signature = int.from_bytes(reader.length_prefixed_bytes(), "big")
        return cls(chain, algorithm, signature)

    def __repr__(self):
        return "CodeSignature(by=%r, alg=%s, chain=%d)" % (
            self.signer_subject,
            self.algorithm,
            len(self.chain),
        )


def sign_image(builder, keypair, chain, algorithm="sha256", target_size=None):
    """Sign the image a :class:`~repro.pe.PeBuilder` describes.

    The builder is serialised once *without* a signature to obtain the
    signed span, the leaf key signs those bytes, and the final image with
    the signature blob appended is returned.
    """
    builder.set_signature_blob(None)
    if target_size is not None:
        # Pre-pad so the final (signed) file lands exactly on the target
        # size: signature blobs have a fixed width (see CodeSignature).
        probe = CodeSignature(chain, algorithm, signature=0)
        overhead = len(b"SIGN") + 4 + len(probe.to_bytes())
        body = builder.build(target_size=target_size - overhead)
    else:
        body = builder.build(target_size=None)
    signature = keypair.sign(body, algorithm)
    blob = CodeSignature(chain, algorithm, signature).to_bytes()
    return body + b"SIGN" + pack_bytes(blob)


def extract_signature(pe_file):
    """Pull the :class:`CodeSignature` out of a parsed PE, or None."""
    if pe_file.signature_blob is None:
        return None
    return CodeSignature.from_bytes(pe_file.signature_blob)
