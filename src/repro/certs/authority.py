"""Certificate authorities: root creation and certificate issuance."""

import itertools

from repro.certs.certificate import (
    Certificate,
    KEY_USAGE_CA,
)
from repro.crypto.rsa import generate_keypair

#: One century of virtual seconds — effectively "never expires" for the
#: 2010-2012 campaign window the simulation covers.
_DEFAULT_LIFETIME = 100 * 365 * 86400


class CertificateAuthority:
    """A CA that can issue (and thereby vouch for) certificates.

    The signature algorithm is configured per-issuance: Microsoft's
    Terminal Services licensing chain historically kept signing with a
    weak hash long after it was broken, which is what
    ``algorithm="weakmd5"`` models.
    """

    def __init__(self, name, key_bits=512):
        self.name = name
        self.keypair = generate_keypair("ca:%s" % name, bits=key_bits)
        self._serials = itertools.count(1)
        self.root_certificate = self._make_root()
        self.issued = []

    def _make_root(self):
        cert = Certificate(
            subject=self.name,
            issuer=self.name,
            serial=self._next_serial(),
            public_key=self.keypair.public,
            usages={KEY_USAGE_CA},
            not_before=0,
            not_after=_DEFAULT_LIFETIME,
            signature_algorithm="sha256",
        )
        cert.signature = self.keypair.sign(cert.tbs_bytes(), "sha256")
        return cert

    def _next_serial(self):
        return "%s-%06d" % (self.name.replace(" ", "_"), next(self._serials))

    def issue(self, subject, public_key, usages, not_before=0, not_after=None,
              algorithm="sha256"):
        """Issue a certificate binding ``subject`` to ``public_key``.

        Returns the signed :class:`Certificate`.  ``algorithm`` selects
        the signature hash — choosing ``"weakmd5"`` creates the very
        weakness the Flame forgery exploits.
        """
        if not_after is None:
            not_after = not_before + _DEFAULT_LIFETIME
        cert = Certificate(
            subject=subject,
            issuer=self.name,
            serial=self._next_serial(),
            public_key=public_key,
            usages=usages,
            not_before=not_before,
            not_after=not_after,
            signature_algorithm=algorithm,
        )
        cert.signature = self.keypair.sign(cert.tbs_bytes(), algorithm)
        self.issued.append(cert)
        return cert

    def issue_with_new_key(self, subject, usages, key_bits=512, **kwargs):
        """Issue a certificate over a freshly derived key pair.

        Returns ``(certificate, keypair)`` — the holder keeps the private
        half.  Key derivation is deterministic in ``subject`` so repeated
        simulations agree.
        """
        keypair = generate_keypair("subject:%s:%s" % (self.name, subject), bits=key_bits)
        cert = self.issue(subject, keypair.public, usages, **kwargs)
        return cert, keypair

    def __repr__(self):
        return "CertificateAuthority(%r, issued=%d)" % (self.name, len(self.issued))
