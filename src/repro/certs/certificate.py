"""X.509-like certificates for the simulated PKI."""

from repro.crypto.hashes import WEAK_DIGEST_SIZE
from repro.crypto.rsa import RsaPublicKey
from repro.pe.format import ByteReader, pack_bytes, pack_str, pack_u32

KEY_USAGE_CA = "ca"
KEY_USAGE_CODE_SIGNING = "code-signing"
#: The limited usage Microsoft grants a Terminal Services Licensing Server:
#: "a limited use certificate allowing only to verify the ownership of the
#: TSLS" (§III.A).
KEY_USAGE_LICENSE_VERIFICATION = "license-verification"
KEY_USAGE_SERVER_AUTH = "server-auth"

_KNOWN_USAGES = {
    KEY_USAGE_CA,
    KEY_USAGE_CODE_SIGNING,
    KEY_USAGE_LICENSE_VERIFICATION,
    KEY_USAGE_SERVER_AUTH,
}


class Certificate:
    """A signed binding of a subject name to a public key.

    The to-be-signed (TBS) bytes end with an attacker-controllable
    ``collision_pad`` field.  Real certificates have an empty pad; a
    forged certificate carries the 16-byte block that makes its TBS bytes
    collide (under the weak hash) with a legitimately signed TBS — the
    exact shape of the Flame chosen-prefix collision.
    """

    def __init__(self, subject, issuer, serial, public_key, usages,
                 not_before, not_after, signature_algorithm="sha256",
                 signature=None, collision_pad=b""):
        unknown = set(usages) - _KNOWN_USAGES
        if unknown:
            raise ValueError("unknown key usages: %s" % sorted(unknown))
        if not_after <= not_before:
            raise ValueError("certificate validity window is empty")
        self.subject = subject
        self.issuer = issuer
        self.serial = serial
        self.public_key = public_key
        self.usages = frozenset(usages)
        self.not_before = not_before
        self.not_after = not_after
        self.signature_algorithm = signature_algorithm
        self.signature = signature
        self.collision_pad = bytes(collision_pad)

    # -- identity ----------------------------------------------------------

    @property
    def is_self_signed(self):
        return self.subject == self.issuer

    def allows(self, usage):
        """True when the certificate's key usage permits ``usage``."""
        return usage in self.usages

    def valid_at(self, when):
        """True when virtual time ``when`` is inside the validity window."""
        return self.not_before <= when <= self.not_after

    # -- signing surface -----------------------------------------------------

    def tbs_bytes(self):
        """The to-be-signed encoding the issuer's signature covers.

        The fixed fields are padded to a 16-byte boundary before the
        collision pad is appended, so that a forger can use
        :func:`repro.crypto.forge_collision_block` directly.
        """
        key = self.public_key
        fixed = b"".join(
            [
                pack_str(self.subject),
                pack_str(self.issuer),
                pack_str(self.serial),
                pack_bytes(key.modulus.to_bytes((key.modulus.bit_length() + 7) // 8, "big")),
                pack_u32(key.exponent),
                pack_str(",".join(sorted(self.usages))),
                pack_u32(int(self.not_before)),
                pack_u32(int(self.not_after)),
                pack_str(self.signature_algorithm),
            ]
        )
        if len(fixed) % WEAK_DIGEST_SIZE:
            fixed += b"\x00" * (WEAK_DIGEST_SIZE - len(fixed) % WEAK_DIGEST_SIZE)
        return fixed + self.collision_pad

    def verify_signature(self, issuer_public_key):
        """Check this certificate's signature against the issuer's key."""
        if self.signature is None:
            return False
        return issuer_public_key.verify(
            self.tbs_bytes(), self.signature, self.signature_algorithm
        )

    # -- wire format ---------------------------------------------------------

    def to_bytes(self):
        """Serialise for embedding in code-signature blobs."""
        sig = self.signature if self.signature is not None else 0
        sig_bytes = sig.to_bytes((sig.bit_length() + 7) // 8 or 1, "big")
        return b"".join(
            [
                pack_bytes(self.tbs_bytes()),
                pack_str(self.subject),
                pack_str(self.issuer),
                pack_str(self.serial),
                pack_bytes(self.public_key.modulus.to_bytes(
                    (self.public_key.modulus.bit_length() + 7) // 8, "big")),
                pack_u32(self.public_key.exponent),
                pack_str(",".join(sorted(self.usages))),
                pack_u32(int(self.not_before)),
                pack_u32(int(self.not_after)),
                pack_str(self.signature_algorithm),
                pack_bytes(sig_bytes),
                pack_bytes(self.collision_pad),
            ]
        )

    @classmethod
    def from_bytes(cls, blob):
        reader = ByteReader(blob)
        reader.length_prefixed_bytes()  # redundant TBS copy; fields rebuild it
        subject = reader.length_prefixed_str()
        issuer = reader.length_prefixed_str()
        serial = reader.length_prefixed_str()
        modulus = int.from_bytes(reader.length_prefixed_bytes(), "big")
        exponent = reader.u32()
        usages_text = reader.length_prefixed_str()
        usages = set(usages_text.split(",")) if usages_text else set()
        not_before = reader.u32()
        not_after = reader.u32()
        algorithm = reader.length_prefixed_str()
        signature = int.from_bytes(reader.length_prefixed_bytes(), "big")
        collision_pad = reader.length_prefixed_bytes()
        return cls(
            subject=subject,
            issuer=issuer,
            serial=serial,
            public_key=RsaPublicKey(modulus, exponent),
            usages=usages,
            not_before=not_before,
            not_after=not_after,
            signature_algorithm=algorithm,
            signature=signature or None,
            collision_pad=collision_pad,
        )

    def __repr__(self):
        return "Certificate(%r <- %r, usages=%s, alg=%s)" % (
            self.subject,
            self.issuer,
            sorted(self.usages),
            self.signature_algorithm,
        )
