"""Simulated public-key infrastructure.

Certificates are the connective tissue of the paper's Section V.C
("Certified Malwares"):

* Stuxnet installs rootkit drivers signed with **stolen** JMicron and
  Realtek certificates;
* Flame **forges** a code-signing certificate from a Microsoft Terminal
  Services licensing certificate that chained through a flawed (weak-hash)
  signing algorithm (Fig. 3);
* Shamoon reuses a **legitimately signed** Eldos raw-disk driver as-is;
* Microsoft's advisory 2718704 response is modelled by the untrusted-
  certificate store.

All three abuse modes run for real against this module's chain
verification — nothing is asserted by fiat.
"""

from repro.certs.certificate import (
    Certificate,
    KEY_USAGE_CA,
    KEY_USAGE_CODE_SIGNING,
    KEY_USAGE_LICENSE_VERIFICATION,
    KEY_USAGE_SERVER_AUTH,
)
from repro.certs.authority import CertificateAuthority
from repro.certs.codesign import CodeSignature, sign_image, extract_signature
from repro.certs.store import TrustStore, VerificationResult
from repro.certs.tsls import (
    ForgeryFailed,
    TerminalServicesLicensingServer,
    forge_code_signing_certificate,
)
from repro.certs.wellknown import (
    ELDOS,
    JMICRON,
    MICROSOFT_LICENSING_CA,
    MICROSOFT_ROOT,
    MICROSOFT_UPDATE_SIGNER,
    PkiWorld,
    REALTEK,
)

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CodeSignature",
    "ELDOS",
    "ForgeryFailed",
    "JMICRON",
    "MICROSOFT_LICENSING_CA",
    "MICROSOFT_ROOT",
    "MICROSOFT_UPDATE_SIGNER",
    "PkiWorld",
    "REALTEK",
    "KEY_USAGE_CA",
    "KEY_USAGE_CODE_SIGNING",
    "KEY_USAGE_LICENSE_VERIFICATION",
    "KEY_USAGE_SERVER_AUTH",
    "TerminalServicesLicensingServer",
    "TrustStore",
    "VerificationResult",
    "extract_signature",
    "forge_code_signing_certificate",
    "sign_image",
]
