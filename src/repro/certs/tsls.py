"""Terminal Services licensing and the Flame certificate forgery (Fig. 3).

The paper's Figure 3 narrative, made executable:

1. An enterprise activates a Terminal Services Licensing Server (TSLS) by
   contacting Microsoft, which issues "a limited use certificate allowing
   only to verify the ownership of the TSLS".
2. That licensing chain signs with a flawed algorithm (modelled by the
   collision-forgeable ``weakmd5`` digest).
3. "Flame designers managed to use the certificate to sign code using a
   flawed signing algorithm": the attacker constructs a *rogue*
   code-signing certificate whose to-be-signed bytes collide with the
   legitimate certificate's, then transplants Microsoft's signature onto
   it.  Windows hosts now accept attacker-signed binaries as genuine
   Microsoft updates.
"""

from repro.certs.certificate import (
    Certificate,
    KEY_USAGE_CODE_SIGNING,
    KEY_USAGE_LICENSE_VERIFICATION,
)
from repro.crypto.hashes import forge_collision_block, is_collision_forgeable, weak_digest
from repro.crypto.rsa import generate_keypair


class ForgeryFailed(Exception):
    """Raised when a certificate forgery attempt cannot succeed."""


class TerminalServicesLicensingServer:
    """A TSLS instance an enterprise runs to hand out RDP licenses."""

    def __init__(self, organization):
        self.organization = organization
        self.keypair = generate_keypair("tsls:%s" % organization)
        self.certificate = None
        self.licenses_issued = 0

    @property
    def activated(self):
        return self.certificate is not None

    def activate(self, licensing_authority, algorithm="weakmd5", at_time=0):
        """Contact Microsoft's licensing CA and obtain the limited cert.

        ``algorithm`` defaults to the historically flawed one; passing
        ``"sha256"`` models a fixed licensing chain (the ablation case).
        """
        self.certificate = licensing_authority.issue(
            subject="TSLS %s" % self.organization,
            public_key=self.keypair.public,
            usages={KEY_USAGE_LICENSE_VERIFICATION},
            not_before=at_time,
            algorithm=algorithm,
        )
        return self.certificate

    def issue_client_license(self, client_name):
        """Issue an RDP client license — the server's *intended* purpose."""
        if not self.activated:
            raise RuntimeError("TSLS must be activated before issuing licenses")
        self.licenses_issued += 1
        return {
            "client": client_name,
            "server": self.organization,
            "license_id": self.licenses_issued,
        }


def forge_code_signing_certificate(legitimate_cert, attacker_subject,
                                   attacker_public_key=None):
    """Forge a code-signing certificate from a limited licensing cert.

    Builds a new certificate with the attacker's key and the
    code-signing usage, computes the collision block that makes its TBS
    bytes hash (under the weak algorithm) to the same digest as the
    legitimate certificate's TBS bytes, and transplants the legitimate
    signature.  Raises :class:`ForgeryFailed` when the chain signs with a
    collision-resistant algorithm — the attack genuinely does not work
    there, which the Fig. 3 benchmark demonstrates.
    """
    algorithm = legitimate_cert.signature_algorithm
    if not is_collision_forgeable(algorithm):
        raise ForgeryFailed(
            "licensing chain signs with %r; no collision attack available"
            % algorithm
        )
    if legitimate_cert.signature is None:
        raise ForgeryFailed("legitimate certificate carries no signature")
    if attacker_public_key is None:
        attacker_public_key = generate_keypair("forger:%s" % attacker_subject).public

    rogue = Certificate(
        subject=attacker_subject,
        issuer=legitimate_cert.issuer,
        serial=legitimate_cert.serial,
        public_key=attacker_public_key,
        usages={KEY_USAGE_CODE_SIGNING},
        not_before=legitimate_cert.not_before,
        not_after=legitimate_cert.not_after,
        signature_algorithm=algorithm,
    )
    target = weak_digest(legitimate_cert.tbs_bytes())
    rogue.collision_pad = forge_collision_block(rogue.tbs_bytes(), target)
    rogue.signature = legitimate_cert.signature
    return rogue
