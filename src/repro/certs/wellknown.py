"""The standard PKI world every simulated Windows host is born into.

Builds the cast of certificate authorities and vendor certificates the
paper's campaign plays out against:

* **Microsoft Root Authority** — trusted by every host; anchors both the
  Windows Update signing chain and the (flawed) Terminal Services
  licensing intermediate.
* **Commodo Commercial CA** — a VeriSign-like commercial CA that issued
  the JMicron and Realtek code-signing certificates Stuxnet stole, and
  the Eldos certificate on the legitimate raw-disk driver Shamoon reuses.
"""

from repro.certs.authority import CertificateAuthority
from repro.certs.certificate import (
    KEY_USAGE_CA,
    KEY_USAGE_CODE_SIGNING,
)
from repro.certs.store import TrustStore
from repro.crypto.rsa import generate_keypair

MICROSOFT_ROOT = "Microsoft Root Authority"
MICROSOFT_UPDATE_SIGNER = "Microsoft Windows Update Publisher"
MICROSOFT_LICENSING_CA = "Microsoft Enforced Licensing Intermediate PCA"
COMMERCIAL_ROOT = "Commodo Commercial Root CA"

#: Vendors whose code-signing certificates appear in the campaign.
JMICRON = "JMicron Technology Corp."
REALTEK = "Realtek Semiconductor Corp."
ELDOS = "EldoS Corporation"


class PkiWorld:
    """Everything certificate-shaped the simulation shares.

    Construct once per scenario; hand :meth:`make_trust_store` results to
    each simulated host.  Vendor key pairs are held here too — "stealing
    a certificate" in the Stuxnet model means obtaining a vendor's
    ``(certificate, keypair)`` tuple from this registry.
    """

    def __init__(self):
        self.microsoft_root = CertificateAuthority(MICROSOFT_ROOT)
        self.commercial_root = CertificateAuthority(COMMERCIAL_ROOT)

        # Windows Update's own signer: chains directly to the MS root.
        self.update_signer_cert, self.update_signer_key = (
            self.microsoft_root.issue_with_new_key(
                MICROSOFT_UPDATE_SIGNER, {KEY_USAGE_CODE_SIGNING}
            )
        )

        # The licensing intermediate still signs with the weak algorithm —
        # this is the flaw Fig. 3 turns into a code-signing forgery.
        self.licensing_ca = CertificateAuthority(MICROSOFT_LICENSING_CA)
        self.licensing_ca_cert = self.microsoft_root.issue(
            MICROSOFT_LICENSING_CA,
            self.licensing_ca.keypair.public,
            usages={KEY_USAGE_CA},
            algorithm="weakmd5",
        )

        self._vendor_credentials = {}
        for vendor in (JMICRON, REALTEK, ELDOS):
            cert, keypair = self.commercial_root.issue_with_new_key(
                vendor, {KEY_USAGE_CODE_SIGNING}
            )
            self._vendor_credentials[vendor] = (cert, keypair)

    def vendor_credentials(self, vendor):
        """(certificate, keypair) for a vendor — the theft surface."""
        try:
            return self._vendor_credentials[vendor]
        except KeyError:
            raise KeyError("unknown vendor: %r" % vendor) from None

    def vendor_chain(self, vendor):
        """Leaf-first chain for a vendor certificate."""
        cert, _ = self.vendor_credentials(vendor)
        return [cert]

    def update_signing_chain(self):
        """Chain Windows Update binaries are legitimately signed with."""
        return [self.update_signer_cert]

    def licensing_chain_tail(self):
        """The intermediate the forged Flame certificate chains through."""
        return [self.licensing_ca_cert]

    def make_trust_store(self):
        """A fresh per-host trust store with the standard roots."""
        return TrustStore(
            trusted_roots=[
                self.microsoft_root.root_certificate,
                self.commercial_root.root_certificate,
            ]
        )

    def make_keypair(self, label):
        """Derive an arbitrary key pair inside this world (test helper)."""
        return generate_keypair("world:%s" % label)
