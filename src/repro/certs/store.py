"""Trust store and chain/code-signature verification.

A host's trust decisions live here: which roots it trusts, which
certificates have been shoved into the *untrusted* store (Microsoft's
advisory 2718704 moved three Terminal Services certificates there to kill
the Flame update vector), and which serials are revoked (the response to
Stuxnet's stolen JMicron/Realtek certificates).
"""

from repro.certs.codesign import extract_signature
from repro.certs.certificate import KEY_USAGE_CA, KEY_USAGE_CODE_SIGNING
from repro.crypto.hashes import digest


class VerificationResult:
    """Outcome of a verification: truthy on success, explains failure."""

    def __init__(self, ok, reason, signer=None):
        self.ok = ok
        self.reason = reason
        self.signer = signer

    def __bool__(self):
        return self.ok

    def __repr__(self):
        status = "OK" if self.ok else "FAIL"
        return "VerificationResult(%s: %s)" % (status, self.reason)


class TrustStore:
    """Per-host (or per-organisation) certificate trust state."""

    def __init__(self, trusted_roots=()):
        self._roots = {cert.subject: cert for cert in trusted_roots}
        self._untrusted_fingerprints = set()
        self._revoked_serials = set()

    # -- administration ------------------------------------------------------

    def add_trusted_root(self, cert):
        self._roots[cert.subject] = cert

    def trusted_root(self, subject):
        return self._roots.get(subject)

    def mark_untrusted(self, cert):
        """Move a certificate to the untrusted store (advisory 2718704)."""
        self._untrusted_fingerprints.add(cert.public_key.fingerprint())

    def revoke_serial(self, serial):
        """Revoke by serial — the vendor response to certificate theft."""
        self._revoked_serials.add(serial)

    def is_untrusted(self, cert):
        return cert.public_key.fingerprint() in self._untrusted_fingerprints

    def is_revoked(self, cert):
        return cert.serial in self._revoked_serials

    # -- verification ----------------------------------------------------------

    def verify_chain(self, chain, at_time=0, usage=KEY_USAGE_CODE_SIGNING):
        """Verify a leaf-first certificate chain.

        Checks, in order: untrusted store, revocation, validity window,
        key usage of the leaf, each link's signature, CA usage of the
        intermediates, and that the final issuer is a trusted root.
        """
        if not chain:
            return VerificationResult(False, "empty chain")
        leaf = chain[0]
        for cert in chain:
            if self.is_untrusted(cert):
                return VerificationResult(
                    False, "certificate %r is in the untrusted store" % cert.subject
                )
            if self.is_revoked(cert):
                return VerificationResult(
                    False, "certificate serial %s is revoked" % cert.serial
                )
            if not cert.valid_at(at_time):
                return VerificationResult(
                    False, "certificate %r outside validity window" % cert.subject
                )
        if not leaf.allows(usage):
            return VerificationResult(
                False,
                "leaf %r lacks %r usage (has %s)"
                % (leaf.subject, usage, sorted(leaf.usages)),
            )
        for child, parent in zip(chain, chain[1:]):
            if child.issuer != parent.subject:
                return VerificationResult(
                    False,
                    "broken chain: %r issued by %r, next link is %r"
                    % (child.subject, child.issuer, parent.subject),
                )
            if not parent.allows(KEY_USAGE_CA):
                return VerificationResult(
                    False, "intermediate %r is not a CA" % parent.subject
                )
            if not child.verify_signature(parent.public_key):
                return VerificationResult(
                    False, "bad signature on %r" % child.subject
                )
        top = chain[-1]
        root = self._roots.get(top.issuer)
        if root is None:
            return VerificationResult(
                False, "issuer %r is not a trusted root" % top.issuer
            )
        if self.is_untrusted(root):
            return VerificationResult(False, "root %r is untrusted" % root.subject)
        if not top.verify_signature(root.public_key):
            return VerificationResult(False, "bad signature on %r" % top.subject)
        return VerificationResult(True, "chain verifies to root %r" % root.subject,
                                  signer=leaf.subject)

    def verify_code_signature(self, image_bytes, pe_file, at_time=0):
        """Full Authenticode-style check on a parsed PE image.

        Verifies that (1) a signature is present, (2) the chain verifies
        for code signing, and (3) the leaf key's signature covers exactly
        the image's signed span under the chain's digest algorithm.
        """
        signature = extract_signature(pe_file)
        if signature is None:
            return VerificationResult(False, "image is unsigned")
        chain_result = self.verify_chain(signature.chain, at_time=at_time)
        if not chain_result:
            return chain_result
        covered = image_bytes[: pe_file.signed_span]
        leaf = signature.leaf
        if not leaf.public_key.verify(covered, signature.signature, signature.algorithm):
            return VerificationResult(False, "image digest mismatch")
        return VerificationResult(
            True,
            "image signed by %r (%s)" % (leaf.subject, signature.algorithm),
            signer=leaf.subject,
        )

    def image_digest(self, image_bytes, pe_file, algorithm="sha256"):
        """Digest of the signed span — what an analyst fingerprints."""
        return digest(algorithm, image_bytes[: pe_file.signed_span])
