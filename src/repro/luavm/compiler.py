"""AST -> bytecode compiler for the Lua subset.

Lowers the parser's tuple AST (:mod:`repro.luavm.parser`) to the stack
bytecode of :mod:`repro.luavm.code`, preserving the tree walker's
observable semantics exactly — evaluation order (assignment values
before targets, table-constructor values before keys, method lookup
before argument evaluation), scope behaviour (chunk top-level ``local``
bindings land in the global environment; every block entered at runtime
gets a fresh scope so per-iteration closures capture distinct
variables), and error types.  See the :mod:`repro.luavm.interpreter`
docstring for the shared semantic spec.

Two compile-time transforms:

* **Constant folding** — arithmetic, concat, comparisons, ``and``/
  ``or``, and unary operators over literal operands evaluate at compile
  time *through the shared semantic helpers*, so a folded result is
  bit-identical to runtime evaluation.  An operation that would raise
  (``1/0``, ``1 .. nil``) is left unfolded: the error must stay at
  runtime, on the execution path that reaches it.
* **Jump patching** — forward branches are emitted with a placeholder
  target and patched once the destination is known; ``break`` unwinds
  the exact number of block scopes entered since its loop.

The module also owns the cross-replica compile cache: chunks are keyed
by the SHA-256 of their source, so a Flame sweep compiles each module
script once per process no matter how many replicas instantiate it.
"""

import hashlib

from repro.luavm import code as C
from repro.luavm.code import Chunk, Proto
from repro.luavm.errors import LuaRuntimeError, LuaSyntaxError
from repro.luavm.interpreter import (
    _truthy,
    lua_compare,
    lua_concat,
    lua_eq,
    parse,
)

_CONST_TAGS = ("number", "string", "nil", "true", "false")

_CLOSURE_TAGS = ("function", "local_function", "function_expr")

#: Comparison operators and their JCMPF kind operand.
_CMP_KINDS = {"==": 0, "~=": 1, "<": 2, "<=": 3, ">": 4, ">=": 5}


def _contains_closure(node):
    """True when the AST fragment creates any function value.

    Gates the loop scope-hoisting optimisation: per-iteration scope
    freshness is only observable by a closure capturing it.
    """
    if isinstance(node, (tuple, list)):
        if node and node[0] in _CLOSURE_TAGS:
            return True
        return any(_contains_closure(child) for child in node)
    return False

_BINOP_OPS = {
    "+": C.ADD, "-": C.SUB, "*": C.MUL, "/": C.DIV, "%": C.MOD,
    "..": C.CONCAT, "==": C.EQ, "~=": C.NE,
    "<": C.LT, "<=": C.LE, ">": C.GT, ">=": C.GE,
}

_UNOP_OPS = {"not": C.NOT, "-": C.NEG, "#": C.LEN}


class _Scope:
    """Compile-time image of one runtime scope level.

    ``names`` maps a variable to its runtime slot index (1-based: slot 0
    of the runtime list is the parent link).  Redeclaring a name in the
    same scope reuses its slot — the tree walker overwrites the binding
    in place, and closures created in between must see the update.
    """

    __slots__ = ("parent", "names", "nslots")

    def __init__(self, parent):
        self.parent = parent
        self.names = {}
        self.nslots = 0

    def declare(self, name):
        slot = self.names.get(name)
        if slot is None:
            self.nslots += 1
            slot = self.nslots
            self.names[name] = slot
        return slot


class _Loop:
    __slots__ = ("kind", "depth", "breaks")

    def __init__(self, kind, depth):
        self.kind = kind
        self.depth = depth
        self.breaks = []


class Compiler:
    """One-shot compiler: ``Compiler().compile(block)`` -> Chunk."""

    def __init__(self):
        self._consts = []
        self._const_map = {}
        self._protos = []
        # Per-proto state, saved/restored around nested function bodies.
        self._code = None
        self._scope = None
        self._depth = 0
        self._loops = []

    # -- entry points ------------------------------------------------------

    def compile(self, block, source_digest=""):
        self._compile_proto("main", [], block, toplevel=True)
        chunk = Chunk(self._consts, self._protos, source_digest)
        return chunk.validate()

    # -- emission helpers --------------------------------------------------

    def _emit(self, op, a=0, b=0):
        self._code.append((op, a, b))
        return len(self._code) - 1

    def _patch(self, index, target=None):
        op, a, b = self._code[index]
        self._code[index] = (op,
                             len(self._code) if target is None else target,
                             b)

    def _const(self, value):
        key = (type(value), value)
        index = self._const_map.get(key)
        if index is None:
            index = len(self._consts)
            self._consts.append(value)
            self._const_map[key] = index
        return index

    def _resolve(self, name):
        """(hops, slot) for a lexically visible local, else None."""
        hops = 0
        scope = self._scope
        while scope is not None:
            slot = scope.names.get(name)
            if slot is not None:
                return hops, slot
            hops += 1
            scope = scope.parent
        return None

    # -- protos ------------------------------------------------------------

    def _compile_proto(self, name, params, body, toplevel=False):
        index = len(self._protos)
        self._protos.append(None)  # reserve: CLOSURE refs by index
        saved = (self._code, self._scope, self._depth, self._loops)
        self._code = []
        self._depth = 0
        self._loops = []
        root = None
        if not toplevel:
            # Params and the body's top-level locals share the call
            # scope, exactly like the tree walker's _call_value env.
            root = _Scope(self._scope)
            for param in params:
                root.declare(param)
            self._scope = root
        for statement in body:
            self._statement(statement)
        self._emit(C.RETNIL)
        nslots = root.nslots if root is not None else 0
        self._protos[index] = Proto(name, len(params), nslots, self._code)
        self._code, self._scope, self._depth, self._loops = saved
        return index

    # -- blocks ------------------------------------------------------------

    @staticmethod
    def _declares_locals(statements):
        return any(s[0] in ("local", "local_function") for s in statements)

    def _enter_block(self, force=False):
        """Open a runtime scope for a block; None when elided.

        Blocks that declare no locals skip the SCOPE/EXITSCOPE pair —
        an empty scope level is unobservable (closures and name
        resolution walk straight through it) and loop bodies are hot.
        """
        if not force:
            return None
        scope = _Scope(self._scope)
        self._scope = scope
        self._depth += 1
        return (scope, self._emit(C.SCOPE, 0))

    def _exit_block(self, token):
        if token is None:
            return
        scope, index = token
        op, _, b = self._code[index]
        self._code[index] = (op, scope.nslots, b)
        self._emit(C.EXITSCOPE, 1)
        self._scope = scope.parent
        self._depth -= 1

    def _block(self, statements, extra_names=()):
        token = self._enter_block(
            force=bool(extra_names) or self._declares_locals(statements))
        slots = [self._scope.declare(name) for name in extra_names]
        for statement in statements:
            self._statement(statement)
        self._exit_block(token)
        return slots, token

    # -- statements --------------------------------------------------------

    def _statement(self, node):
        tag = node[0]
        if tag == "local":
            _, name, expr = node
            # Value first, *then* the binding: `local x = x` reads the
            # outer x, as in the tree walker.
            if expr is None:
                self._emit(C.CONST, self._const(None))
            else:
                self._expression(expr)
            self._store_new_local(name)
        elif tag == "assign":
            _, target, expr = node
            self._expression(expr)  # value before target, per the tree
            if target[0] == "name":
                self._store_name(target[1])
            else:
                key = self._const_key(target[2])
                if key is not None:
                    self._expression(target[1])
                    self._emit(C.SETF, key)
                else:
                    self._expression(target[1])
                    self._expression(target[2])
                    self._emit(C.SETI)
        elif tag == "call_stmt":
            self._expression(node[1])
            self._emit(C.POP)
        elif tag == "function":
            _, path, params, body = node
            proto = self._compile_proto(".".join(path), params, body)
            self._emit(C.CLOSURE, proto)
            if len(path) == 1:
                self._store_name(path[0])
            else:
                self._load_name(path[0])
                for part in path[1:-1]:
                    self._emit(C.GETF, self._const(part))
                self._emit(C.SETM, self._const(path[-1]),
                           self._const(path[0]))
        elif tag == "local_function":
            _, name, params, body = node
            # Declare before compiling the body so the function can
            # recurse through its own (still-nil) binding.
            if self._scope is not None:
                slot = self._scope.declare(name)
                proto = self._compile_proto(name, params, body)
                self._emit(C.CLOSURE, proto)
                self._emit(C.SETL, 0, slot)
            else:
                proto = self._compile_proto(name, params, body)
                self._emit(C.CLOSURE, proto)
                self._emit(C.SETG, self._const(name))
        elif tag == "if":
            self._if_statement(node)
        elif tag == "while":
            self._while_statement(node)
        elif tag == "fornum":
            self._fornum_statement(node)
        elif tag == "return":
            if node[1] is None:
                self._emit(C.RETNIL)
            else:
                self._expression(node[1])
                self._emit(C.RET)
        elif tag == "break":
            if not self._loops:
                raise LuaSyntaxError("'break' outside a loop", 0)
            loop = self._loops[-1]
            unwind = self._depth - loop.depth
            if unwind:
                self._emit(C.EXITSCOPE, unwind)
            if loop.kind == "for":
                self._emit(C.POPLOOP)
            loop.breaks.append(self._emit(C.JMP, -1))
        else:
            raise LuaRuntimeError("unknown statement tag %r" % tag)

    def _cond_jumpf(self, cond):
        """Emit a (folded, non-constant) condition plus its
        jump-if-false; returns the jump's patch index.

        A bare comparison fuses into one JCMPF instruction — `if a == b
        then` is the dominant conditional shape in the module scripts.
        """
        if cond[0] == "binop" and cond[1] in _CMP_KINDS:
            self._expression(cond[2])
            self._expression(cond[3])
            return self._emit(C.JCMPF, -1, _CMP_KINDS[cond[1]])
        self._expression(cond)
        return self._emit(C.JMPF, -1)

    def _if_statement(self, node):
        _, arms, else_block = node
        end_jumps = []
        for cond, block in arms:
            cond = _fold(cond)
            if cond[0] in _CONST_TAGS:
                if not _truthy(_const_value(cond)):
                    continue  # arm can never run
                # Constant-true arm: it always runs, later arms never.
                self._block(block)
                else_block = None
                break
            skip = self._cond_jumpf(cond)
            self._block(block)
            end_jumps.append(self._emit(C.JMP, -1))
            self._patch(skip)
        if else_block is not None:
            self._block(else_block)
        for index in end_jumps:
            self._patch(index)

    def _while_statement(self, node):
        _, cond, block = node
        cond = _fold(cond)
        if cond[0] in _CONST_TAGS and not _truthy(_const_value(cond)):
            return  # `while false` never runs its body
        hoist = self._declares_locals(block) and \
            not _contains_closure(block)
        # Same scope-hoisting rule as numeric for: a closure-free body
        # keeps one scope for the whole loop.  The condition compiles
        # before the body's locals are declared, so its names resolve
        # to outer bindings either way.
        token = self._enter_block(force=True) if hoist else None
        top = len(self._code)
        skip = None
        if not (cond[0] in _CONST_TAGS):
            skip = self._cond_jumpf(cond)
        loop = _Loop("while", self._depth)
        self._loops.append(loop)
        if hoist:
            for statement in block:
                self._statement(statement)
        else:
            self._block(block)
        self._loops.pop()
        self._emit(C.JMP, top)
        if skip is not None:
            self._patch(skip)
        for index in loop.breaks:
            self._patch(index)
        if hoist:
            self._exit_block(token)

    def _for_bound(self, expr):
        # Each bound is type-checked as it is evaluated, matching the
        # tree walker's _eval_number call order; a bound that folds to
        # a numeric literal cannot fail the check, so it is elided.
        expr = _fold(expr)
        self._expression(expr)
        if expr[0] != "number":
            self._emit(C.CHECKNUM)

    def _fornum_statement(self, node):
        _, var, start_e, stop_e, step_e, block = node
        self._for_bound(start_e)
        self._for_bound(stop_e)
        if step_e is None:
            self._emit(C.CONST, self._const(1))
        else:
            self._for_bound(step_e)
        if not _contains_closure(block):
            # Per-iteration scope freshness is only observable through
            # closures; a closure-free body gets one scope allocated
            # around the whole loop instead of one per iteration.
            token = self._enter_block(force=True)
            slot = self._scope.declare(var)
            # FORPREP/FORLOOP write the counter slot themselves (the
            # scope outlives the iteration), so no FORVAR per pass.
            prep = self._emit(C.FORPREP, -1, slot)
            body_top = len(self._code)
            loop = _Loop("for", self._depth)
            self._loops.append(loop)
            for statement in block:
                self._statement(statement)
            self._loops.pop()
            self._emit(C.FORLOOP, body_top, slot)
            self._patch(prep)
            for index in loop.breaks:
                self._patch(index)
            self._exit_block(token)
            return
        prep = self._emit(C.FORPREP, -1)
        body_top = len(self._code)
        loop = _Loop("for", self._depth)
        self._loops.append(loop)
        # The loop body opens a scope per iteration: the control
        # variable is a fresh local each time around, and closures in
        # the body capture that iteration's scope.
        token = self._enter_block(force=True)
        slot = self._scope.declare(var)
        self._emit(C.FORVAR, 0, slot)
        for statement in block:
            self._statement(statement)
        self._exit_block(token)
        self._loops.pop()
        self._emit(C.FORLOOP, body_top)
        self._patch(prep)
        for index in loop.breaks:
            self._patch(index)

    def _const_key(self, node):
        """Constant-pool index for a literal table key, else ``None``.

        Keys are normalized at compile time exactly like
        ``LuaTable._normalize_key`` (integer-valued floats fold to int)
        so the fused GETF/SETF/SETKC handlers can hit ``_data`` without
        a runtime normalization step.
        """
        node = _fold(node)
        tag = node[0]
        if tag == "string":
            return self._const(node[1])
        if tag == "number":
            value = node[1]
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            return self._const(value)
        return None

    # -- names -------------------------------------------------------------

    def _store_new_local(self, name):
        if self._scope is None:
            # Chunk top level: the tree walker declares locals straight
            # into the global environment.
            self._emit(C.SETG, self._const(name))
        else:
            self._emit(C.SETL, 0, self._scope.declare(name))

    def _store_name(self, name):
        resolved = self._resolve(name)
        if resolved is None:
            self._emit(C.SETG, self._const(name))
        else:
            self._emit(C.SETL, resolved[0], resolved[1])

    def _load_name(self, name):
        resolved = self._resolve(name)
        if resolved is None:
            self._emit(C.GETG, self._const(name))
        else:
            self._emit(C.GETL, resolved[0], resolved[1])

    # -- expressions -------------------------------------------------------

    def _expression(self, node):
        node = _fold(node)
        tag = node[0]
        if tag == "number" or tag == "string":
            self._emit(C.CONST, self._const(node[1]))
        elif tag == "nil":
            self._emit(C.CONST, self._const(None))
        elif tag == "true":
            self._emit(C.CONST, self._const(True))
        elif tag == "false":
            self._emit(C.CONST, self._const(False))
        elif tag == "name":
            self._load_name(node[1])
        elif tag == "index":
            self._index_expression(node)
        elif tag == "call":
            self._expression(node[1])
            for arg in node[2]:
                self._expression(arg)
            self._emit(C.CALL, len(node[2]))
        elif tag == "method":
            self._expression(node[1])
            self._emit(C.METH, self._const(node[2]))
            for arg in node[3]:
                self._expression(arg)
            self._emit(C.CALL, len(node[3]) + 1)
        elif tag == "binop":
            self._binop(node)
        elif tag == "unop":
            self._expression(node[2])
            self._emit(_UNOP_OPS[node[1]])
        elif tag == "function_expr":
            proto = self._compile_proto("<anonymous>", node[1], node[2])
            self._emit(C.CLOSURE, proto)
        elif tag == "table":
            self._emit(C.NEWTABLE)
            index = 1
            for key_node, value_node in node[1]:
                # Value before key, matching the tree walker.
                self._expression(value_node)
                if key_node is None:
                    self._emit(C.SETIDX, index)
                    index += 1
                else:
                    key = self._const_key(key_node)
                    if key is not None:
                        self._emit(C.SETKC, key)
                    else:
                        self._expression(key_node)
                        self._emit(C.SETKEY)
        else:
            raise LuaRuntimeError("unknown expression tag %r" % tag)

    def _index_expression(self, node):
        """``obj[key]`` with superinstruction selection.

        ``name.field`` / ``name[local]`` shapes — the hot patterns in
        the Flame module scripts — fuse the whole read into one
        instruction; everything else falls back to the generic forms.
        Both operands here are side-effect-free loads, so fusing cannot
        change evaluation order observably.
        """
        obj_node = _fold(node[1])
        key = self._const_key(node[2])
        if obj_node[0] == "name":
            resolved = self._resolve(obj_node[1])
            packable = resolved is not None and resolved[0] < 0x8000 \
                and resolved[1] < 0x10000
            if key is not None:
                if resolved is None:
                    self._emit(C.GETGF, self._const(obj_node[1]), key)
                    return
                if packable:
                    self._emit(C.GETLF, key,
                               (resolved[0] << 16) | resolved[1])
                    return
            else:
                key_node = _fold(node[2])
                if key_node[0] == "name":
                    kres = self._resolve(key_node[1])
                    if kres is not None and kres[0] == 0:
                        if resolved is None:
                            self._emit(C.GETGLI,
                                       self._const(obj_node[1]), kres[1])
                            return
                        if packable:
                            self._emit(
                                C.GETLLI,
                                (resolved[0] << 16) | resolved[1],
                                kres[1])
                            return
        if key is not None:
            self._expression(node[1])
            self._emit(C.GETF, key)
        else:
            self._expression(node[1])
            self._expression(node[2])
            self._emit(C.GETI)

    def _binop(self, node):
        _, op, left, right = node
        if op == "and" or op == "or":
            self._expression(left)
            skip = self._emit(C.AND if op == "and" else C.OR, -1)
            self._expression(right)
            self._patch(skip)
            return
        self._expression(left)
        self._expression(right)
        self._emit(_BINOP_OPS[op])


# -- constant folding ---------------------------------------------------------

def _const_value(node):
    tag = node[0]
    if tag == "number" or tag == "string":
        return node[1]
    if tag == "nil":
        return None
    return tag == "true"


def _value_node(value):
    if value is None:
        return ("nil",)
    if value is True:
        return ("true",)
    if value is False:
        return ("false",)
    if isinstance(value, str):
        return ("string", value)
    return ("number", value)


def _fold(node):
    """Fold constant subtrees; return the node unchanged otherwise.

    Folding evaluates through the shared semantic helpers, so results
    are bit-identical to runtime evaluation; anything that would raise
    is left for the runtime to raise on the executing path.
    """
    tag = node[0]
    if tag == "binop":
        op = node[1]
        left = _fold(node[2])
        right = _fold(node[3])
        if left[0] in _CONST_TAGS:
            lval = _const_value(left)
            if op == "and":
                return left if not _truthy(lval) else right
            if op == "or":
                return left if _truthy(lval) else right
            if right[0] in _CONST_TAGS:
                folded = _fold_binop(op, lval, _const_value(right))
                if folded is not None:
                    return folded
        if left is not node[2] or right is not node[3]:
            return ("binop", op, left, right)
        return node
    if tag == "unop":
        operand = _fold(node[2])
        if operand[0] in _CONST_TAGS:
            folded = _fold_unop(node[1], _const_value(operand))
            if folded is not None:
                return folded
        if operand is not node[2]:
            return ("unop", node[1], operand)
        return node
    return node


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _fold_binop(op, left, right):
    try:
        if op == "==":
            return _value_node(lua_eq(left, right))
        if op == "~=":
            return _value_node(not lua_eq(left, right))
        if op == "..":
            return _value_node(lua_concat(left, right))
        if op in ("<", "<=", ">", ">="):
            return _value_node(lua_compare(op, left, right))
        if not _is_number(left) or not _is_number(right):
            return None  # runtime raises "arithmetic on non-number"
        if op == "+":
            return _value_node(left + right)
        if op == "-":
            return _value_node(left - right)
        if op == "*":
            return _value_node(left * right)
        if op == "/" and right != 0:
            return _value_node(left / right)
        if op == "%" and right != 0:
            return _value_node(left % right)
    except LuaRuntimeError:
        pass  # leave the error on the runtime path
    return None


def _fold_unop(op, value):
    if op == "not":
        return _value_node(not _truthy(value))
    if op == "-" and _is_number(value):
        return _value_node(-value)
    if op == "#" and isinstance(value, str):
        return _value_node(len(value))
    return None


# -- public API + compile cache -----------------------------------------------

def source_digest(source):
    """SHA-256 of the script source — the compile-cache key."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def compile_source(source):
    """Parse and compile a script to a fresh validated :class:`Chunk`."""
    return Compiler().compile(parse(source), source_digest(source))


_CACHE = {}
_STATS = {"hits": 0, "misses": 0}


def compile_cached(source):
    """Compile through the process-wide source-digest-keyed cache.

    Chunks are immutable, so the cached object is shared directly:
    every Flame replica in a sweep worker reuses one compilation per
    distinct module source (built-ins *and* hot-swapped updates).
    """
    key = source_digest(source)
    chunk = _CACHE.get(key)
    if chunk is not None:
        _STATS["hits"] += 1
        return chunk
    chunk = compile_source(source)
    _CACHE[key] = chunk
    _STATS["misses"] += 1
    return chunk


def clear_compile_cache():
    """Drop all cached chunks and reset the hit/miss counters."""
    _CACHE.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0


def compile_cache_stats():
    """Snapshot of cache effectiveness: hits, misses, entries."""
    return {"hits": _STATS["hits"], "misses": _STATS["misses"],
            "entries": len(_CACHE)}
