"""Standard library exposed to scripts: the pieces Flame modules use."""

import math


def build_stdlib(vm):
    """Return the global bindings installed into a fresh VM."""
    from repro.luavm.interpreter import LuaTable, _lua_str

    def lua_print(*args):
        vm.output.append("\t".join(_lua_str(a) for a in args))

    def lua_tostring(value):
        return _lua_str(value)

    def lua_tonumber(value):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return value
        if isinstance(value, str):
            try:
                return float(value) if "." in value else int(value)
            except ValueError:
                return None
        return None

    def lua_type(value):
        if value is None:
            return "nil"
        if isinstance(value, bool):
            return "boolean"
        if isinstance(value, (int, float)):
            return "number"
        if isinstance(value, str):
            return "string"
        if isinstance(value, LuaTable):
            return "table"
        return "function"

    # table library -----------------------------------------------------------
    def table_insert(table, value):
        table.set(table.length() + 1, value)

    def table_remove(table, index=None):
        length = table.length()
        if length == 0:
            return None
        if index is None:
            index = length
        index = int(index)
        value = table.get(index)
        for i in range(index, length):
            table.set(i, table.get(i + 1))
        table.set(length, None)
        return value

    def table_concat(table, separator=""):
        return separator.join(_lua_str(v) for v in table.array_items())

    table_lib = LuaTable()
    table_lib.set("insert", table_insert)
    table_lib.set("remove", table_remove)
    table_lib.set("concat", table_concat)

    # string library ------------------------------------------------------------
    def string_sub(text, start, stop=None):
        start = int(start)
        length = len(text)
        if stop is None:
            stop = length
        stop = int(stop)
        if start < 0:
            start = max(length + start + 1, 1)
        if stop < 0:
            stop = length + stop + 1
        if start < 1:
            start = 1
        return text[start - 1 : stop]

    def string_find(text, fragment):
        position = text.find(fragment)
        return None if position == -1 else position + 1

    def string_format(template, *args):
        # Lua %d wants integer conversion; python is stricter about floats.
        coerced = []
        for arg in args:
            if isinstance(arg, float) and arg.is_integer():
                coerced.append(int(arg))
            else:
                coerced.append(arg)
        return template % tuple(coerced)

    string_lib = LuaTable()
    string_lib.set("len", lambda s: len(s))
    string_lib.set("sub", string_sub)
    string_lib.set("upper", lambda s: s.upper())
    string_lib.set("lower", lambda s: s.lower())
    string_lib.set("find", string_find)
    string_lib.set("format", string_format)
    string_lib.set("rep", lambda s, n: s * int(n))

    # math library ----------------------------------------------------------------
    math_lib = LuaTable()
    math_lib.set("floor", lambda x: math.floor(x))
    math_lib.set("ceil", lambda x: math.ceil(x))
    math_lib.set("abs", lambda x: abs(x))
    math_lib.set("max", lambda *xs: max(xs))
    math_lib.set("min", lambda *xs: min(xs))
    math_lib.set("huge", math.inf)

    return {
        "print": lua_print,
        "tostring": lua_tostring,
        "tonumber": lua_tonumber,
        "type": lua_type,
        "table": table_lib,
        "string": string_lib,
        "math": math_lib,
    }
