"""Tree-walking evaluator for the Lua subset — the reference backend.

This module is also the *semantic specification* both backends cite:
the bytecode VM (:mod:`repro.luavm.bytevm`) must agree with the
evaluator here on every observable behaviour, and the differential
fuzz suite (``tests/test_luavm_differential.py``) enforces it.  The
load-bearing subset rules, pinned after the fuzzing work surfaced two
ambiguities:

**Table length / border semantics.**  ``#t`` is the length of the
contiguous integer-key prefix starting at 1: the first missing index is
the border, and anything beyond a nil hole is not part of the array
part (``{1, nil, 3}`` has length 1).  Storing ``nil`` *removes* the
key — a table never holds a nil value, however it was built, so the
border is well defined.  Host-constructed tables follow the same rule:
:class:`LuaTable`'s constructor routes through :meth:`LuaTable.set`, so
float keys normalise (``1.0`` is ``1``) and ``None`` values become
holes instead of phantom entries that would inflate ``#t``.

**Coercion in ``..`` versus comparison operators.**  Concatenation
coerces *numbers only*: ``"v" .. 2`` is ``"v2"`` (integral floats drop
the ``.0``), while nil, booleans, tables, and functions raise
``attempt to concatenate a <type> value``.  Order comparisons
(``< <= > >=``) coerce *nothing*: both operands must be numbers, or
both strings (bytewise order); any other pairing — including booleans,
which Python would happily order as integers — raises ``cannot
compare X with Y``.  Equality (``== ~=``) never coerces across types:
booleans are only equal to booleans (``1 == true`` is ``false``, not
Python's ``True``), numbers compare by value (``1 == 1.0``), and
tables compare by identity.

**Call depth.**  Both backends cap Lua-level call nesting at
:data:`LuaVM.MAX_CALL_DEPTH` and raise :class:`LuaRuntimeError` on
overflow, so hostile recursion exhausts neither the Python stack (tree
walker) nor memory (bytecode frame list), and both abort the same way.

The helpers :func:`lua_eq`, :func:`lua_compare`, and
:func:`lua_concat` implement the coercion rules once; both backends
call them, so the spec cannot fork.
"""

from repro.luavm.errors import LuaRuntimeError
from repro.luavm.parser import parse


class LuaTable:
    """Lua's one data structure: a hash map with an array part.

    Integer keys starting at 1 form the array part; ``#t`` is the length
    of the contiguous prefix, and :func:`ipairs`-style iteration walks it.
    """

    def __init__(self, items=None):
        self._data = {}
        if items:
            for key, value in items.items():
                # Through set(): normalise keys and drop None values, so
                # host-built tables obey the same border semantics as
                # script-built ones (a None value is a hole, not an
                # entry that #t would count).
                self.set(key, value)

    def get(self, key):
        return self._data.get(_normalize_key(key))

    def set(self, key, value):
        key = _normalize_key(key)
        if value is None:
            self._data.pop(key, None)
        else:
            self._data[key] = value

    def length(self):
        """``#t``: the border of the array part.

        The contiguous integer-key prefix from 1; the first missing
        index ends it, so keys beyond a nil hole never count (see the
        module docstring for the pinned border semantics).
        """
        n = 0
        while (n + 1) in self._data:
            n += 1
        return n

    def array_items(self):
        """Values at 1..#t in order."""
        return [self._data[i] for i in range(1, self.length() + 1)]

    def keys(self):
        return list(self._data.keys())

    def to_dict(self):
        """Shallow python-dict view (for host-side inspection)."""
        return dict(self._data)

    def __repr__(self):
        return "LuaTable(%d entries)" % len(self._data)


def _normalize_key(key):
    # Lua treats 1.0 and 1 as the same key.
    if isinstance(key, float) and key.is_integer():
        return int(key)
    return key


class LuaFunction:
    """A closure: parameter names, body, and defining environment."""

    __slots__ = ("params", "body", "env", "name")

    def __init__(self, params, body, env, name="?"):
        self.params = params
        self.body = body
        self.env = env
        self.name = name

    def __repr__(self):
        return "LuaFunction(%s)" % self.name


class _Env:
    """Lexical scope chain."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent=None):
        self.vars = {}
        self.parent = parent

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def assign(self, name, value):
        """Set an existing binding, else create a global."""
        scope = self
        while scope is not None:
            if name in scope.vars:
                scope.vars[name] = value
                return
            if scope.parent is None:
                scope.vars[name] = value  # new global
                return
            scope = scope.parent

    def declare(self, name, value):
        self.vars[name] = value


class _Break(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


def _truthy(value):
    # Lua truth: only nil and false are false.
    return value is not None and value is not False


def _lua_type_name(value):
    """The type name scripts see (used in error messages)."""
    if value is None:
        return "nil"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, LuaTable):
        return "table"
    return "function"


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def lua_eq(left, right):
    """``==`` per the module-docstring spec: no cross-type coercion.

    Booleans only equal booleans (Python would treat ``1 == True`` as
    true); numbers compare by value; tables by identity (LuaTable has
    no ``__eq__``, so ``==`` falls back to ``is``).
    """
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right
    return left == right


def lua_compare(op, left, right):
    """``< <= > >=`` per the spec: numbers with numbers, strings with
    strings, nothing else — booleans are *not* numbers here even though
    Python orders them as integers."""
    if (_is_number(left) and _is_number(right)) or \
            (isinstance(left, str) and isinstance(right, str)):
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    raise LuaRuntimeError("cannot compare %s with %s"
                          % (type(left).__name__, type(right).__name__))


def lua_concat(left, right):
    """``..`` per the spec: strings and numbers only; integral floats
    render without the ``.0``."""
    for value in (left, right):
        if not isinstance(value, str) and not _is_number(value):
            raise LuaRuntimeError("attempt to concatenate a %s value"
                                  % _lua_type_name(value))
    return _lua_str(left) + _lua_str(right)


class LuaVM:
    """One interpreter instance with its own global environment.

    Usage::

        vm = LuaVM()
        vm.register("host_list_files", lambda ext: [...])
        vm.run(script_source)
        result = vm.call("collect", "docx")
    """

    DEFAULT_BUDGET = 2_000_000

    #: Maximum Lua-level call nesting, enforced by both backends (see
    #: module docstring): deeper recursion raises LuaRuntimeError
    #: instead of exhausting the Python stack.
    MAX_CALL_DEPTH = 200

    #: Which implementation this is, mirroring TraceLog.query_linear's
    #: role: "tree" is the differential reference the bytecode backend
    #: is fuzzed against.
    backend = "tree"

    def __init__(self, instruction_budget=DEFAULT_BUDGET):
        self._globals = _Env()
        self._budget = instruction_budget
        self._steps = 0
        self._depth = 0
        #: Lines produced by the script's print().
        self.output = []
        self._install_stdlib()

    # -- public API -------------------------------------------------------------

    def register(self, name, function):
        """Expose a python callable to scripts as a global function.

        Arguments cross the boundary as plain python values (tables
        become lists/dicts) and the return value is converted back, so
        host APIs never see VM internals.
        """

        def bridge(*args):
            return _to_lua(function(*[_from_lua(a) for a in args]))

        bridge.__name__ = "lua_bridge_%s" % name
        self._globals.declare(name, bridge)

    def set_global(self, name, value):
        self._globals.declare(name, _to_lua(value))

    def get_global(self, name):
        return _from_lua(self._globals.lookup(name))

    def run(self, source):
        """Parse and execute a chunk in the global environment."""
        block = parse(source)
        self._steps = 0
        try:
            self._exec_block(block, self._globals)
        except _Return as ret:
            return _from_lua(ret.value)
        return None

    def call(self, name, *args):
        """Call a global function defined by previously run chunks."""
        function = self._globals.lookup(name)
        if function is None:
            raise LuaRuntimeError("attempt to call undefined function %r" % name)
        self._steps = 0
        return _from_lua(self._call_value(function, [_to_lua(a) for a in args]))

    def has_function(self, name):
        value = self._globals.lookup(name)
        return isinstance(value, LuaFunction) or callable(value)

    # -- stdlib -------------------------------------------------------------------

    def _install_stdlib(self):
        from repro.luavm.stdlib import build_stdlib

        for name, value in build_stdlib(self).items():
            self._globals.declare(name, value)

    # -- execution ------------------------------------------------------------------

    def _tick(self):
        self._steps += 1
        if self._steps > self._budget:
            raise LuaRuntimeError(
                "instruction budget exhausted (%d steps)" % self._budget
            )

    def _exec_block(self, block, env):
        for statement in block:
            self._exec_statement(statement, env)

    def _exec_statement(self, node, env):
        self._tick()
        tag = node[0]
        if tag == "local":
            _, name, expr = node
            env.declare(name, self._eval(expr, env) if expr is not None else None)
        elif tag == "assign":
            _, target, expr = node
            value = self._eval(expr, env)
            if target[0] == "name":
                env.assign(target[1], value)
            else:
                obj = self._eval(target[1], env)
                key = self._eval(target[2], env)
                if not isinstance(obj, LuaTable):
                    raise LuaRuntimeError("attempt to index a non-table value")
                obj.set(key, value)
        elif tag == "call_stmt":
            self._eval(node[1], env)
        elif tag == "function":
            _, path, params, body = node
            function = LuaFunction(params, body, env, name=".".join(path))
            if len(path) == 1:
                env.assign(path[0], function)
            else:
                obj = env.lookup(path[0])
                for part in path[1:-1]:
                    obj = obj.get(part)
                if not isinstance(obj, LuaTable):
                    raise LuaRuntimeError(
                        "cannot define method on non-table %r" % path[0]
                    )
                obj.set(path[-1], function)
        elif tag == "local_function":
            _, name, params, body = node
            env.declare(name, None)
            env.vars[name] = LuaFunction(params, body, env, name=name)
        elif tag == "if":
            _, arms, else_block = node
            for cond, block in arms:
                if _truthy(self._eval(cond, env)):
                    self._exec_block(block, _Env(env))
                    return
            if else_block is not None:
                self._exec_block(else_block, _Env(env))
        elif tag == "while":
            _, cond, block = node
            while _truthy(self._eval(cond, env)):
                self._tick()
                try:
                    self._exec_block(block, _Env(env))
                except _Break:
                    break
        elif tag == "fornum":
            _, var, start_e, stop_e, step_e, block = node
            start = self._eval_number(start_e, env)
            stop = self._eval_number(stop_e, env)
            step = self._eval_number(step_e, env) if step_e is not None else 1
            if step == 0:
                raise LuaRuntimeError("'for' step is zero")
            value = start
            while (step > 0 and value <= stop) or (step < 0 and value >= stop):
                self._tick()
                scope = _Env(env)
                scope.declare(var, value)
                try:
                    self._exec_block(block, scope)
                except _Break:
                    break
                value += step
        elif tag == "return":
            raise _Return(self._eval(node[1], env) if node[1] is not None else None)
        elif tag == "break":
            raise _Break()
        else:
            raise LuaRuntimeError("unknown statement tag %r" % tag)

    def _eval_number(self, node, env):
        value = self._eval(node, env)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise LuaRuntimeError("numeric expression expected")
        return value

    def _eval(self, node, env):
        self._tick()
        tag = node[0]
        if tag == "number" or tag == "string":
            return node[1]
        if tag == "nil":
            return None
        if tag == "true":
            return True
        if tag == "false":
            return False
        if tag == "name":
            return env.lookup(node[1])
        if tag == "index":
            obj = self._eval(node[1], env)
            key = self._eval(node[2], env)
            if isinstance(obj, LuaTable):
                return obj.get(key)
            if obj is None:
                raise LuaRuntimeError("attempt to index a nil value")
            raise LuaRuntimeError("attempt to index a %s value" % type(obj).__name__)
        if tag == "call":
            function = self._eval(node[1], env)
            args = [self._eval(a, env) for a in node[2]]
            return self._call_value(function, args)
        if tag == "method":
            obj = self._eval(node[1], env)
            if not isinstance(obj, LuaTable):
                raise LuaRuntimeError("attempt to call method on non-table")
            function = obj.get(node[2])
            args = [obj] + [self._eval(a, env) for a in node[3]]
            return self._call_value(function, args)
        if tag == "binop":
            return self._binop(node[1], node[2], node[3], env)
        if tag == "unop":
            return self._unop(node[1], node[2], env)
        if tag == "function_expr":
            return LuaFunction(node[1], node[2], env, name="<anonymous>")
        if tag == "table":
            table = LuaTable()
            index = 1
            for key_node, value_node in node[1]:
                value = self._eval(value_node, env)
                if key_node is None:
                    table.set(index, value)
                    index += 1
                else:
                    table.set(self._eval(key_node, env), value)
            return table
        raise LuaRuntimeError("unknown expression tag %r" % tag)

    def _call_value(self, function, args):
        if isinstance(function, LuaFunction):
            if self._depth >= self.MAX_CALL_DEPTH:
                raise LuaRuntimeError(
                    "call stack overflow (depth %d)" % self.MAX_CALL_DEPTH
                )
            scope = _Env(function.env)
            for i, param in enumerate(function.params):
                scope.declare(param, args[i] if i < len(args) else None)
            self._depth += 1
            try:
                self._exec_block(function.body, scope)
            except _Return as ret:
                return ret.value
            finally:
                self._depth -= 1
            return None
        if callable(function):
            # Stdlib and bridged host functions receive VM values as-is;
            # vm.register wraps host callables with the conversion layer.
            return _to_lua(function(*args))
        if function is None:
            raise LuaRuntimeError("attempt to call a nil value")
        raise LuaRuntimeError("attempt to call a %s value" % type(function).__name__)

    def _binop(self, op, left_node, right_node, env):
        if op == "and":
            left = self._eval(left_node, env)
            return self._eval(right_node, env) if _truthy(left) else left
        if op == "or":
            left = self._eval(left_node, env)
            return left if _truthy(left) else self._eval(right_node, env)
        left = self._eval(left_node, env)
        right = self._eval(right_node, env)
        if op == "..":
            return lua_concat(left, right)
        if op == "==":
            return lua_eq(left, right)
        if op == "~=":
            return not lua_eq(left, right)
        if op in ("<", "<=", ">", ">="):
            return lua_compare(op, left, right)
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)) \
                or isinstance(left, bool) or isinstance(right, bool):
            raise LuaRuntimeError("arithmetic on non-number")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise LuaRuntimeError("division by zero")
            result = left / right
            return result
        if op == "%":
            if right == 0:
                raise LuaRuntimeError("modulo by zero")
            return left % right
        raise LuaRuntimeError("unknown operator %r" % op)

    def _unop(self, op, operand_node, env):
        value = self._eval(operand_node, env)
        if op == "not":
            return not _truthy(value)
        if op == "-":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise LuaRuntimeError("arithmetic on non-number")
            return -value
        if op == "#":
            if isinstance(value, str):
                return len(value)
            if isinstance(value, LuaTable):
                return value.length()
            raise LuaRuntimeError("attempt to get length of a %s value"
                                  % type(value).__name__)
        raise LuaRuntimeError("unknown unary operator %r" % op)


def _lua_str(value):
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _to_lua(value):
    """Convert a python value crossing into the VM."""
    if isinstance(value, (list, tuple)):
        table = LuaTable()
        for i, item in enumerate(value, start=1):
            table.set(i, _to_lua(item))
        return table
    if isinstance(value, dict):
        table = LuaTable()
        for key, item in value.items():
            table.set(key, _to_lua(item))
        return table
    return value


def _from_lua(value):
    """Convert a VM value crossing back into python.

    Tables become lists when they are pure arrays, dicts otherwise.
    """
    if isinstance(value, LuaTable):
        length = value.length()
        if length and length == len(value.keys()):
            return [_from_lua(v) for v in value.array_items()]
        return {k: _from_lua(v) for k, v in value.to_dict().items()}
    return value
