"""Tree-walking evaluator for the Lua subset."""

from repro.luavm.errors import LuaRuntimeError
from repro.luavm.parser import parse


class LuaTable:
    """Lua's one data structure: a hash map with an array part.

    Integer keys starting at 1 form the array part; ``#t`` is the length
    of the contiguous prefix, and :func:`ipairs`-style iteration walks it.
    """

    def __init__(self, items=None):
        self._data = {}
        if items:
            for key, value in items.items():
                self._data[key] = value

    def get(self, key):
        return self._data.get(_normalize_key(key))

    def set(self, key, value):
        key = _normalize_key(key)
        if value is None:
            self._data.pop(key, None)
        else:
            self._data[key] = value

    def length(self):
        n = 0
        while (n + 1) in self._data:
            n += 1
        return n

    def array_items(self):
        """Values at 1..#t in order."""
        return [self._data[i] for i in range(1, self.length() + 1)]

    def keys(self):
        return list(self._data.keys())

    def to_dict(self):
        """Shallow python-dict view (for host-side inspection)."""
        return dict(self._data)

    def __repr__(self):
        return "LuaTable(%d entries)" % len(self._data)


def _normalize_key(key):
    # Lua treats 1.0 and 1 as the same key.
    if isinstance(key, float) and key.is_integer():
        return int(key)
    return key


class LuaFunction:
    """A closure: parameter names, body, and defining environment."""

    __slots__ = ("params", "body", "env", "name")

    def __init__(self, params, body, env, name="?"):
        self.params = params
        self.body = body
        self.env = env
        self.name = name

    def __repr__(self):
        return "LuaFunction(%s)" % self.name


class _Env:
    """Lexical scope chain."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent=None):
        self.vars = {}
        self.parent = parent

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def assign(self, name, value):
        """Set an existing binding, else create a global."""
        scope = self
        while scope is not None:
            if name in scope.vars:
                scope.vars[name] = value
                return
            if scope.parent is None:
                scope.vars[name] = value  # new global
                return
            scope = scope.parent

    def declare(self, name, value):
        self.vars[name] = value


class _Break(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


def _truthy(value):
    # Lua truth: only nil and false are false.
    return value is not None and value is not False


class LuaVM:
    """One interpreter instance with its own global environment.

    Usage::

        vm = LuaVM()
        vm.register("host_list_files", lambda ext: [...])
        vm.run(script_source)
        result = vm.call("collect", "docx")
    """

    DEFAULT_BUDGET = 2_000_000

    def __init__(self, instruction_budget=DEFAULT_BUDGET):
        self._globals = _Env()
        self._budget = instruction_budget
        self._steps = 0
        #: Lines produced by the script's print().
        self.output = []
        self._install_stdlib()

    # -- public API -------------------------------------------------------------

    def register(self, name, function):
        """Expose a python callable to scripts as a global function.

        Arguments cross the boundary as plain python values (tables
        become lists/dicts) and the return value is converted back, so
        host APIs never see VM internals.
        """

        def bridge(*args):
            return _to_lua(function(*[_from_lua(a) for a in args]))

        bridge.__name__ = "lua_bridge_%s" % name
        self._globals.declare(name, bridge)

    def set_global(self, name, value):
        self._globals.declare(name, _to_lua(value))

    def get_global(self, name):
        return _from_lua(self._globals.lookup(name))

    def run(self, source):
        """Parse and execute a chunk in the global environment."""
        block = parse(source)
        self._steps = 0
        try:
            self._exec_block(block, self._globals)
        except _Return as ret:
            return _from_lua(ret.value)
        return None

    def call(self, name, *args):
        """Call a global function defined by previously run chunks."""
        function = self._globals.lookup(name)
        if function is None:
            raise LuaRuntimeError("attempt to call undefined function %r" % name)
        self._steps = 0
        return _from_lua(self._call_value(function, [_to_lua(a) for a in args]))

    def has_function(self, name):
        value = self._globals.lookup(name)
        return isinstance(value, LuaFunction) or callable(value)

    # -- stdlib -------------------------------------------------------------------

    def _install_stdlib(self):
        from repro.luavm.stdlib import build_stdlib

        for name, value in build_stdlib(self).items():
            self._globals.declare(name, value)

    # -- execution ------------------------------------------------------------------

    def _tick(self):
        self._steps += 1
        if self._steps > self._budget:
            raise LuaRuntimeError(
                "instruction budget exhausted (%d steps)" % self._budget
            )

    def _exec_block(self, block, env):
        for statement in block:
            self._exec_statement(statement, env)

    def _exec_statement(self, node, env):
        self._tick()
        tag = node[0]
        if tag == "local":
            _, name, expr = node
            env.declare(name, self._eval(expr, env) if expr is not None else None)
        elif tag == "assign":
            _, target, expr = node
            value = self._eval(expr, env)
            if target[0] == "name":
                env.assign(target[1], value)
            else:
                obj = self._eval(target[1], env)
                key = self._eval(target[2], env)
                if not isinstance(obj, LuaTable):
                    raise LuaRuntimeError("attempt to index a non-table value")
                obj.set(key, value)
        elif tag == "call_stmt":
            self._eval(node[1], env)
        elif tag == "function":
            _, path, params, body = node
            function = LuaFunction(params, body, env, name=".".join(path))
            if len(path) == 1:
                env.assign(path[0], function)
            else:
                obj = env.lookup(path[0])
                for part in path[1:-1]:
                    obj = obj.get(part)
                if not isinstance(obj, LuaTable):
                    raise LuaRuntimeError(
                        "cannot define method on non-table %r" % path[0]
                    )
                obj.set(path[-1], function)
        elif tag == "local_function":
            _, name, params, body = node
            env.declare(name, None)
            env.vars[name] = LuaFunction(params, body, env, name=name)
        elif tag == "if":
            _, arms, else_block = node
            for cond, block in arms:
                if _truthy(self._eval(cond, env)):
                    self._exec_block(block, _Env(env))
                    return
            if else_block is not None:
                self._exec_block(else_block, _Env(env))
        elif tag == "while":
            _, cond, block = node
            while _truthy(self._eval(cond, env)):
                self._tick()
                try:
                    self._exec_block(block, _Env(env))
                except _Break:
                    break
        elif tag == "fornum":
            _, var, start_e, stop_e, step_e, block = node
            start = self._eval_number(start_e, env)
            stop = self._eval_number(stop_e, env)
            step = self._eval_number(step_e, env) if step_e is not None else 1
            if step == 0:
                raise LuaRuntimeError("'for' step is zero")
            value = start
            while (step > 0 and value <= stop) or (step < 0 and value >= stop):
                self._tick()
                scope = _Env(env)
                scope.declare(var, value)
                try:
                    self._exec_block(block, scope)
                except _Break:
                    break
                value += step
        elif tag == "return":
            raise _Return(self._eval(node[1], env) if node[1] is not None else None)
        elif tag == "break":
            raise _Break()
        else:
            raise LuaRuntimeError("unknown statement tag %r" % tag)

    def _eval_number(self, node, env):
        value = self._eval(node, env)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise LuaRuntimeError("numeric expression expected")
        return value

    def _eval(self, node, env):
        self._tick()
        tag = node[0]
        if tag == "number" or tag == "string":
            return node[1]
        if tag == "nil":
            return None
        if tag == "true":
            return True
        if tag == "false":
            return False
        if tag == "name":
            return env.lookup(node[1])
        if tag == "index":
            obj = self._eval(node[1], env)
            key = self._eval(node[2], env)
            if isinstance(obj, LuaTable):
                return obj.get(key)
            if obj is None:
                raise LuaRuntimeError("attempt to index a nil value")
            raise LuaRuntimeError("attempt to index a %s value" % type(obj).__name__)
        if tag == "call":
            function = self._eval(node[1], env)
            args = [self._eval(a, env) for a in node[2]]
            return self._call_value(function, args)
        if tag == "method":
            obj = self._eval(node[1], env)
            if not isinstance(obj, LuaTable):
                raise LuaRuntimeError("attempt to call method on non-table")
            function = obj.get(node[2])
            args = [obj] + [self._eval(a, env) for a in node[3]]
            return self._call_value(function, args)
        if tag == "binop":
            return self._binop(node[1], node[2], node[3], env)
        if tag == "unop":
            return self._unop(node[1], node[2], env)
        if tag == "function_expr":
            return LuaFunction(node[1], node[2], env, name="<anonymous>")
        if tag == "table":
            table = LuaTable()
            index = 1
            for key_node, value_node in node[1]:
                value = self._eval(value_node, env)
                if key_node is None:
                    table.set(index, value)
                    index += 1
                else:
                    table.set(self._eval(key_node, env), value)
            return table
        raise LuaRuntimeError("unknown expression tag %r" % tag)

    def _call_value(self, function, args):
        if isinstance(function, LuaFunction):
            scope = _Env(function.env)
            for i, param in enumerate(function.params):
                scope.declare(param, args[i] if i < len(args) else None)
            try:
                self._exec_block(function.body, scope)
            except _Return as ret:
                return ret.value
            return None
        if callable(function):
            # Stdlib and bridged host functions receive VM values as-is;
            # vm.register wraps host callables with the conversion layer.
            return _to_lua(function(*args))
        if function is None:
            raise LuaRuntimeError("attempt to call a nil value")
        raise LuaRuntimeError("attempt to call a %s value" % type(function).__name__)

    def _binop(self, op, left_node, right_node, env):
        if op == "and":
            left = self._eval(left_node, env)
            return self._eval(right_node, env) if _truthy(left) else left
        if op == "or":
            left = self._eval(left_node, env)
            return left if _truthy(left) else self._eval(right_node, env)
        left = self._eval(left_node, env)
        right = self._eval(right_node, env)
        if op == "..":
            return _lua_str(left) + _lua_str(right)
        if op == "==":
            return left == right
        if op == "~=":
            return left != right
        if op in ("<", "<=", ">", ">="):
            try:
                if op == "<":
                    return left < right
                if op == "<=":
                    return left <= right
                if op == ">":
                    return left > right
                return left >= right
            except TypeError:
                raise LuaRuntimeError(
                    "cannot compare %s with %s"
                    % (type(left).__name__, type(right).__name__)
                ) from None
        if not isinstance(left, (int, float)) or not isinstance(right, (int, float)) \
                or isinstance(left, bool) or isinstance(right, bool):
            raise LuaRuntimeError("arithmetic on non-number")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise LuaRuntimeError("division by zero")
            result = left / right
            return result
        if op == "%":
            if right == 0:
                raise LuaRuntimeError("modulo by zero")
            return left % right
        raise LuaRuntimeError("unknown operator %r" % op)

    def _unop(self, op, operand_node, env):
        value = self._eval(operand_node, env)
        if op == "not":
            return not _truthy(value)
        if op == "-":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise LuaRuntimeError("arithmetic on non-number")
            return -value
        if op == "#":
            if isinstance(value, str):
                return len(value)
            if isinstance(value, LuaTable):
                return value.length()
            raise LuaRuntimeError("attempt to get length of a %s value"
                                  % type(value).__name__)
        raise LuaRuntimeError("unknown unary operator %r" % op)


def _lua_str(value):
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _to_lua(value):
    """Convert a python value crossing into the VM."""
    if isinstance(value, (list, tuple)):
        table = LuaTable()
        for i, item in enumerate(value, start=1):
            table.set(i, _to_lua(item))
        return table
    if isinstance(value, dict):
        table = LuaTable()
        for key, item in value.items():
            table.set(key, _to_lua(item))
        return table
    return value


def _from_lua(value):
    """Convert a VM value crossing back into python.

    Tables become lists when they are pure arrays, dicts otherwise.
    """
    if isinstance(value, LuaTable):
        length = value.length()
        if length and length == len(value.keys()):
            return [_from_lua(v) for v in value.array_items()]
        return {k: _from_lua(v) for k, v in value.to_dict().items()}
    return value
