"""Bytecode containers for the Lua subset: opcodes, protos, chunks.

The compiler (:mod:`repro.luavm.compiler`) lowers the parser's AST to a
stack bytecode; this module defines the instruction set and the
:class:`Chunk` container with a *stable* serialized form — the byte
stream is a pure function of the compiled program, so its SHA-256
digest can key caches and pin golden artefacts.

Instructions are ``(op, a, b)`` triples.  ``a``/``b`` meanings by op:

===========  ====================================================
``CONST a``      push ``consts[a]``
``GETG a``       push ``globals[consts[a]]`` (nil when unset)
``SETG a``       ``globals[consts[a]] = pop``
``GETL a b``     walk ``a`` scope hops, push slot ``b``
``SETL a b``     walk ``a`` scope hops, slot ``b`` = pop
``JMP a``        jump to instruction ``a``
``JMPF a``       pop; jump to ``a`` when falsey
``AND a``        if top is falsey jump to ``a`` keeping it, else pop
``OR a``         if top is truthy jump to ``a`` keeping it, else pop
``POP``          discard top (statement-level call results)
``CALL a``       call with ``a`` args: stack ``[fn, arg1..argN]``
``METH a``       pop table, push ``table[consts[a]]`` then the table
                 (method lookup before argument evaluation, like the
                 tree walker)
``RET``          return pop to the calling frame (or the host)
``RETNIL``       return nil
``CLOSURE a``    push a closure over ``protos[a]`` and current scope
``NEWTABLE``     push an empty table
``SETIDX a``     pop value, ``table.set(a, value)`` (table stays)
``SETKEY``       pop key, pop value, ``table.set(key, value)``
``GETI``         pop key, pop obj, push ``obj[key]``
``SETI``         pop key, pop obj, pop value, ``obj[key] = value``
                 (value evaluated first, like the tree walker)
``SETM a``       pop obj, pop closure, ``obj[consts[a]] = closure``
                 (``function t.name()`` definitions)
``ADD..MOD``     arithmetic (numbers only, bools excluded)
``CONCAT``       ``..`` under the interpreter-module coercion spec
``EQ..GE``       comparisons under the same spec
``NOT NEG LEN``  unary operators
``SCOPE a``      enter a block scope with ``a`` slots
``EXITSCOPE a``  leave ``a`` block scopes
``CHECKNUM``     top of stack must be a number (for-loop bounds)
``FORPREP a b``  pop step/stop/start, start the loop (writing the
                 counter to slot ``b`` when nonzero) or jump to ``a``
``FORVAR b``     write the loop counter into slot ``b``
``FORLOOP a b``  step the counter (mirrored to slot ``b`` when
                 nonzero); jump back to ``a`` or end the loop
``POPLOOP``      discard the innermost loop control (``break``)
``GETF a``       replace top with ``top[consts[a]]`` (constant key)
``SETF a``       pop obj, pop value, ``obj[consts[a]] = value``
``SETKC a``      pop value, ``table.set(consts[a], value)`` (table stays;
                 table-constructor entries with literal keys)
``GETGF a b``    push ``globals[consts[a]][consts[b]]``
``GETGLI a b``   push ``globals[consts[a]][scope[b]]`` (hop-0 local key)
``GETLF a b``    push ``local[b>>16 hops, b&0xFFFF][consts[a]]``
``GETLLI a b``   push ``local[a>>16 hops, a&0xFFFF][scope[b]]``
``JCMPF a b``    pop right, pop left, compare per kind ``b``
                 (0 == .. 5 >=); jump to ``a`` when false
===========  ====================================================
"""

import hashlib
import struct

from repro.luavm.errors import LuaBytecodeError

# Opcodes.  The integer values are part of the serialized format;
# append only.
CONST = 0
GETG = 1
SETG = 2
GETL = 3
SETL = 4
JMP = 5
JMPF = 6
AND = 7
OR = 8
POP = 9
CALL = 10
METH = 11
RET = 12
RETNIL = 13
CLOSURE = 14
NEWTABLE = 15
SETIDX = 16
SETKEY = 17
GETI = 18
SETI = 19
SETM = 20
ADD = 21
SUB = 22
MUL = 23
DIV = 24
MOD = 25
CONCAT = 26
EQ = 27
NE = 28
LT = 29
LE = 30
GT = 31
GE = 32
NOT = 33
NEG = 34
LEN = 35
SCOPE = 36
EXITSCOPE = 37
CHECKNUM = 38
FORPREP = 39
FORVAR = 40
FORLOOP = 41
POPLOOP = 42
# Fused field access (constant, pre-normalized keys) — the hot path of
# the Flame module scripts (f.ext, report.os, ...).
GETF = 43
SETF = 44
SETKC = 45
GETGF = 46
GETGLI = 47
GETLF = 48
GETLLI = 49
JCMPF = 50

OP_NAMES = (
    "CONST", "GETG", "SETG", "GETL", "SETL", "JMP", "JMPF", "AND", "OR",
    "POP", "CALL", "METH", "RET", "RETNIL", "CLOSURE", "NEWTABLE",
    "SETIDX", "SETKEY", "GETI", "SETI", "SETM", "ADD", "SUB", "MUL",
    "DIV", "MOD", "CONCAT", "EQ", "NE", "LT", "LE", "GT", "GE", "NOT",
    "NEG", "LEN", "SCOPE", "EXITSCOPE", "CHECKNUM", "FORPREP", "FORVAR",
    "FORLOOP", "POPLOOP", "GETF", "SETF", "SETKC", "GETGF", "GETGLI",
    "GETLF", "GETLLI", "JCMPF",
)

#: Ops whose ``a`` operand is an instruction index.
JUMP_OPS = frozenset((JMP, JMPF, AND, OR, FORPREP, FORLOOP,
                      JCMPF))
#: Ops whose ``a`` operand indexes the constant pool.
CONST_OPS = frozenset((CONST, GETG, SETG, METH, SETM, GETF, SETF,
                       SETKC, GETGF, GETGLI, GETLF))

_MAGIC = b"RLBC"
_VERSION = 1

# Constant-pool tags (serialized format).
_T_NIL, _T_FALSE, _T_TRUE, _T_INT, _T_FLOAT, _T_STR = range(6)


class Proto:
    """One compiled function body."""

    __slots__ = ("name", "nparams", "nslots", "code")

    def __init__(self, name, nparams, nslots, code):
        self.name = name
        self.nparams = nparams
        self.nslots = nslots
        self.code = tuple(code)

    def __repr__(self):
        return "Proto(%r, %d params, %d instrs)" % (self.name,
                                                    self.nparams,
                                                    len(self.code))


class Chunk:
    """A compiled chunk: shared constant pool plus its protos.

    ``protos[0]`` is the chunk body.  Chunks are immutable and contain
    only scalars, so one compiled chunk is safely shared by any number
    of VM instances (the cross-replica module cache relies on this).
    """

    __slots__ = ("consts", "protos", "source_digest")

    def __init__(self, consts, protos, source_digest=""):
        self.consts = tuple(consts)
        self.protos = tuple(protos)
        self.source_digest = source_digest

    # -- serialization -----------------------------------------------------

    def to_bytes(self):
        """Canonical byte form: stable across processes and sessions."""
        out = [_MAGIC, struct.pack(">H", _VERSION)]
        digest = self.source_digest.encode("ascii")
        out.append(struct.pack(">B", len(digest)))
        out.append(digest)
        out.append(struct.pack(">I", len(self.consts)))
        for value in self.consts:
            out.append(_pack_const(value))
        out.append(struct.pack(">I", len(self.protos)))
        for proto in self.protos:
            name = proto.name.encode("utf-8")
            out.append(struct.pack(">H", len(name)))
            out.append(name)
            out.append(struct.pack(">HHI", proto.nparams, proto.nslots,
                                   len(proto.code)))
            for op, a, b in proto.code:
                out.append(struct.pack(">Bii", op, a, b))
        return b"".join(out)

    def digest(self):
        """SHA-256 of the canonical byte form."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    @classmethod
    def from_bytes(cls, data):
        """Deserialize and validate; malformed input raises
        :class:`LuaBytecodeError`, never a bare struct/decode error."""
        reader = _Reader(data)
        if reader.take(4) != _MAGIC:
            raise LuaBytecodeError("bad chunk magic")
        version = reader.unpack(">H")
        if version != _VERSION:
            raise LuaBytecodeError("unsupported bytecode version %d"
                                   % version)
        try:
            digest_len = reader.unpack(">B")
            source_digest = reader.take(digest_len).decode("ascii")
            consts = [_unpack_const(reader)
                      for _ in range(reader.unpack(">I"))]
            protos = []
            for _ in range(reader.unpack(">I")):
                name = reader.take(reader.unpack(">H")).decode("utf-8")
                nparams, nslots, ncode = reader.unpack(">HHI")
                if ncode > len(data):  # cheap bound before allocating
                    raise LuaBytecodeError("truncated chunk: code length %d "
                                           "exceeds stream" % ncode)
                code = [reader.unpack(">Bii") for _ in range(ncode)]
                protos.append(Proto(name, nparams, nslots, code))
        except LuaBytecodeError:
            raise
        except (ValueError, struct.error) as exc:
            # UnicodeDecodeError is a ValueError: corrupted text fields
            # become the typed failure too.
            raise LuaBytecodeError("malformed chunk: %s" % exc) from None
        if reader.remaining():
            raise LuaBytecodeError("trailing bytes after chunk")
        chunk = cls(consts, protos, source_digest)
        chunk.validate()
        return chunk

    # -- validation --------------------------------------------------------

    def validate(self):
        """Structural checks so the dispatch loop can trust the chunk."""
        if not self.protos:
            raise LuaBytecodeError("chunk has no protos")
        for index, proto in enumerate(self.protos):
            if proto.nparams > proto.nslots:
                raise LuaBytecodeError(
                    "proto %d: %d params but only %d slots"
                    % (index, proto.nparams, proto.nslots))
            size = len(proto.code)
            if size == 0 or proto.code[-1][0] not in (RET, RETNIL):
                raise LuaBytecodeError(
                    "proto %d does not end in a return" % index)
            for position, (op, a, b) in enumerate(proto.code):
                where = "proto %d instr %d" % (index, position)
                if not isinstance(op, int) or not 0 <= op < len(OP_NAMES):
                    raise LuaBytecodeError("%s: unknown opcode %r"
                                           % (where, op))
                if op in JUMP_OPS and not 0 <= a < size:
                    raise LuaBytecodeError(
                        "%s: jump target %d outside code of %d"
                        % (where, a, size))
                if op in CONST_OPS and not 0 <= a < len(self.consts):
                    raise LuaBytecodeError(
                        "%s: constant index %d outside pool of %d"
                        % (where, a, len(self.consts)))
                if op == CLOSURE and not 0 <= a < len(self.protos):
                    raise LuaBytecodeError(
                        "%s: proto index %d outside %d protos"
                        % (where, a, len(self.protos)))
                if op in (GETL, SETL) and (a < 0 or b < 1):
                    raise LuaBytecodeError(
                        "%s: bad local reference hop=%d slot=%d"
                        % (where, a, b))
                if op == GETGF and not 0 <= b < len(self.consts):
                    raise LuaBytecodeError(
                        "%s: constant index %d outside pool of %d"
                        % (where, b, len(self.consts)))
                if op == GETGLI and b < 1:
                    raise LuaBytecodeError(
                        "%s: bad local reference slot=%d" % (where, b))
                if op == GETLF and b & 0xFFFF < 1:
                    raise LuaBytecodeError(
                        "%s: bad local reference slot=%d"
                        % (where, b & 0xFFFF))
                if op == GETLLI and (a & 0xFFFF < 1 or b < 1):
                    raise LuaBytecodeError(
                        "%s: bad local reference" % where)
                if op == JCMPF and not 0 <= b <= 5:
                    raise LuaBytecodeError(
                        "%s: bad comparison kind %d" % (where, b))
                if op in (FORPREP, FORLOOP, FORVAR) and b < 0:
                    raise LuaBytecodeError(
                        "%s: bad loop slot %d" % (where, b))
        return self

    # -- inspection --------------------------------------------------------

    def disassemble(self):
        """Human-readable listing (one string per line), for tests and
        docs — not part of the stable format."""
        lines = []
        for index, proto in enumerate(self.protos):
            lines.append("proto %d %s (%d params, %d slots)"
                         % (index, proto.name, proto.nparams,
                            proto.nslots))
            for position, (op, a, b) in enumerate(proto.code):
                detail = ""
                if op in CONST_OPS:
                    detail = "  ; %r" % (self.consts[a],)
                lines.append("  %4d  %-10s %6d %6d%s"
                             % (position, OP_NAMES[op], a, b, detail))
        return lines

    def __repr__(self):
        return "Chunk(%d consts, %d protos)" % (len(self.consts),
                                                len(self.protos))


class _Reader:
    """Bounds-checked cursor over a byte stream."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data):
        if not isinstance(data, (bytes, bytearray)):
            raise LuaBytecodeError("chunk stream must be bytes, got %s"
                                   % type(data).__name__)
        self._data = bytes(data)
        self._pos = 0

    def take(self, count):
        end = self._pos + count
        if count < 0 or end > len(self._data):
            raise LuaBytecodeError(
                "truncated chunk: wanted %d bytes at offset %d of %d"
                % (count, self._pos, len(self._data)))
        piece = self._data[self._pos:end]
        self._pos = end
        return piece

    def unpack(self, fmt):
        values = struct.unpack(fmt, self.take(struct.calcsize(fmt)))
        return values if len(values) > 1 else values[0]

    def remaining(self):
        return len(self._data) - self._pos


def _pack_const(value):
    if value is None:
        return struct.pack(">B", _T_NIL)
    if value is True:
        return struct.pack(">B", _T_TRUE)
    if value is False:
        return struct.pack(">B", _T_FALSE)
    if isinstance(value, int):
        # repr-encoded: Lua-subset integers are arbitrary precision.
        text = repr(value).encode("ascii")
        return struct.pack(">BI", _T_INT, len(text)) + text
    if isinstance(value, float):
        return struct.pack(">Bd", _T_FLOAT, value)
    if isinstance(value, str):
        text = value.encode("utf-8")
        return struct.pack(">BI", _T_STR, len(text)) + text
    raise LuaBytecodeError("unserializable constant %r" % (value,))


def _unpack_const(reader):
    tag = reader.unpack(">B")
    if tag == _T_NIL:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        text = reader.take(reader.unpack(">I"))
        try:
            return int(text.decode("ascii"))
        except ValueError:
            raise LuaBytecodeError("malformed integer constant %r"
                                   % text) from None
    if tag == _T_FLOAT:
        return reader.unpack(">d")
    if tag == _T_STR:
        return reader.take(reader.unpack(">I")).decode("utf-8")
    raise LuaBytecodeError("unknown constant tag %d" % tag)
