"""Recursive-descent parser producing tuple-shaped AST nodes.

Node shapes (first element is the tag):

Statements::

    ("local", name, expr_or_None)
    ("assign", target, expr)          target: ("name", n) | ("index", obj, key)
    ("call_stmt", call_expr)
    ("function", name_path, params, body)   name_path: list of names (a.b.c)
    ("local_function", name, params, body)
    ("if", [(cond, block), ...], else_block_or_None)
    ("while", cond, block)
    ("fornum", var, start, stop, step_or_None, block)
    ("return", expr_or_None)
    ("break",)

Expressions::

    ("nil",) ("true",) ("false",)
    ("number", v) ("string", v)
    ("name", n)
    ("index", obj_expr, key_expr)
    ("call", fn_expr, [args])
    ("method", obj_expr, name, [args])
    ("binop", op, left, right)
    ("unop", op, operand)
    ("function_expr", params, body)
    ("table", [(key_expr_or_None, value_expr), ...])
"""

from repro.luavm.errors import LuaSyntaxError
from repro.luavm.lexer import tokenize


class Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self):
        return self._tokens[self._pos]

    def _advance(self):
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind, value=None):
        return self._peek().matches(kind, value)

    def _accept(self, kind, value=None):
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind, value=None):
        token = self._accept(kind, value)
        if token is None:
            got = self._peek()
            raise LuaSyntaxError(
                "expected %s %r, got %s %r" % (kind, value, got.kind, got.value),
                got.line,
            )
        return token

    # -- blocks and statements -----------------------------------------------

    _BLOCK_ENDERS = {"end", "else", "elseif"}

    def parse_chunk(self):
        block = self._block()
        self._expect("eof")
        return block

    def _block(self):
        statements = []
        while True:
            token = self._peek()
            if token.kind == "eof":
                break
            if token.kind == "keyword" and token.value in self._BLOCK_ENDERS:
                break
            if token.matches("op", ";"):
                self._advance()
                continue
            statements.append(self._statement())
            if statements[-1][0] in ("return", "break"):
                break
        return statements

    def _statement(self):
        token = self._peek()
        if token.matches("keyword", "local"):
            return self._local_statement()
        if token.matches("keyword", "function"):
            return self._function_statement()
        if token.matches("keyword", "if"):
            return self._if_statement()
        if token.matches("keyword", "while"):
            return self._while_statement()
        if token.matches("keyword", "for"):
            return self._for_statement()
        if token.matches("keyword", "return"):
            self._advance()
            next_token = self._peek()
            ends = next_token.kind == "eof" or (
                next_token.kind == "keyword"
                and next_token.value in self._BLOCK_ENDERS
            )
            return ("return", None if ends else self._expression())
        if token.matches("keyword", "break"):
            self._advance()
            return ("break",)
        if token.matches("keyword", "do"):
            self._advance()
            block = self._block()
            self._expect("keyword", "end")
            return ("if", [(("true",), block)], None)
        return self._expr_statement()

    def _local_statement(self):
        self._expect("keyword", "local")
        if self._accept("keyword", "function"):
            name = self._expect("name").value
            params, body = self._function_body()
            return ("local_function", name, params, body)
        name = self._expect("name").value
        expr = None
        if self._accept("op", "="):
            expr = self._expression()
        return ("local", name, expr)

    def _function_statement(self):
        self._expect("keyword", "function")
        path = [self._expect("name").value]
        while self._accept("op", "."):
            path.append(self._expect("name").value)
        params, body = self._function_body()
        return ("function", path, params, body)

    def _function_body(self):
        self._expect("op", "(")
        params = []
        if not self._check("op", ")"):
            params.append(self._expect("name").value)
            while self._accept("op", ","):
                params.append(self._expect("name").value)
        self._expect("op", ")")
        body = self._block()
        self._expect("keyword", "end")
        return params, body

    def _if_statement(self):
        self._expect("keyword", "if")
        arms = []
        cond = self._expression()
        self._expect("keyword", "then")
        arms.append((cond, self._block()))
        else_block = None
        while True:
            if self._accept("keyword", "elseif"):
                cond = self._expression()
                self._expect("keyword", "then")
                arms.append((cond, self._block()))
                continue
            if self._accept("keyword", "else"):
                else_block = self._block()
            self._expect("keyword", "end")
            break
        return ("if", arms, else_block)

    def _while_statement(self):
        self._expect("keyword", "while")
        cond = self._expression()
        self._expect("keyword", "do")
        block = self._block()
        self._expect("keyword", "end")
        return ("while", cond, block)

    def _for_statement(self):
        self._expect("keyword", "for")
        var = self._expect("name").value
        self._expect("op", "=")
        start = self._expression()
        self._expect("op", ",")
        stop = self._expression()
        step = None
        if self._accept("op", ","):
            step = self._expression()
        self._expect("keyword", "do")
        block = self._block()
        self._expect("keyword", "end")
        return ("fornum", var, start, stop, step, block)

    def _expr_statement(self):
        expr = self._suffixed_expression()
        if self._accept("op", "="):
            if expr[0] not in ("name", "index"):
                raise LuaSyntaxError("invalid assignment target", self._peek().line)
            value = self._expression()
            return ("assign", expr, value)
        if expr[0] not in ("call", "method"):
            raise LuaSyntaxError("syntax error: expression is not a statement",
                                 self._peek().line)
        return ("call_stmt", expr)

    # -- expressions (precedence climbing) -----------------------------------------

    def _expression(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self._accept("keyword", "or"):
            left = ("binop", "or", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._cmp_expr()
        while self._accept("keyword", "and"):
            left = ("binop", "and", left, self._cmp_expr())
        return left

    _CMP_OPS = ("==", "~=", "<", "<=", ">", ">=")

    def _cmp_expr(self):
        left = self._concat_expr()
        while self._peek().kind == "op" and self._peek().value in self._CMP_OPS:
            op = self._advance().value
            left = ("binop", op, left, self._concat_expr())
        return left

    def _concat_expr(self):
        left = self._add_expr()
        if self._accept("op", ".."):
            # Right-associative, as in Lua.
            return ("binop", "..", left, self._concat_expr())
        return left

    def _add_expr(self):
        left = self._mul_expr()
        while self._peek().kind == "op" and self._peek().value in ("+", "-"):
            op = self._advance().value
            left = ("binop", op, left, self._mul_expr())
        return left

    def _mul_expr(self):
        left = self._unary_expr()
        while self._peek().kind == "op" and self._peek().value in ("*", "/", "%"):
            op = self._advance().value
            left = ("binop", op, left, self._unary_expr())
        return left

    def _unary_expr(self):
        if self._accept("keyword", "not"):
            return ("unop", "not", self._unary_expr())
        if self._accept("op", "-"):
            return ("unop", "-", self._unary_expr())
        if self._accept("op", "#"):
            return ("unop", "#", self._unary_expr())
        return self._suffixed_expression()

    def _suffixed_expression(self):
        expr = self._primary_expression()
        while True:
            if self._accept("op", "."):
                name = self._expect("name").value
                expr = ("index", expr, ("string", name))
            elif self._accept("op", "["):
                key = self._expression()
                self._expect("op", "]")
                expr = ("index", expr, key)
            elif self._check("op", "("):
                expr = ("call", expr, self._call_args())
            elif self._accept("op", ":"):
                name = self._expect("name").value
                expr = ("method", expr, name, self._call_args())
            elif self._peek().kind == "string" and expr[0] in ("name", "index", "call", "method"):
                # Lua sugar: f "literal".
                expr = ("call", expr, [("string", self._advance().value)])
            else:
                return expr

    def _call_args(self):
        self._expect("op", "(")
        args = []
        if not self._check("op", ")"):
            args.append(self._expression())
            while self._accept("op", ","):
                args.append(self._expression())
        self._expect("op", ")")
        return args

    def _primary_expression(self):
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return ("number", token.value)
        if token.kind == "string":
            self._advance()
            return ("string", token.value)
        if token.matches("keyword", "nil"):
            self._advance()
            return ("nil",)
        if token.matches("keyword", "true"):
            self._advance()
            return ("true",)
        if token.matches("keyword", "false"):
            self._advance()
            return ("false",)
        if token.matches("keyword", "function"):
            self._advance()
            params, body = self._function_body()
            return ("function_expr", params, body)
        if token.kind == "name":
            self._advance()
            return ("name", token.value)
        if token.matches("op", "("):
            self._advance()
            expr = self._expression()
            self._expect("op", ")")
            return expr
        if token.matches("op", "{"):
            return self._table_constructor()
        raise LuaSyntaxError("unexpected token %r" % (token.value,), token.line)

    def _table_constructor(self):
        self._expect("op", "{")
        items = []
        while not self._check("op", "}"):
            if self._check("op", "["):
                self._advance()
                key = self._expression()
                self._expect("op", "]")
                self._expect("op", "=")
                items.append((key, self._expression()))
            elif (self._peek().kind == "name"
                  and self._tokens[self._pos + 1].matches("op", "=")):
                key = ("string", self._advance().value)
                self._advance()  # '='
                items.append((key, self._expression()))
            else:
                items.append((None, self._expression()))
            if not self._accept("op", ",") and not self._accept("op", ";"):
                break
        self._expect("op", "}")
        return ("table", items)


def parse(source):
    """Parse source text to a block (list of statement nodes)."""
    return Parser(tokenize(source)).parse_chunk()
