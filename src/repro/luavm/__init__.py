"""A small, genuine interpreter for a Lua subset.

Flame's defining oddity: "Many parts of Flame modules are written in Lua.
They are then interpreted through the Lua virtual machine. ... the fact
that the modules are written in Lua makes it very easy to extend the
functionalities of the malware by other modules downloaded from the
attack center" (§III.A).

To reproduce that design property — malware logic shipped as *data* and
swapped at runtime — the Flame model's modules are actual scripts run by
this VM.  The implemented subset covers what the modules need: numbers,
strings, booleans, nil, tables (array + hash parts), ``local``/global
variables, functions and closures, ``if/elseif/else``, ``while``,
numeric ``for``, ``break``/``return``, arithmetic/comparison/concat
operators, and a registrable host API.

Two execution backends share one semantic spec (see
:mod:`repro.luavm.interpreter`):

``"bytecode"`` (default)
    lex → parse → compile → dispatch.  :mod:`repro.luavm.compiler`
    lowers the AST to a compact stack bytecode (:mod:`repro.luavm.code`)
    which :mod:`repro.luavm.bytevm` executes in a flat dispatch loop.
    Compiled chunks are cached process-wide by source digest, so every
    replica of a sweep shares one compilation per module script.

``"tree"``
    the original tree-walking interpreter, kept as the differential
    reference (``tests/test_luavm_differential.py`` fuzzes one against
    the other).

Select a backend with ``create_vm(backend=...)``, the
``REPRO_LUA_BACKEND`` environment variable, or the ``using_backend``
context manager.

Either way the VM enforces an instruction budget and a call-depth cap
so a hostile or buggy script cannot hang or crash the simulation.
"""

import os
from contextlib import contextmanager

from repro.luavm.bytevm import BytecodeVM
from repro.luavm.errors import (
    LuaBytecodeError,
    LuaError,
    LuaRuntimeError,
    LuaSyntaxError,
)
from repro.luavm.interpreter import LuaTable, LuaVM

#: Backend used when ``create_vm`` is called without an explicit choice.
#: Seeded from ``REPRO_LUA_BACKEND`` at import; ``using_backend`` swaps
#: it temporarily.
DEFAULT_BACKEND = os.environ.get("REPRO_LUA_BACKEND", "bytecode")

_BACKENDS = {"bytecode": BytecodeVM, "tree": LuaVM}


def create_vm(instruction_budget=None, backend=None):
    """Build a VM for ``backend`` ("bytecode", "tree", or None=default)."""
    name = backend or DEFAULT_BACKEND
    try:
        vm_class = _BACKENDS[name]
    except KeyError:
        raise ValueError("unknown Lua backend %r (expected one of %s)"
                         % (name, ", ".join(sorted(_BACKENDS))))
    if instruction_budget is None:
        return vm_class()
    return vm_class(instruction_budget=instruction_budget)


@contextmanager
def using_backend(name):
    """Temporarily change the default backend (tests, A/B comparisons)."""
    global DEFAULT_BACKEND
    if name not in _BACKENDS:
        raise ValueError("unknown Lua backend %r (expected one of %s)"
                         % (name, ", ".join(sorted(_BACKENDS))))
    previous = DEFAULT_BACKEND
    DEFAULT_BACKEND = name
    try:
        yield
    finally:
        DEFAULT_BACKEND = previous


__all__ = [
    "BytecodeVM",
    "DEFAULT_BACKEND",
    "LuaBytecodeError",
    "LuaError",
    "LuaRuntimeError",
    "LuaSyntaxError",
    "LuaTable",
    "LuaVM",
    "create_vm",
    "using_backend",
]
