"""A small, genuine interpreter for a Lua subset.

Flame's defining oddity: "Many parts of Flame modules are written in Lua.
They are then interpreted through the Lua virtual machine. ... the fact
that the modules are written in Lua makes it very easy to extend the
functionalities of the malware by other modules downloaded from the
attack center" (§III.A).

To reproduce that design property — malware logic shipped as *data* and
swapped at runtime — the Flame model's modules are actual scripts run by
this VM.  The implemented subset covers what the modules need: numbers,
strings, booleans, nil, tables (array + hash parts), ``local``/global
variables, functions and closures, ``if/elseif/else``, ``while``,
numeric ``for``, ``break``/``return``, arithmetic/comparison/concat
operators, and a registrable host API.

The VM enforces an instruction budget so a hostile or buggy script
cannot hang the simulation.
"""

from repro.luavm.errors import LuaError, LuaRuntimeError, LuaSyntaxError
from repro.luavm.interpreter import LuaTable, LuaVM

__all__ = ["LuaError", "LuaRuntimeError", "LuaSyntaxError", "LuaTable", "LuaVM"]
