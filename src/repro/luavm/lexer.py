"""Tokenizer for the Lua subset."""

from repro.luavm.errors import LuaSyntaxError

KEYWORDS = {
    "and", "break", "do", "else", "elseif", "end", "false", "for",
    "function", "if", "local", "nil", "not", "or", "return", "then",
    "true", "while",
}

#: Multi-character operators, longest first so the scanner is greedy.
_MULTI_OPS = ("==", "~=", "<=", ">=", "..")
_SINGLE_OPS = set("+-*/%<>=(){}[],;.#:")


class Token:
    """One lexical token."""

    __slots__ = ("kind", "value", "line")

    # kinds: name, number, string, keyword, op, eof
    def __init__(self, kind, value, line):
        self.kind = kind
        self.value = value
        self.line = line

    def matches(self, kind, value=None):
        return self.kind == kind and (value is None or self.value == value)

    def __repr__(self):
        return "Token(%s, %r, line %d)" % (self.kind, self.value, self.line)


def tokenize(source):
    """Turn source text into a token list ending with an ``eof`` token."""
    tokens = []
    pos = 0
    line = 1
    length = len(source)

    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        # Comments: -- to end of line.
        if source.startswith("--", pos):
            newline = source.find("\n", pos)
            pos = length if newline == -1 else newline
            continue
        # Strings.
        if ch in "'\"":
            end = pos + 1
            chunks = []
            while end < length and source[end] != ch:
                if source[end] == "\\" and end + 1 < length:
                    escape = source[end + 1]
                    chunks.append(
                        {"n": "\n", "t": "\t", "\\": "\\", "'": "'", '"': '"'}
                        .get(escape, escape)
                    )
                    end += 2
                    continue
                if source[end] == "\n":
                    raise LuaSyntaxError("unterminated string", line)
                chunks.append(source[end])
                end += 1
            if end >= length:
                raise LuaSyntaxError("unterminated string", line)
            tokens.append(Token("string", "".join(chunks), line))
            pos = end + 1
            continue
        # Numbers (integers and decimals).
        if ch.isdigit() or (ch == "." and pos + 1 < length and source[pos + 1].isdigit()):
            end = pos
            seen_dot = False
            while end < length and (source[end].isdigit() or (source[end] == "." and not seen_dot)):
                # ".." is the concat operator, not a decimal point.
                if source[end] == ".":
                    if source.startswith("..", end):
                        break
                    seen_dot = True
                end += 1
            text = source[pos:end]
            value = float(text) if "." in text else int(text)
            tokens.append(Token("number", value, line))
            pos = end
            continue
        # Names and keywords.
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            word = source[pos:end]
            kind = "keyword" if word in KEYWORDS else "name"
            tokens.append(Token(kind, word, line))
            pos = end
            continue
        # Operators.
        matched = None
        for op in _MULTI_OPS:
            if source.startswith(op, pos):
                matched = op
                break
        if matched is not None:
            tokens.append(Token("op", matched, line))
            pos += len(matched)
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token("op", ch, line))
            pos += 1
            continue
        raise LuaSyntaxError("unexpected character %r" % ch, line)

    tokens.append(Token("eof", None, line))
    return tokens
