"""Error types for the Lua-subset VM."""


class LuaError(Exception):
    """Base class for all VM errors."""


class LuaSyntaxError(LuaError):
    """Lexing or parsing failed."""

    def __init__(self, message, line):
        super().__init__("%s (line %d)" % (message, line))
        self.line = line


class LuaRuntimeError(LuaError):
    """Execution failed (type error, missing name, budget exhausted...)."""
