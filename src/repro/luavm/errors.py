"""Error types for the Lua-subset VM."""


class LuaError(Exception):
    """Base class for all VM errors."""


class LuaSyntaxError(LuaError):
    """Lexing or parsing failed."""

    def __init__(self, message, line):
        super().__init__("%s (line %d)" % (message, line))
        self.line = line


class LuaRuntimeError(LuaError):
    """Execution failed (type error, missing name, budget exhausted...)."""


class LuaBytecodeError(LuaError):
    """A compiled chunk is malformed: bad magic, unsupported version,
    truncated stream, out-of-range constant/proto/jump reference, or an
    unknown opcode.  Raised by chunk deserialization and validation so a
    corrupted module cache entry is a typed, catchable failure instead
    of a crash inside the dispatch loop."""
