"""Dispatch-loop VM executing compiled Lua-subset chunks.

The bytecode counterpart of :class:`repro.luavm.interpreter.LuaVM`,
with the identical public surface — ``register`` / ``set_global`` /
``get_global`` / ``run`` / ``call`` / ``has_function`` / ``output`` —
the same :class:`LuaTable` values, the same stdlib, the same error
types, and the same instruction budget and call-depth cap.  The
semantic spec both backends implement lives in the
:mod:`repro.luavm.interpreter` docstring; the differential fuzz suite
holds this VM bit-for-bit to the tree walker's observable behaviour.

Execution model: one flat dispatch loop over ``(op, a, b)`` triples.
Lua-level calls push a frame tuple instead of recursing into Python,
so deep scripted recursion hits the (shared) MAX_CALL_DEPTH limit, not
the host interpreter's stack.  Scopes are small lists —
``[parent, slot1, ...]`` — created per block entry, which preserves the
tree walker's per-iteration closure capture; the compiler elides the
scope for blocks that declare no locals and hoists it out of
closure-free loop bodies.

The if/elif dispatch ladder is ordered by measured dynamic opcode
frequency on the Flame module workload (module scan loops dominate),
not by opcode number — order changes here are pure performance.
"""

from repro.luavm import code as C
from repro.luavm.compiler import compile_cached
from repro.luavm.errors import LuaRuntimeError
from repro.luavm.interpreter import (
    LuaTable,
    LuaVM,
    _from_lua,
    _to_lua,
    lua_concat,
)


class BFunction:
    """A compiled closure: proto + the scope chain it captured."""

    __slots__ = ("chunk", "proto", "scope")

    def __init__(self, chunk, proto, scope):
        self.chunk = chunk
        self.proto = proto
        self.scope = scope

    def __repr__(self):
        return "BFunction(%s)" % self.proto.name


class BytecodeVM:
    """One bytecode interpreter instance with its own globals.

    Drop-in replacement for :class:`~repro.luavm.interpreter.LuaVM`;
    construct via :func:`repro.luavm.create_vm` to pick a backend.
    ``run`` compiles through the process-wide source-digest cache, so
    many VM instances (one per Flame replica) share one compilation
    per distinct module script.
    """

    DEFAULT_BUDGET = LuaVM.DEFAULT_BUDGET
    MAX_CALL_DEPTH = LuaVM.MAX_CALL_DEPTH

    backend = "bytecode"

    def __init__(self, instruction_budget=DEFAULT_BUDGET):
        self._globals = {}
        self._budget = instruction_budget
        self._steps = 0
        self._depth = 0
        #: Lines produced by the script's print().
        self.output = []
        self._install_stdlib()

    # -- public API (mirrors LuaVM) ----------------------------------------

    def register(self, name, function):
        """Expose a python callable to scripts as a global function."""

        def bridge(*args):
            return _to_lua(function(*[_from_lua(a) for a in args]))

        bridge.__name__ = "lua_bridge_%s" % name
        self._globals[name] = bridge

    def set_global(self, name, value):
        self._globals[name] = _to_lua(value)

    def get_global(self, name):
        return _from_lua(self._globals.get(name))

    def run(self, source):
        """Compile (via the shared cache) and execute a chunk."""
        chunk = compile_cached(source)
        self._steps = 0
        return _from_lua(self._execute(chunk, chunk.protos[0], None, (),
                                       as_function=False))

    def run_chunk(self, chunk):
        """Execute an already-compiled (e.g. deserialized) chunk."""
        self._steps = 0
        return _from_lua(self._execute(chunk, chunk.protos[0], None, (),
                                       as_function=False))

    def call(self, name, *args):
        function = self._globals.get(name)
        if function is None:
            raise LuaRuntimeError("attempt to call undefined function %r"
                                  % name)
        self._steps = 0
        return _from_lua(self._call_value(function,
                                          [_to_lua(a) for a in args]))

    def has_function(self, name):
        value = self._globals.get(name)
        return isinstance(value, BFunction) or callable(value)

    # -- internals ---------------------------------------------------------

    def _install_stdlib(self):
        from repro.luavm.stdlib import build_stdlib

        self._globals.update(build_stdlib(self))

    def _call_value(self, function, args):
        if isinstance(function, BFunction):
            return self._execute(function.chunk, function.proto,
                                 function.scope, args, as_function=True)
        if callable(function):
            return _to_lua(function(*args))
        if function is None:
            raise LuaRuntimeError("attempt to call a nil value")
        raise LuaRuntimeError("attempt to call a %s value"
                              % type(function).__name__)

    def _execute(self, chunk, proto, upscope, args, as_function):
        # The hot loop: opcodes and mutable state are locals, and the
        # if/elif ladder is ordered by measured dynamic frequency in
        # the Flame module workload.
        OP_CONST = C.CONST
        OP_GETG = C.GETG
        OP_SETG = C.SETG
        OP_GETL = C.GETL
        OP_SETL = C.SETL
        OP_JMP = C.JMP
        OP_JMPF = C.JMPF
        OP_AND = C.AND
        OP_OR = C.OR
        OP_POP = C.POP
        OP_CALL = C.CALL
        OP_METH = C.METH
        OP_RET = C.RET
        OP_RETNIL = C.RETNIL
        OP_CLOSURE = C.CLOSURE
        OP_NEWTABLE = C.NEWTABLE
        OP_SETIDX = C.SETIDX
        OP_SETKEY = C.SETKEY
        OP_GETI = C.GETI
        OP_SETI = C.SETI
        OP_SETM = C.SETM
        OP_ADD = C.ADD
        OP_SUB = C.SUB
        OP_MUL = C.MUL
        OP_DIV = C.DIV
        OP_MOD = C.MOD
        OP_CONCAT = C.CONCAT
        OP_EQ = C.EQ
        OP_NE = C.NE
        OP_LT = C.LT
        OP_LE = C.LE
        OP_GT = C.GT
        OP_GE = C.GE
        OP_NOT = C.NOT
        OP_NEG = C.NEG
        OP_LEN = C.LEN
        OP_SCOPE = C.SCOPE
        OP_EXITSCOPE = C.EXITSCOPE
        OP_CHECKNUM = C.CHECKNUM
        OP_FORPREP = C.FORPREP
        OP_FORVAR = C.FORVAR
        OP_FORLOOP = C.FORLOOP
        OP_POPLOOP = C.POPLOOP
        OP_GETF = C.GETF
        OP_SETF = C.SETF
        OP_SETKC = C.SETKC
        OP_GETGF = C.GETGF
        OP_GETGLI = C.GETGLI
        OP_GETLF = C.GETLF
        OP_GETLLI = C.GETLLI
        OP_JCMPF = C.JCMPF

        max_depth = self.MAX_CALL_DEPTH
        if as_function:
            if self._depth >= max_depth:
                raise LuaRuntimeError("call stack overflow (depth %d)"
                                      % max_depth)
            self._depth += 1
            scope = [upscope] + [None] * proto.nslots
            count = len(args)
            for i in range(proto.nparams):
                scope[i + 1] = args[i] if i < count else None
        else:
            scope = upscope

        globals_ = self._globals
        budget = self._budget
        steps = self._steps
        consts = chunk.consts
        protos = chunk.protos
        code = proto.code
        ip = 0
        stack = []
        append = stack.append
        pop = stack.pop
        frames = []
        loops = []

        try:
            while True:
                op, a, b = code[ip]
                ip += 1
                if op == OP_GETL:
                    if a == 0:
                        append(scope[b])
                    else:
                        s = scope
                        while a:
                            s = s[0]
                            a -= 1
                        append(s[b])
                elif op == OP_CALL:
                    steps += 1
                    if steps > budget:
                        raise LuaRuntimeError(
                            "instruction budget exhausted (%d steps)"
                            % budget)
                    base = len(stack) - a
                    fn = stack[base - 1]
                    if type(fn) is BFunction:
                        if self._depth >= max_depth:
                            raise LuaRuntimeError(
                                "call stack overflow (depth %d)" % max_depth)
                        self._depth += 1
                        frames.append((chunk, code, ip, scope, len(loops)))
                        chunk = fn.chunk
                        consts = chunk.consts
                        protos = chunk.protos
                        proto2 = fn.proto
                        new_scope = [None] * (proto2.nslots + 1)
                        new_scope[0] = fn.scope
                        filled = proto2.nparams if a >= proto2.nparams \
                            else a
                        if filled:
                            new_scope[1:filled + 1] = \
                                stack[base:base + filled]
                        del stack[base - 1:]
                        scope = new_scope
                        code = proto2.code
                        ip = 0
                    elif callable(fn):
                        result = fn(*stack[base:])
                        del stack[base - 1:]
                        tr = type(result)
                        if result is None or tr is int or tr is str \
                                or tr is LuaTable or tr is bool \
                                or tr is float:
                            append(result)
                        else:
                            append(_to_lua(result))
                    elif fn is None:
                        raise LuaRuntimeError("attempt to call a nil value")
                    else:
                        raise LuaRuntimeError("attempt to call a %s value"
                                              % type(fn).__name__)
                elif op == OP_GETGF:
                    obj = globals_.get(consts[a])
                    if type(obj) is LuaTable:
                        append(obj._data.get(consts[b]))
                    elif obj is None:
                        raise LuaRuntimeError("attempt to index a nil value")
                    else:
                        raise LuaRuntimeError("attempt to index a %s value"
                                              % type(obj).__name__)
                elif op == OP_FORLOOP:
                    steps += 1
                    if steps > budget:
                        raise LuaRuntimeError(
                            "instruction budget exhausted (%d steps)"
                            % budget)
                    control = loops[-1]
                    step = control[2]
                    value = control[0] + step
                    control[0] = value
                    if (value <= control[1]) if step > 0 \
                            else (value >= control[1]):
                        if b:
                            scope[b] = value
                        ip = a
                    else:
                        loops.pop()
                elif op == OP_GETGLI:
                    # globals[consts[a]][scope[b]] in one step: the
                    # `TABLE[i]` pattern of the module scan loops.
                    obj = globals_.get(consts[a])
                    if type(obj) is LuaTable:
                        key = scope[b]
                        if type(key) is float and key.is_integer():
                            key = int(key)
                        append(obj._data.get(key))
                    elif obj is None:
                        raise LuaRuntimeError("attempt to index a nil value")
                    else:
                        raise LuaRuntimeError("attempt to index a %s value"
                                              % type(obj).__name__)
                elif op == OP_CONST:
                    append(consts[a])
                elif op == OP_JMPF:
                    steps += 1
                    if steps > budget:
                        raise LuaRuntimeError(
                            "instruction budget exhausted (%d steps)"
                            % budget)
                    value = pop()
                    if value is None or value is False:
                        ip = a
                elif op == OP_JCMPF:
                    steps += 1
                    if steps > budget:
                        raise LuaRuntimeError(
                            "instruction budget exhausted (%d steps)"
                            % budget)
                    right = pop()
                    left = pop()
                    if b < 2:
                        if type(left) is bool or type(right) is bool:
                            result = left is right
                        else:
                            result = left == right
                        if b:
                            result = not result
                    else:
                        tl = type(left)
                        tr = type(right)
                        if ((tl is int or tl is float)
                                and (tr is int or tr is float)) \
                                or (tl is str and tr is str):
                            if b == 2:
                                result = left < right
                            elif b == 3:
                                result = left <= right
                            elif b == 4:
                                result = left > right
                            else:
                                result = left >= right
                        else:
                            raise LuaRuntimeError(
                                "cannot compare %s with %s"
                                % (tl.__name__, tr.__name__))
                    if not result:
                        ip = a
                elif op == OP_RET or op == OP_RETNIL:
                    steps += 1
                    if steps > budget:
                        raise LuaRuntimeError(
                            "instruction budget exhausted (%d steps)"
                            % budget)
                    result = pop() if op == OP_RET else None
                    if not frames:
                        return result
                    self._depth -= 1
                    chunk, code, ip, scope, llen = frames.pop()
                    consts = chunk.consts
                    protos = chunk.protos
                    del loops[llen:]
                    append(result)
                elif op == OP_FORPREP:
                    steps += 1
                    if steps > budget:
                        raise LuaRuntimeError(
                            "instruction budget exhausted (%d steps)"
                            % budget)
                    step = pop()
                    stop = pop()
                    start = pop()
                    if step == 0:
                        raise LuaRuntimeError("'for' step is zero")
                    if (start <= stop) if step > 0 else (start >= stop):
                        loops.append([start, stop, step])
                        if b:
                            scope[b] = start
                    else:
                        ip = a
                elif op == OP_GETG:
                    append(globals_.get(consts[a]))
                elif op == OP_GETLF:
                    hops = b >> 16
                    s = scope
                    while hops:
                        s = s[0]
                        hops -= 1
                    obj = s[b & 0xFFFF]
                    if type(obj) is LuaTable:
                        append(obj._data.get(consts[a]))
                    elif obj is None:
                        raise LuaRuntimeError("attempt to index a nil value")
                    else:
                        raise LuaRuntimeError("attempt to index a %s value"
                                              % type(obj).__name__)
                elif op == OP_LEN:
                    value = stack[-1]
                    if type(value) is str:
                        stack[-1] = len(value)
                    elif type(value) is LuaTable:
                        # Inline LuaTable.length(): the nil-hole border
                        # walk, minus the method-call overhead.
                        data = value._data
                        n = 0
                        while (n + 1) in data:
                            n += 1
                        stack[-1] = n
                    else:
                        raise LuaRuntimeError(
                            "attempt to get length of a %s value"
                            % type(value).__name__)
                elif op == OP_SETL:
                    if a == 0:
                        scope[b] = pop()
                    else:
                        s = scope
                        while a:
                            s = s[0]
                            a -= 1
                        s[b] = pop()
                elif op == OP_SETKC:
                    value = pop()
                    if value is None:
                        stack[-1]._data.pop(consts[a], None)
                    else:
                        stack[-1]._data[consts[a]] = value
                elif op == OP_CONCAT:
                    right = pop()
                    left = stack[-1]
                    if type(left) is str and type(right) is str:
                        stack[-1] = left + right
                    else:
                        stack[-1] = lua_concat(left, right)
                elif op == OP_JMP:
                    steps += 1
                    if steps > budget:
                        raise LuaRuntimeError(
                            "instruction budget exhausted (%d steps)"
                            % budget)
                    ip = a
                elif op == OP_ADD:
                    right = pop()
                    left = stack[-1]
                    tl = type(left)
                    tr = type(right)
                    if (tl is int or tl is float) and \
                            (tr is int or tr is float):
                        stack[-1] = left + right
                    else:
                        raise LuaRuntimeError("arithmetic on non-number")
                elif op == OP_EQ:
                    right = pop()
                    left = stack[-1]
                    if type(left) is bool or type(right) is bool:
                        stack[-1] = left is right
                    else:
                        stack[-1] = left == right
                elif op == OP_GETF:
                    # Fused constant-key read: key pre-normalized by the
                    # compiler, so hit the table dict directly.
                    obj = stack[-1]
                    if type(obj) is LuaTable:
                        stack[-1] = obj._data.get(consts[a])
                    elif obj is None:
                        raise LuaRuntimeError("attempt to index a nil value")
                    else:
                        raise LuaRuntimeError("attempt to index a %s value"
                                              % type(obj).__name__)
                elif op == OP_GETI:
                    key = pop()
                    obj = pop()
                    if type(obj) is LuaTable:
                        if type(key) is float and key.is_integer():
                            key = int(key)
                        append(obj._data.get(key))
                    elif obj is None:
                        raise LuaRuntimeError("attempt to index a nil value")
                    else:
                        raise LuaRuntimeError("attempt to index a %s value"
                                              % type(obj).__name__)
                elif op == OP_GETLLI:
                    hops = a >> 16
                    s = scope
                    while hops:
                        s = s[0]
                        hops -= 1
                    obj = s[a & 0xFFFF]
                    if type(obj) is LuaTable:
                        key = scope[b]
                        if type(key) is float and key.is_integer():
                            key = int(key)
                        append(obj._data.get(key))
                    elif obj is None:
                        raise LuaRuntimeError("attempt to index a nil value")
                    else:
                        raise LuaRuntimeError("attempt to index a %s value"
                                              % type(obj).__name__)
                elif op == OP_SETG:
                    globals_[consts[a]] = pop()
                elif op == OP_AND:
                    steps += 1
                    if steps > budget:
                        raise LuaRuntimeError(
                            "instruction budget exhausted (%d steps)"
                            % budget)
                    value = stack[-1]
                    if value is None or value is False:
                        ip = a
                    else:
                        pop()
                elif op == OP_OR:
                    steps += 1
                    if steps > budget:
                        raise LuaRuntimeError(
                            "instruction budget exhausted (%d steps)"
                            % budget)
                    value = stack[-1]
                    if value is None or value is False:
                        pop()
                    else:
                        ip = a
                elif op == OP_NE:
                    right = pop()
                    left = stack[-1]
                    if type(left) is bool or type(right) is bool:
                        stack[-1] = left is not right
                    else:
                        stack[-1] = left != right
                elif op == OP_SUB or op == OP_MUL:
                    right = pop()
                    left = stack[-1]
                    tl = type(left)
                    tr = type(right)
                    if (tl is int or tl is float) and \
                            (tr is int or tr is float):
                        stack[-1] = (left - right) if op == OP_SUB \
                            else (left * right)
                    else:
                        raise LuaRuntimeError("arithmetic on non-number")
                elif op == OP_DIV or op == OP_MOD:
                    right = pop()
                    left = stack[-1]
                    tl = type(left)
                    tr = type(right)
                    if (tl is int or tl is float) and \
                            (tr is int or tr is float):
                        if right == 0:
                            raise LuaRuntimeError(
                                "division by zero" if op == OP_DIV
                                else "modulo by zero")
                        stack[-1] = (left / right) if op == OP_DIV \
                            else (left % right)
                    else:
                        raise LuaRuntimeError("arithmetic on non-number")
                elif op == OP_LT or op == OP_LE or op == OP_GT \
                        or op == OP_GE:
                    right = pop()
                    left = stack[-1]
                    tl = type(left)
                    tr = type(right)
                    if ((tl is int or tl is float)
                            and (tr is int or tr is float)) \
                            or (tl is str and tr is str):
                        if op == OP_LT:
                            stack[-1] = left < right
                        elif op == OP_LE:
                            stack[-1] = left <= right
                        elif op == OP_GT:
                            stack[-1] = left > right
                        else:
                            stack[-1] = left >= right
                    else:
                        raise LuaRuntimeError("cannot compare %s with %s"
                                              % (tl.__name__, tr.__name__))
                elif op == OP_POP:
                    pop()
                elif op == OP_METH:
                    obj = pop()
                    if type(obj) is not LuaTable:
                        raise LuaRuntimeError(
                            "attempt to call method on non-table")
                    append(obj.get(consts[a]))
                    append(obj)
                elif op == OP_NEWTABLE:
                    append(LuaTable())
                elif op == OP_SETIDX:
                    value = pop()
                    if value is not None:
                        stack[-1]._data[a] = value
                elif op == OP_SETKEY:
                    key = pop()
                    value = pop()
                    stack[-1].set(key, value)
                elif op == OP_SETF:
                    obj = pop()
                    value = pop()
                    if type(obj) is not LuaTable:
                        raise LuaRuntimeError(
                            "attempt to index a non-table value")
                    if value is None:
                        obj._data.pop(consts[a], None)
                    else:
                        obj._data[consts[a]] = value
                elif op == OP_SETI:
                    key = pop()
                    obj = pop()
                    value = pop()
                    if type(obj) is not LuaTable:
                        raise LuaRuntimeError(
                            "attempt to index a non-table value")
                    obj.set(key, value)
                elif op == OP_SETM:
                    obj = pop()
                    fn = pop()
                    if type(obj) is not LuaTable:
                        raise LuaRuntimeError(
                            "cannot define method on non-table %r"
                            % consts[b])
                    obj.set(consts[a], fn)
                elif op == OP_CLOSURE:
                    append(BFunction(chunk, protos[a], scope))
                elif op == OP_NOT:
                    value = stack[-1]
                    stack[-1] = value is None or value is False
                elif op == OP_NEG:
                    value = stack[-1]
                    tv = type(value)
                    if tv is int or tv is float:
                        stack[-1] = -value
                    else:
                        raise LuaRuntimeError("arithmetic on non-number")
                elif op == OP_SCOPE:
                    new_scope = [None] * (a + 1)
                    new_scope[0] = scope
                    scope = new_scope
                elif op == OP_EXITSCOPE:
                    while a:
                        scope = scope[0]
                        a -= 1
                elif op == OP_CHECKNUM:
                    tv = type(stack[-1])
                    if tv is not int and tv is not float:
                        raise LuaRuntimeError("numeric expression expected")
                elif op == OP_FORVAR:
                    scope[b] = loops[-1][0]
                elif op == OP_POPLOOP:
                    loops.pop()
                else:
                    raise LuaRuntimeError("unknown opcode %d" % op)
        finally:
            # On an abort mid-call-chain the frames never unwound; put
            # the depth budget back so the VM stays usable.
            self._depth -= len(frames) + (1 if as_function else 0)
            self._steps = steps
