"""The digital safety system.

§II.C footnote: "Digital safety systems are needed when a human operator
cannot act quick enough in critical situations."  The system polls the
PLC's *reported* frequency — which is the point: Stuxnet "records
previous and normal operating frequencies and then feeds them to the PLC
operator as well as the digital safety system", so a replay at the
reporting layer blinds both.
"""


class DigitalSafetySystem:
    """Trips the cascade when the monitored frequency leaves the safe band."""

    #: How often the safety controller samples (virtual seconds).
    POLL_INTERVAL = 30.0

    def __init__(self, kernel, plc, safe_band=(700.0, 1300.0)):
        self.kernel = kernel
        self.plc = plc
        self.safe_band = safe_band
        self.tripped = False
        self.trip_time = None
        self.samples_taken = 0
        self._task = None

    def arm(self):
        """Start polling."""
        if self._task is None:
            self._task = self.kernel.every(
                self.POLL_INTERVAL, self._poll, "safety-poll:%s" % self.plc.name
            )
        return self

    def disarm(self):
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _poll(self):
        if self.tripped:
            return
        self.samples_taken += 1
        frequency = self.plc.reported_frequency()
        low, high = self.safe_band
        if frequency != 0.0 and not low <= frequency <= high:
            self.trip()

    def trip(self):
        """Emergency shutdown: command every drive to zero."""
        self.tripped = True
        self.trip_time = self.kernel.clock.now
        self.plc.bus.command_all(0.0)
        self.kernel.trace.record(
            "safety-system", "emergency-trip", self.plc.name,
            reported_frequency=self.plc.reported_frequency(),
        )

    def __repr__(self):
        return "DigitalSafetySystem(%s, tripped=%s)" % (self.plc.name, self.tripped)
