"""PLC code blocks (the S7 OB/FC/DB model).

A block's ``logic`` is a python callable ``logic(plc)`` — the
simulation's stand-in for MC7 bytecode — executed on each scan cycle for
organisation blocks.  Data blocks carry a dict instead.
"""


class CodeBlock:
    """One S7 block: organisation (OB), function (FC), or data (DB)."""

    KINDS = ("OB", "FC", "DB")

    def __init__(self, name, kind, logic=None, data=None, origin="engineer"):
        if kind not in self.KINDS:
            raise ValueError("unknown block kind: %r" % kind)
        self.name = name
        self.kind = kind
        self.logic = logic
        self.data = dict(data) if data else {}
        #: Provenance: "engineer" for legitimate blocks, a malware label
        #: for injected ones.  Forensics keys on this; the PLC rootkit's
        #: job is to keep infected origins invisible over the normal
        #: read channel.
        self.origin = origin

    def copy(self):
        return CodeBlock(self.name, self.kind, self.logic, dict(self.data),
                         origin=self.origin)

    def __repr__(self):
        return "CodeBlock(%s %s, origin=%s)" % (self.kind, self.name, self.origin)
