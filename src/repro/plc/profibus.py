"""Profibus: the field bus between the PLC and its drives.

§II.C footnote: "Profibus is a standard industrial network bus used for
distributed I/O ... a standard to link PLC to the physical devices."
Stuxnet fires only when the PLC talks through a Profibus communications
processor, so the bus carries an identifying CP model string.
"""

#: The communications-processor model Stuxnet fingerprints.
PROFIBUS_CP_MODEL = "CP 342-5"


class ProfibusBus:
    """Message bus connecting one PLC to its frequency-converter drives."""

    def __init__(self, cp_model=PROFIBUS_CP_MODEL):
        self.cp_model = cp_model
        self._devices = {}
        #: (command, device, value) log — what bus monitoring sees.
        self.message_log = []

    def attach(self, drive):
        self._devices[drive.ident] = drive
        return drive

    def devices(self):
        return [self._devices[k] for k in sorted(self._devices)]

    def device(self, ident):
        return self._devices.get(ident)

    def vendors(self):
        """Distinct drive vendors on the bus — the trigger fingerprint."""
        return sorted({d.vendor for d in self._devices.values()})

    def command_frequency(self, ident, frequency):
        """PLC-side write: set one drive's frequency."""
        drive = self._devices.get(ident)
        if drive is None:
            raise KeyError("no device %r on bus" % ident)
        actual = drive.set_frequency(frequency)
        self.message_log.append(("set-frequency", ident, actual))
        return actual

    def command_all(self, frequency):
        """Set every drive on the bus to the same frequency."""
        for drive in self.devices():
            self.command_frequency(drive.ident, frequency)

    def read_frequency(self, ident):
        """PLC-side read: one drive's present output frequency."""
        drive = self._devices.get(ident)
        if drive is None:
            raise KeyError("no device %r on bus" % ident)
        value = drive.read_frequency()
        self.message_log.append(("read-frequency", ident, value))
        return value

    def sync_all(self):
        """Bring every cascade's physics up to the current time."""
        for drive in self.devices():
            drive.sync()
