"""Industrial control substrate: Step 7, PLC, Profibus, drives, centrifuges.

Everything Stuxnet's third compromise level (§II.C, Fig. 1) needs to
actually happen in simulation: a PLC with code blocks and a scan cycle, a
Profibus link to frequency-converter drives (one Iranian-vendor, one
Finnish-vendor — the fingerprint Stuxnet triggers on), centrifuges with a
stress/failure physical model, the Step 7 engineering application whose
``s7otbxdx.dll`` is the man-in-the-middle position, a digital safety
system, and an operator HMI view.
"""

from repro.plc.centrifuge import Centrifuge, CentrifugeCascade
from repro.plc.drives import (
    FARARO_PAYA,
    FrequencyConverterDrive,
    VACON,
)
from repro.plc.profibus import ProfibusBus, PROFIBUS_CP_MODEL
from repro.plc.blocks import CodeBlock
from repro.plc.plc import ProgrammableLogicController
from repro.plc.s7otbx import S7CommunicationLibrary, TrojanizedS7Library
from repro.plc.step7 import Step7Application, Step7Project
from repro.plc.safety import DigitalSafetySystem

__all__ = [
    "Centrifuge",
    "CentrifugeCascade",
    "CodeBlock",
    "DigitalSafetySystem",
    "FARARO_PAYA",
    "FrequencyConverterDrive",
    "PROFIBUS_CP_MODEL",
    "ProfibusBus",
    "ProgrammableLogicController",
    "S7CommunicationLibrary",
    "Step7Application",
    "Step7Project",
    "TrojanizedS7Library",
    "VACON",
]
