"""The ``s7otbxdx.dll`` communication library — and its evil twin.

§II.B: "The s7otbxdx.dll is a library file used by Step 7 software to
communicate with the PLC. The dll file exports several routines to read
and write code blocks to/from the PLC. By replacing the original version
of s7otbxdx.dll by its own compromised version, Stuxnet can intercept
any communication between Step 7 software and the PLC."

§II.C: "Anytime a request from the Step 7 software application tries to
access an infected block in the PLC, the request is intercepted and
modified so that Stuxnet infected blocks are not discovered nor
modified."
"""

DLL_NAME = "s7otbxdx.dll"
RENAMED_ORIGINAL = "s7otbxsx.dll"


class S7CommunicationLibrary:
    """The genuine library: transparent block IO against a PLC."""

    name = DLL_NAME

    def list_blocks(self, plc):
        return plc.block_names()

    def read_block(self, plc, name):
        """Read one block (a copy, as the real API uploads a snapshot)."""
        block = plc.read_block(name)
        return block.copy() if block is not None else None

    def write_block(self, plc, block):
        return plc.store_block(block)

    def delete_block(self, plc, name):
        return plc.delete_block(name)

    def monitor_frequency(self, plc):
        """What the HMI variable table shows the operator."""
        return plc.reported_frequency()


class TrojanizedS7Library:
    """Stuxnet's compromised ``s7otbxdx.dll``: the PLC rootkit.

    Wraps the genuine library and filters every route by which the
    engineer could notice or remove blocks tagged with the protected
    origin label.
    """

    name = DLL_NAME

    def __init__(self, genuine, protected_origin, on_intercept=None):
        self._genuine = genuine
        self._protected_origin = protected_origin
        self._on_intercept = on_intercept or (lambda operation, name: None)

    def _is_protected(self, block):
        return block is not None and block.origin == self._protected_origin

    def list_blocks(self, plc):
        """Hide injected blocks from the block directory."""
        visible = []
        for name in self._genuine.list_blocks(plc):
            if self._is_protected(plc.read_block(name)):
                self._on_intercept("list", name)
                continue
            visible.append(name)
        return visible

    def read_block(self, plc, name):
        """Reads of infected blocks return nothing, as if absent."""
        block = plc.read_block(name)
        if self._is_protected(block):
            self._on_intercept("read", name)
            return None
        return self._genuine.read_block(plc, name)

    def write_block(self, plc, block):
        """Writes that would clobber an infected block are swallowed."""
        existing = plc.read_block(block.name)
        if self._is_protected(existing):
            self._on_intercept("write", block.name)
            return existing
        return self._genuine.write_block(plc, block)

    def delete_block(self, plc, name):
        if self._is_protected(plc.read_block(name)):
            self._on_intercept("delete", name)
            return False
        return self._genuine.delete_block(plc, name)

    def monitor_frequency(self, plc):
        return self._genuine.monitor_frequency(plc)
