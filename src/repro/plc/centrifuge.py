"""Centrifuge rotor physics: stress accumulation and failure.

The paper's damage narrative (§II.C): "it modifies the frequency to
1410Hz then to 2Hz then to 1064Hz. The intended consequence ... is that
the stresses from the excessive, then slower, speeds cause the aluminium
centrifugal tubes to expand forcing parts of the centrifuges into
excessive contact leading to the destruction of the machine."

The model is deliberately simple but preserves that shape: overspeed
above the rotor's rated ceiling accrues stress proportionally to the
excess; crawling far below operating speed (passing and dwelling at
critical/resonant speeds) accrues a steady resonance stress; a rotor
whose accumulated stress exceeds its capacity is destroyed.  Enrichment
output accrues only near nominal speed, so damage is measurable both as
destroyed machines and as lost production.
"""

#: Design operating frequency of an IR-1-like machine (Hz).
NOMINAL_FREQUENCY = 1064.0
#: Above this the rotor accrues overspeed stress.
OVERSPEED_LIMIT = 1300.0
#: Below this (while nominally operating) resonance stress accrues.
RESONANCE_LIMIT = 100.0
#: Stress units per (Hz over the limit) per second.
OVERSPEED_STRESS_RATE = 0.0008
#: Stress units per second while crawling below the resonance limit.
RESONANCE_STRESS_RATE = 0.012
#: Enrichment produced per second near nominal speed (arbitrary SWU-ish).
ENRICHMENT_RATE = 1.0
#: Band around nominal within which enrichment accrues.
ENRICHMENT_BAND = (1000.0, 1100.0)


class Centrifuge:
    """One rotor: accumulates stress, produces enrichment, eventually fails."""

    def __init__(self, ident, stress_capacity=100.0):
        self.ident = ident
        self.stress_capacity = stress_capacity
        self.accumulated_stress = 0.0
        self.destroyed = False
        self.destroyed_at = None
        self.enrichment_output = 0.0

    def integrate(self, frequency, duration, now=None):
        """Apply ``duration`` seconds of operation at ``frequency`` Hz."""
        if self.destroyed or duration <= 0:
            return
        if frequency > OVERSPEED_LIMIT:
            self.accumulated_stress += (
                (frequency - OVERSPEED_LIMIT) * OVERSPEED_STRESS_RATE * duration
            )
        elif 0 < frequency < RESONANCE_LIMIT:
            self.accumulated_stress += RESONANCE_STRESS_RATE * duration
        low, high = ENRICHMENT_BAND
        if low <= frequency <= high:
            self.enrichment_output += ENRICHMENT_RATE * duration
        if self.accumulated_stress >= self.stress_capacity:
            self.destroyed = True
            self.destroyed_at = now

    @property
    def stress_fraction(self):
        return min(self.accumulated_stress / self.stress_capacity, 1.0)

    def __repr__(self):
        state = "DESTROYED" if self.destroyed else "%.0f%%" % (100 * self.stress_fraction)
        return "Centrifuge(%s, stress=%s)" % (self.ident, state)


class CentrifugeCascade:
    """A bank of centrifuges driven by one frequency converter.

    Capacity varies widely per rotor (manufacturing spread), drawn from
    the simulation RNG so runs are reproducible: one attack cycle kills
    only the weakest rotors, and repeated cycles grind the cascade down
    progressively — the paper's multi-month degradation shape.
    """

    def __init__(self, name, count, rng=None, capacity_range=(95.0, 900.0)):
        self.name = name
        self.centrifuges = []
        low, high = capacity_range
        for index in range(count):
            if rng is not None:
                capacity = rng.uniform(low, high)
            else:
                # Deterministic spread without an RNG.
                capacity = low + (high - low) * ((index * 37) % 100) / 100.0
            self.centrifuges.append(
                Centrifuge("%s-%04d" % (name, index), stress_capacity=capacity)
            )

    def integrate(self, frequency, duration, now=None):
        for machine in self.centrifuges:
            machine.integrate(frequency, duration, now=now)

    def destroyed_count(self):
        return sum(1 for m in self.centrifuges if m.destroyed)

    def intact_count(self):
        return len(self.centrifuges) - self.destroyed_count()

    def total_enrichment(self):
        return sum(m.enrichment_output for m in self.centrifuges)

    def destruction_fraction(self):
        if not self.centrifuges:
            return 0.0
        return self.destroyed_count() / len(self.centrifuges)

    def __len__(self):
        return len(self.centrifuges)

    def __repr__(self):
        return "CentrifugeCascade(%r, %d/%d destroyed)" % (
            self.name, self.destroyed_count(), len(self.centrifuges),
        )
