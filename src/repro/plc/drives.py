"""Frequency-converter drives.

§II.C: "Stuxnet will only launch the damaging payload if the PLC is
using one of two frequency converter drives: one manufactured by an
Iranian company and one by a Finnish company."  The vendor constants
below are that fingerprint.
"""

#: The Iranian drive vendor the Stuxnet payload fingerprints.
FARARO_PAYA = "Fararo Paya"
#: The Finnish drive vendor the Stuxnet payload fingerprints.
VACON = "Vacon"


class FrequencyConverterDrive:
    """One drive: commands a cascade of centrifuges at a frequency.

    Integration is lazy: the drive remembers when the frequency last
    changed and applies the elapsed interval to its cascade on the next
    change or explicit :meth:`sync`.  This keeps month-long simulations
    cheap while remaining exact for piecewise-constant frequencies.
    """

    def __init__(self, ident, vendor, cascade, clock, max_frequency=1500.0):
        self.ident = ident
        self.vendor = vendor
        self.cascade = cascade
        self._clock = clock
        self.max_frequency = max_frequency
        self.frequency = 0.0
        self._last_update = clock.now
        #: (time, frequency) command history — the bus forensics surface.
        self.command_history = [(clock.now, 0.0)]

    def sync(self):
        """Integrate cascade physics up to the current virtual time."""
        now = self._clock.now
        elapsed = now - self._last_update
        if elapsed > 0:
            self.cascade.integrate(self.frequency, elapsed, now=now)
            self._last_update = now

    def set_frequency(self, frequency):
        """Command a new output frequency (clamped to the drive's ceiling)."""
        self.sync()
        frequency = max(0.0, min(float(frequency), self.max_frequency))
        self.frequency = frequency
        self.command_history.append((self._clock.now, frequency))
        return frequency

    def read_frequency(self):
        """Actual output frequency right now."""
        return self.frequency

    def __repr__(self):
        return "FrequencyConverterDrive(%r, %s, %.0f Hz)" % (
            self.ident, self.vendor, self.frequency,
        )
