"""The Step 7 engineering application on a Windows host.

Installing Step 7 marks the host as an engineering workstation; the
application's calls all route through the host's API hook table, which is
precisely the surface Stuxnet hooks (§II.B: "Stuxnet will hook specific
APIs used to open Step 7 projects").
"""

from repro.plc.blocks import CodeBlock
from repro.plc.s7otbx import DLL_NAME, S7CommunicationLibrary

STEP7_SOFTWARE_LABEL = "step7"


class Step7Project:
    """One engineering project: a folder of block sources on the host."""

    def __init__(self, name, folder):
        self.name = name
        self.folder = folder
        self.blocks = []

    def add_block(self, block):
        self.blocks.append(block)
        return block

    def __repr__(self):
        return "Step7Project(%r, %d blocks)" % (self.name, len(self.blocks))


class Step7Application:
    """Step 7 installed on one Windows host."""

    def __init__(self, host):
        self.host = host
        self.library = S7CommunicationLibrary()
        self.projects = {}
        host.installed_software.add(STEP7_SOFTWARE_LABEL)
        host.step7 = self
        host.vfs.write(
            host.system_dir + "\\" + DLL_NAME,
            b"genuine s7 communication library",
            origin="siemens",
        )
        self._register_apis()

    def _register_apis(self):
        hooks = self.host.hooks
        hooks.register_api("s7.open_project", self._open_project_impl)
        hooks.register_api("s7.read_block",
                           lambda plc, name: self.library.read_block(plc, name))
        hooks.register_api("s7.write_block",
                           lambda plc, block: self.library.write_block(plc, block))
        hooks.register_api("s7.list_blocks",
                           lambda plc: self.library.list_blocks(plc))
        hooks.register_api("s7.delete_block",
                           lambda plc, name: self.library.delete_block(plc, name))
        hooks.register_api("s7.monitor_frequency",
                           lambda plc: self.library.monitor_frequency(plc))

    # -- project handling -------------------------------------------------------

    def create_project(self, name, folder):
        project = Step7Project(name, folder)
        self.host.vfs.write(folder + "\\%s.s7p" % name,
                            b"step7 project file", origin="engineer")
        self.projects[folder.lower()] = project
        return project

    def _open_project_impl(self, folder):
        project = self.projects.get(folder.lower())
        if project is None:
            raise KeyError("no Step 7 project in %r" % folder)
        self.host.trace("step7-project-opened", target=project.name)
        return project

    def open_project(self, folder):
        """Open a project — goes through the hookable API."""
        return self.host.hooks.call("s7.open_project", folder)

    # -- PLC IO (all hookable) ------------------------------------------------------

    def download_project(self, project, plc):
        """Write every project block to the PLC (engineer action)."""
        self.host.trace("step7-download", target=plc.name,
                        blocks=[b.name for b in project.blocks])
        for block in project.blocks:
            self.host.hooks.call("s7.write_block", plc, block)
        return len(project.blocks)

    def upload_block(self, plc, name):
        return self.host.hooks.call("s7.read_block", plc, name)

    def list_plc_blocks(self, plc):
        return self.host.hooks.call("s7.list_blocks", plc)

    def delete_plc_block(self, plc, name):
        return self.host.hooks.call("s7.delete_block", plc, name)

    def monitor_frequency(self, plc):
        """The operator's HMI frequency readout."""
        return self.host.hooks.call("s7.monitor_frequency", plc)

    def write_block(self, plc, name, kind="OB", logic=None, origin="engineer"):
        """Convenience: author and download a single block."""
        block = CodeBlock(name, kind, logic=logic, origin=origin)
        return self.host.hooks.call("s7.write_block", plc, block)
