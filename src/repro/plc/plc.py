"""The programmable logic controller.

"PLC is a small computer system that operates in real time and plays the
role of interface between the software application (Step 7) and the
industrial physical machines ... Once the PLC is configured, the Windows
computer can be unplugged and PLC will function by itself." (§II.A)

The PLC owns a Profibus bus, stores code blocks, and runs a scan cycle on
the simulation kernel.  Monitoring reads (what the HMI and the digital
safety system consume) go through :meth:`reported_frequency`, which
infected blocks can override — the PLC-rootkit replay trick.
"""

from repro.plc.blocks import CodeBlock
from repro.plc.centrifuge import NOMINAL_FREQUENCY


class ProgrammableLogicController:
    """One S7-315-like controller."""

    #: Scan interval in virtual seconds.  Real scan cycles are
    #: milliseconds; the simulation only needs decisions at the cadence
    #: the physics changes, and the attack phases last minutes-to-hours.
    SCAN_INTERVAL = 60.0

    def __init__(self, kernel, name, bus):
        self.kernel = kernel
        self.name = name
        self.bus = bus
        self._blocks = {}
        self._scan_task = None
        self.scan_count = 0
        #: Setpoint the legitimate control program maintains.
        self.setpoint = NOMINAL_FREQUENCY
        #: When set, monitoring reads return this instead of the bus
        #: truth (the Stuxnet replay-to-operator trick).
        self.reported_frequency_override = None
        #: When True the legitimate control program stands down — an
        #: injected block that runs first has taken over the drives.
        self.control_suppressed = False
        self._install_default_program()

    # -- program -------------------------------------------------------------

    def _install_default_program(self):
        def ob1_logic(plc):
            # Maintain the enrichment setpoint on every drive.
            if plc.control_suppressed:
                return
            for drive in plc.bus.devices():
                if abs(drive.read_frequency() - plc.setpoint) > 0.5:
                    plc.bus.command_frequency(drive.ident, plc.setpoint)

        self.store_block(CodeBlock("OB1", "OB", logic=ob1_logic, origin="engineer"))

    def store_block(self, block):
        """Write a block into PLC memory (the raw, unhooked path)."""
        self._blocks[block.name.upper()] = block
        return block

    def read_block(self, name):
        """Read a block from PLC memory (raw path); None when absent."""
        return self._blocks.get(name.upper())

    def delete_block(self, name):
        return self._blocks.pop(name.upper(), None) is not None

    def block_names(self):
        return sorted(self._blocks)

    def blocks_with_origin(self, origin):
        return [b for b in self._blocks.values() if b.origin == origin]

    # -- scan cycle -----------------------------------------------------------

    def power_on(self):
        """Start the scan cycle on the kernel."""
        if self._scan_task is None:
            self._scan_task = self.kernel.every(
                self.SCAN_INTERVAL, self._scan, "plc-scan:%s" % self.name
            )
        return self

    def power_off(self):
        if self._scan_task is not None:
            self._scan_task.stop()
            self._scan_task = None

    @property
    def running(self):
        return self._scan_task is not None

    def _scan(self):
        self.scan_count += 1
        # Organisation blocks execute each scan, in name order, which
        # puts an injected "OB0" ahead of the legitimate OB1 — mirroring
        # how Stuxnet's code runs before the original program.
        for name in sorted(self._blocks):
            block = self._blocks[name]
            if block.kind == "OB" and block.logic is not None:
                block.logic(self)

    # -- monitoring (what HMI and safety systems read) ---------------------------

    def actual_frequency(self):
        """Ground truth: mean of the drives' real output frequencies."""
        devices = self.bus.devices()
        if not devices:
            return 0.0
        return sum(d.read_frequency() for d in devices) / len(devices)

    def reported_frequency(self):
        """What monitoring consumers are told (rootkit can override)."""
        if self.reported_frequency_override is not None:
            return self.reported_frequency_override
        return self.actual_frequency()

    def __repr__(self):
        return "PLC(%r, blocks=%s, running=%s)" % (
            self.name, self.block_names(), self.running,
        )
