"""Population-scale epidemics: the hybrid fidelity tier.

Layers, bottom up:

* :mod:`repro.epidemic.pool` — struct-of-arrays host population
  (8 bytes/host; a 10^6-host pool is ~8 MB and four base64 strings in
  a checkpoint);
* :mod:`repro.epidemic.model` — the seeded discrete-time S/E/I/R
  stepper with per-campaign USB/LAN/C2 transmission profiles, damped
  live by the fault engine's DNS dispositions;
* :mod:`repro.epidemic.promote` — on-demand promotion of pool rows to
  full :class:`~repro.winsim.WindowsHost` fidelity, and the write-back
  demotion;
* :mod:`repro.epidemic.oracle` — the slow full-fidelity reference the
  differential suite checks the fast tier against;
* :mod:`repro.epidemic.scenarios` — Stuxnet/Flame campaigns calibrated
  to the paper's victim distributions.
"""

from repro.epidemic.model import (
    EpidemicModel,
    SECONDS_PER_DAY,
    TransmissionProfile,
    c2_availability,
)
from repro.epidemic.oracle import FullFidelityEpidemic
from repro.epidemic.pool import (
    EXPOSED,
    HostPool,
    INFECTIOUS,
    RECOVERED,
    STATE_NAMES,
    SUSCEPTIBLE,
    VECTORS,
    assign_regions,
)
from repro.epidemic.promote import (
    EpidemicInfection,
    demote_host,
    promote_host,
)
from repro.epidemic.scenarios import (
    EpidemicCampaign,
    FLAME_EPIDEMIC_DOMAINS,
    FLAME_REGIONS,
    FlameEpidemicCampaign,
    STUXNET_REGIONS,
    StuxnetEpidemicCampaign,
    flame_profile,
    stuxnet_profile,
)

__all__ = [
    "EXPOSED",
    "EpidemicCampaign",
    "EpidemicInfection",
    "EpidemicModel",
    "FLAME_EPIDEMIC_DOMAINS",
    "FLAME_REGIONS",
    "FlameEpidemicCampaign",
    "FullFidelityEpidemic",
    "HostPool",
    "INFECTIOUS",
    "RECOVERED",
    "SECONDS_PER_DAY",
    "STATE_NAMES",
    "STUXNET_REGIONS",
    "SUSCEPTIBLE",
    "StuxnetEpidemicCampaign",
    "TransmissionProfile",
    "VECTORS",
    "assign_regions",
    "c2_availability",
    "demote_host",
    "flame_profile",
    "promote_host",
    "stuxnet_profile",
]
