"""The compartmental epidemic stepper driving a :class:`HostPool`.

A discrete-time S/E/I/R model in the spirit of "Malware Epidemics
Effects in a Lanchester Conflict Model" (PAPERS.md), parameterised per
campaign by a :class:`TransmissionProfile`: how strongly the malware
spreads over USB couriers (global, proportional to total prevalence),
over LANs (regional, proportional to regional prevalence), and via
C2-pushed propagation (damped by the fault engine — a DNS takedown or
sinkhole of the profile's C&C domains measurably slows the epidemic).

The stepping spec — shared verbatim with the full-fidelity oracle in
:mod:`repro.epidemic.oracle`, which implements it independently over
real ``WindowsHost`` objects — is:

1. Per-epoch hazards come from the compartment counts *at the start of
   the epoch*.  For a host in region ``r``::

       p_usb = usb_rate * I_total / N
       p_lan = lan_rate * I_r / N_r
       p_c2  = c2_rate * c2_availability     (0 when I_total == 0)
       p     = 1 - (1 - p_usb)(1 - p_lan)(1 - p_c2)

   ``c2_availability`` is the fraction of the profile's C&C domains the
   fault engine currently resolves normally (no blackout, takedown, or
   sinkhole) — a pure, RNG-free read of the fault schedule.
2. Susceptible hosts are visited in ascending index order; each draws
   exactly one uniform and is exposed when it falls below its region's
   hazard, immediately followed by one more uniform attributing the
   transmission vector proportionally to the three hazard shares.  An
   epoch whose hazards are all zero consumes no draws at all.
3. Infectious hosts are visited in exposure order — ``(exposed_epoch,
   index)``, which append-only bookkeeping maintains for free — and
   each draws one uniform against the recovery rate (skipped entirely
   when the effective recovery rate is zero).
4. Exposed hosts whose latency has elapsed turn infectious,
   deterministically, with no draws.
5. This epoch's new exposures join the exposed queue.

All draws come from one dedicated ``fork("epidemic:<label>")`` stream,
so the model never perturbs (and is never perturbed by) any other
randomness in the kernel.  The model registers itself as a kernel state
provider: checkpoints snapshot the pool arrays, the model RNG, and the
per-epoch infection curve, and the iteration orders above are
reconstructed from the arrays alone on restore.
"""

from repro.epidemic.pool import (
    EXPOSED,
    HostPool,
    INFECTIOUS,
    RECOVERED,
    STATE_NAMES,
    SUSCEPTIBLE,
)

SECONDS_PER_DAY = 86400.0


def c2_availability(kernel, domains):
    """Fraction of C&C domains the fault engine leaves resolvable.

    RNG-free: :meth:`FaultInjector.dns_disposition` reads the fault
    schedule without consuming randomness, so both fidelity tiers
    observe identical availability at identical virtual times.
    Returns 1.0 for profiles with no C2 channel.
    """
    domains = tuple(domains)
    if not domains:
        return 1.0
    faults = kernel.faults
    resolvable = sum(1 for domain in domains
                     if faults.dns_disposition(domain) is None)
    return resolvable / len(domains)


def _check_rate(name, value, low=0.0, high=1.0):
    value = float(value)
    if not low <= value <= high:
        raise ValueError("%s must be within [%g, %g], got %r"
                         % (name, low, high, value))
    return value


class TransmissionProfile:
    """Per-campaign spread parameters for the compartmental model.

    Parameters
    ----------
    name:
        Campaign label (doubles as the infection name promoted hosts
        register).
    usb_rate, lan_rate, c2_rate:
        Per-epoch transmission pressure of each channel, in [0, 1].
    c2_domains:
        The C&C domains whose fault-engine disposition damps
        ``c2_rate`` (takedown/sinkhole/blackout -> unavailable).
    region_weights:
        ``(region, weight)`` pairs — the paper's victim distribution.
    latency_epochs:
        Epochs between exposure and infectiousness (>= 1, so an
        exposure never spreads within its own epoch).
    recovery_rate:
        Per-epoch probability an infectious host is cleaned.
    disclosure_epoch:
        When set, the epoch the campaign becomes public — AV signatures
        ship, operators panic (Flame's suicide command): transmission
        is damped by ``disclosure_damp`` and recovery is boosted by
        ``disclosure_recovery_boost`` from that epoch on.
    """

    def __init__(self, name, usb_rate=0.0, lan_rate=0.0, c2_rate=0.0,
                 c2_domains=(), region_weights=(("world", 1.0),),
                 latency_epochs=1, recovery_rate=0.0,
                 disclosure_epoch=None, disclosure_damp=0.0,
                 disclosure_recovery_boost=0.0):
        if not name or not isinstance(name, str):
            raise ValueError("profile name must be a non-empty string, "
                             "got %r" % (name,))
        self.name = name
        self.usb_rate = _check_rate("usb_rate", usb_rate)
        self.lan_rate = _check_rate("lan_rate", lan_rate)
        self.c2_rate = _check_rate("c2_rate", c2_rate)
        self.c2_domains = tuple(c2_domains)
        self.region_weights = tuple((str(region), float(weight))
                                    for region, weight in region_weights)
        if not isinstance(latency_epochs, int) or latency_epochs < 1:
            raise ValueError("latency_epochs must be an integer >= 1, "
                             "got %r" % (latency_epochs,))
        self.latency_epochs = latency_epochs
        self.recovery_rate = _check_rate("recovery_rate", recovery_rate)
        if disclosure_epoch is not None and (
                not isinstance(disclosure_epoch, int)
                or disclosure_epoch < 0):
            raise ValueError("disclosure_epoch must be None or an integer "
                             ">= 0, got %r" % (disclosure_epoch,))
        self.disclosure_epoch = disclosure_epoch
        self.disclosure_damp = _check_rate("disclosure_damp",
                                           disclosure_damp)
        self.disclosure_recovery_boost = _check_rate(
            "disclosure_recovery_boost", disclosure_recovery_boost)

    def rates_at(self, epoch):
        """Effective ``(usb, lan, c2, recovery)`` rates for one epoch."""
        usb, lan, c2 = self.usb_rate, self.lan_rate, self.c2_rate
        recovery = self.recovery_rate
        if self.disclosure_epoch is not None and \
                epoch >= self.disclosure_epoch:
            keep = 1.0 - self.disclosure_damp
            usb *= keep
            lan *= keep
            c2 *= keep
            recovery = min(1.0, recovery + self.disclosure_recovery_boost)
        return usb, lan, c2, recovery

    def __repr__(self):
        return ("TransmissionProfile(%r, usb=%g, lan=%g, c2=%g, "
                "latency=%d, recovery=%g)"
                % (self.name, self.usb_rate, self.lan_rate, self.c2_rate,
                   self.latency_epochs, self.recovery_rate))


class EpidemicModel:
    """Steps a :class:`HostPool` through seeded compartmental epochs.

    The model owns the pool (built here so both fidelity tiers share
    the region-assignment fork label), schedules itself on the kernel
    as self-rescheduling ``epidemic.step:<label>`` events, and registers
    as the kernel state provider ``epidemic:<label>`` so checkpoints
    carry the pool arrays and the model RNG.
    """

    EVENT_LABEL = "epidemic.step"

    def __init__(self, kernel, profile, host_count, epochs,
                 epoch_seconds=SECONDS_PER_DAY, label=None):
        if not isinstance(epochs, int) or epochs < 1:
            raise ValueError("epochs must be an integer >= 1, got %r"
                             % (epochs,))
        if not epoch_seconds > 0:
            raise ValueError("epoch_seconds must be positive, got %r"
                             % (epoch_seconds,))
        self._kernel = kernel
        self.profile = profile
        self._label = label or profile.name
        self.pool = HostPool(
            host_count, profile.region_weights,
            kernel.rng.fork("epidemic-regions:%s" % self._label))
        self._rng = kernel.rng.fork("epidemic:%s" % self._label)
        self._epochs = epochs
        self._epoch_seconds = float(epoch_seconds)
        self._epoch = 0
        self._curve = []
        self._seeded = False
        self._started = False
        #: Iteration orders (see module docstring): ascending indices /
        #: exposure order, all reconstructible from the pool arrays.
        self._susceptible = list(range(host_count))
        self._exposed = []
        self._infectious = []
        kernel.register_state_provider(self.provider_name, self)

    # -- identity -------------------------------------------------------------

    @property
    def label(self):
        return self._label

    @property
    def provider_name(self):
        return "epidemic:%s" % self._label

    @property
    def event_label(self):
        return "%s:%s" % (self.EVENT_LABEL, self._label)

    @property
    def epoch(self):
        """Epochs stepped so far (0 until the first step fires)."""
        return self._epoch

    @property
    def epochs(self):
        return self._epochs

    @property
    def curve(self):
        """Per-epoch infection-curve records (list of dicts)."""
        return list(self._curve)

    @property
    def finished(self):
        return self._epoch >= self._epochs

    # -- driving --------------------------------------------------------------

    def seed_initial(self, count, vector="initial"):
        """Pick ``count`` patient zeros from a dedicated seeding fork."""
        if self._seeded:
            raise RuntimeError("epidemic %r is already seeded" % self._label)
        if not 0 < count <= self.pool.count:
            raise ValueError(
                "initial infections must be within [1, %d], got %r"
                % (self.pool.count, count))
        rng = self._kernel.rng.fork("epidemic-seed:%s" % self._label)
        chosen = sorted(rng.sample(range(self.pool.count), count))
        for index in chosen:
            self.pool.seed(index, epoch=0, vector=vector)
            self._infectious.append(index)
        seeded = set(chosen)
        self._susceptible = [index for index in self._susceptible
                             if index not in seeded]
        self._seeded = True
        self._record_epoch(new_infections=count, c2_availability=1.0)
        self._kernel.trace.record("epidemic", "seeded", self._label,
                                  infections=count)
        return chosen

    def start(self):
        """Schedule the per-epoch stepping events on the kernel."""
        if not self._seeded:
            raise RuntimeError("seed_initial() must run before start()")
        if self._started:
            raise RuntimeError("epidemic %r is already started"
                               % self._label)
        self._started = True
        if self._epoch < self._epochs:
            self._kernel.call_later(self._epoch_seconds, self._on_step,
                                    self.event_label)

    def horizon_seconds(self):
        """Virtual seconds from seeding to the final epoch's step."""
        return self._epochs * self._epoch_seconds

    def checkpoint_callbacks(self):
        """Label->factory registry for ``restore_kernel(callbacks=...)``,
        rebinding a restored pending step event to this model."""
        return {self.event_label: lambda label: self._on_step}

    def _on_step(self):
        self._epoch += 1
        with self._kernel.span("epidemic.epoch", label=self._label,
                               epoch=self._epoch):
            new_infections, recoveries, availability = self._step_epoch()
            self._record_epoch(new_infections=new_infections,
                               c2_availability=availability)
            point = self._curve[-1]
            self._kernel.trace.record(
                "epidemic", "epoch", self._label, epoch=self._epoch,
                susceptible=point["susceptible"], exposed=point["exposed"],
                infectious=point["infectious"],
                recovered=point["recovered"],
                new_infections=new_infections,
                c2_availability=availability)
            metrics = self._kernel.metrics
            metrics.inc("epidemic.infections", new_infections)
            metrics.inc("epidemic.recoveries", recoveries)
            metrics.gauge("epidemic.infectious").set(
                self.pool.counts[INFECTIOUS])
            metrics.gauge("epidemic.susceptible").set(
                self.pool.counts[SUSCEPTIBLE])
        if self._epoch < self._epochs:
            self._kernel.call_later(self._epoch_seconds, self._on_step,
                                    self.event_label)

    def c2_availability(self):
        """See the module-level :func:`c2_availability`."""
        return c2_availability(self._kernel, self.profile.c2_domains)

    def _step_epoch(self):
        """One epoch of the spec; returns (new infections, recoveries,
        c2 availability)."""
        pool = self.pool
        total = pool.count
        i_total = pool.counts[INFECTIOUS]
        availability = self.c2_availability()
        usb, lan, c2, recovery = self.profile.rates_at(self._epoch)
        p_usb = usb * i_total / total
        p_c2 = c2 * availability if i_total else 0.0
        hazards = []
        shares = []
        any_hazard = False
        for code, population in enumerate(pool.region_counts):
            infectious_here = pool.infectious_by_region[code]
            p_lan = (lan * infectious_here / population) if population \
                else 0.0
            hazard = 1.0 - (1.0 - p_usb) * (1.0 - p_lan) * (1.0 - p_c2)
            hazards.append(hazard)
            shares.append((p_usb, p_lan, p_c2))
            if hazard > 0.0:
                any_hazard = True

        new_exposed = []
        if any_hazard:
            rand = self._rng.random
            region = pool.region_view()
            epoch = self._epoch
            expose = pool.expose
            survivors = []
            keep = survivors.append
            caught = new_exposed.append
            for index in self._susceptible:
                code = region[index]
                if rand() < hazards[code]:
                    p_u, p_l, p_c = shares[code]
                    draw = rand() * (p_u + p_l + p_c)
                    if draw < p_u:
                        vector = "usb"
                    elif draw < p_u + p_l:
                        vector = "lan"
                    else:
                        vector = "c2"
                    expose(index, epoch, vector)
                    caught(index)
                else:
                    keep(index)
            self._susceptible = survivors

        recoveries = 0
        if recovery > 0.0 and self._infectious:
            rand = self._rng.random
            still_infectious = []
            for index in self._infectious:
                if rand() < recovery:
                    pool.recover(index)
                    recoveries += 1
                else:
                    still_infectious.append(index)
            self._infectious = still_infectious

        latency = self.profile.latency_epochs
        exposed = self._exposed
        promoted = 0
        exposed_epoch = pool.exposed_epoch_view()
        while promoted < len(exposed) and \
                self._epoch - exposed_epoch[exposed[promoted]] >= latency:
            index = exposed[promoted]
            pool.activate(index)
            self._infectious.append(index)
            promoted += 1
        if promoted:
            self._exposed = exposed[promoted:]

        self._exposed.extend(new_exposed)
        return len(new_exposed), recoveries, availability

    def _record_epoch(self, new_infections, c2_availability):
        counts = self.pool.counts
        self._curve.append({
            "epoch": self._epoch,
            "susceptible": counts[SUSCEPTIBLE],
            "exposed": counts[EXPOSED],
            "infectious": counts[INFECTIOUS],
            "recovered": counts[RECOVERED],
            "cumulative": self.pool.cumulative_infections(),
            "new_infections": new_infections,
            "c2_availability": c2_availability,
        })

    # -- state provider (checkpoint extension) ---------------------------------

    def snapshot_state(self):
        """Pool arrays + model RNG + curve: the checkpoint payload."""
        return {
            "label": self._label,
            "epoch": self._epoch,
            "epochs": self._epochs,
            "epoch_seconds": self._epoch_seconds,
            "seeded": self._seeded,
            "started": self._started,
            "rng": self._rng.getstate(),
            "curve": [dict(point) for point in self._curve],
            "pool": self.pool.snapshot_state(),
        }

    def load_state(self, state):
        from repro.sim.errors import CheckpointError

        try:
            label = state["label"]
            epoch = int(state["epoch"])
            epochs = int(state["epochs"])
            epoch_seconds = float(state["epoch_seconds"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                "malformed epidemic model state: %s: %s"
                % (type(exc).__name__, exc)) from exc
        if label != self._label:
            raise CheckpointError(
                "epidemic label mismatch: snapshot is %r, model is %r"
                % (label, self._label))
        if epochs != self._epochs or epoch_seconds != self._epoch_seconds:
            raise CheckpointError(
                "epidemic schedule mismatch: snapshot ran %d epochs of "
                "%gs, model was built for %d epochs of %gs"
                % (epochs, epoch_seconds, self._epochs,
                   self._epoch_seconds))
        self.pool.load_state(state["pool"])
        self._rng.setstate(state["rng"])
        self._epoch = epoch
        self._seeded = bool(state["seeded"])
        self._started = bool(state["started"])
        self._curve = [dict(point) for point in state["curve"]]
        self.resync_from_pool()

    def resync_from_pool(self):
        """Rebuild the iteration orders from the pool arrays.

        The spec's orders are pure functions of the arrays: susceptible
        hosts ascend by index, exposed and infectious hosts sort by
        ``(exposed_epoch, index)`` — exactly the order append-only
        stepping produced them in.  Also the repair hook after
        out-of-band pool edits (a demotion write-back).
        """
        states = self.pool.state_view()
        exposed_epoch = self.pool.exposed_epoch_view()
        self._susceptible = [index for index, code in enumerate(states)
                             if code == SUSCEPTIBLE]
        exposed = [(exposed_epoch[index], index)
                   for index, code in enumerate(states) if code == EXPOSED]
        exposed.sort()
        self._exposed = [index for _, index in exposed]
        infectious = [(exposed_epoch[index], index)
                      for index, code in enumerate(states)
                      if code == INFECTIOUS]
        infectious.sort()
        self._infectious = [index for _, index in infectious]

    def __repr__(self):
        return ("EpidemicModel(%r, epoch %d/%d, S/E/I/R=%r)"
                % (self._label, self._epoch, self._epochs,
                   self.pool.counts))
