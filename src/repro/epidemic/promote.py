"""On-demand promotion between the pool tier and full fidelity.

A pool row is eight bytes; a :class:`~repro.winsim.WindowsHost` is a
filesystem, a registry, a process table.  Campaigns that need to *look
inside* an infected machine (what did Flame exfiltrate from an Iranian
victim?  is the Stuxnet driver signed?) promote sampled pool rows into
real hosts, run whatever full-fidelity behaviour they need, and demote
the outcome back into the pool.

Promotion is faithful: the new host's infection registry reflects the
row's compartment (an :class:`EpidemicInfection` marked latent for E,
active for I), so every malware/netsim code path that asks
``host.is_infected_by(name)`` sees the same answer the pool gives.
Demotion is conservative in the other direction: whatever happened at
full fidelity — disinfection, a fresh infection, nothing — is written
back through :meth:`HostPool.force_state`, which repairs every derived
counter.  Callers that demote mid-epidemic must then call
``EpidemicModel.resync_from_pool()`` so the stepper's iteration orders
pick up the edit.
"""

from repro.epidemic.pool import (
    EXPOSED,
    INFECTIOUS,
    RECOVERED,
    STATE_NAMES,
    SUSCEPTIBLE,
)


class EpidemicInfection:
    """The malware instance registered on promoted (and oracle) hosts.

    ``active`` distinguishes the E and I compartments: a latent
    infection is resident but not yet spreading.
    """

    def __init__(self, name, vector, exposed_epoch, active=True):
        self.name = name
        self.vector = vector
        self.exposed_epoch = exposed_epoch
        self.active = active

    def activate(self):
        """Latency elapsed: the infection starts spreading."""
        self.active = True
        return self

    def __repr__(self):
        return ("EpidemicInfection(%r, vector=%r, epoch=%d, %s)"
                % (self.name, self.vector, self.exposed_epoch,
                   "active" if self.active else "latent"))


def promote_host(world, pool, index, malware_name,
                 hostname_prefix="POOL", **config_kwargs):
    """Materialise one pool row as a full-fidelity Windows host.

    Returns the new host, tagged with ``pool_index`` /
    ``promoted_state`` / ``epidemic_region`` so :func:`demote_host` can
    write the outcome back.  If the row is exposed or infectious, a
    matching :class:`EpidemicInfection` is registered so full-fidelity
    infection checks agree with the pool's bookkeeping.
    """
    if not 0 <= index < pool.count:
        raise ValueError("pool index %d out of range [0, %d)"
                         % (index, pool.count))
    state = pool.state_of(index)
    host = world.make_host("%s-%06d" % (hostname_prefix, index),
                           **config_kwargs)
    host.pool_index = index
    host.promoted_state = state
    host.epidemic_region = pool.region_of(index)
    if state in (EXPOSED, INFECTIOUS):
        host.register_infection(malware_name, EpidemicInfection(
            malware_name, pool.vector_of(index),
            pool.exposed_epoch_of(index),
            active=(state == INFECTIOUS)))
    world.kernel.trace.record(
        "epidemic", "promote", host.hostname, index=index,
        state=STATE_NAMES[state], region=host.epidemic_region)
    return host


def demote_host(pool, host, malware_name):
    """Write one promoted host's full-fidelity outcome back to the pool.

    The compartment is inferred from evidence on the host, not from
    what the pool remembers: a resident infection means E or I (by its
    ``active`` flag); a host promoted susceptible and still clean stays
    S; anything else — the infection was removed, or the row was
    infected before promotion and the instance is gone — demotes to R.
    Returns the state code written back.
    """
    index = getattr(host, "pool_index", None)
    if index is None:
        raise ValueError("host %r was not promoted from a pool"
                         % host.hostname)
    infection = host.infections.get(malware_name)
    if infection is not None:
        state = INFECTIOUS if infection.active else EXPOSED
    elif host.promoted_state == SUSCEPTIBLE and not host.infections:
        state = SUSCEPTIBLE
    else:
        state = RECOVERED
    pool.force_state(index, state)
    host.kernel.trace.record(
        "epidemic", "demote", host.hostname, index=index,
        state=STATE_NAMES[state])
    return state
