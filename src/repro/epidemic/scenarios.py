"""Population-scale epidemic campaigns calibrated to the paper.

The paper reports *populations*, not machines: Stuxnet's ~100,000
infections with the September 2010 country breakdown (Iran 58.85%,
Indonesia 18.22%, India 8.31%, ...) and Flame's ~1,000 victims
concentrated in Iran (189), Israel/Palestine (98), Sudan (32), Syria
(30).  These campaigns drive the hybrid tier at that scale: a
million-host :class:`~repro.epidemic.pool.HostPool` stepped by the
compartmental model, with a handful of infectious rows promoted to full
:class:`~repro.winsim.WindowsHost` fidelity at the end — enough to
inspect an actual infection without paying for a million filesystems.

Transmission profiles are loosely calibrated to each weapon's known
vectors: Stuxnet is USB-heavy (the air-gap crossing that escaped into
the wild) with a token C2 channel over its two futbol domains; Flame is
LAN-heavy (WPAD MITM plus the fake Windows Update) with a stronger C2
dependence and a *disclosure event* — the May 2012 publication after
which AV signatures shipped and the operators broadcast the suicide
command, modelled as damped transmission plus boosted recovery.
"""

from repro.core.environments import CampaignWorld
from repro.epidemic.model import (
    EpidemicModel,
    SECONDS_PER_DAY,
    TransmissionProfile,
)
from repro.epidemic.pool import INFECTIOUS
from repro.epidemic.promote import demote_host, promote_host
from repro.malware.stuxnet import STUXNET_DOMAINS

#: Stuxnet victim distribution, September 2010 (paper §II, Symantec
#: dossier): percentage of infected hosts by country.
STUXNET_REGIONS = (
    ("iran", 58.85),
    ("indonesia", 18.22),
    ("india", 8.31),
    ("azerbaijan", 2.57),
    ("united-states", 1.56),
    ("pakistan", 1.28),
    ("other", 9.21),
)

#: Flame victim counts by country (paper §III, Kaspersky telemetry).
FLAME_REGIONS = (
    ("iran", 189.0),
    ("israel-palestine", 98.0),
    ("sudan", 32.0),
    ("syria", 30.0),
    ("lebanon", 18.0),
    ("saudi-arabia", 10.0),
    ("egypt", 5.0),
)

#: A slice of Flame's ~80-domain C&C pool (§III.C names the
#: traffic-themed registrations).
FLAME_EPIDEMIC_DOMAINS = (
    "traffic-spot.biz",
    "traffic-spot.com",
    "smart-access.net",
    "quick-net.info",
)


def stuxnet_profile():
    """USB-dominant spread with a light C2 assist and slow cleanup."""
    return TransmissionProfile(
        "stuxnet-epidemic",
        usb_rate=0.45,
        lan_rate=0.25,
        c2_rate=0.02,
        c2_domains=STUXNET_DOMAINS,
        region_weights=STUXNET_REGIONS,
        latency_epochs=1,
        recovery_rate=0.01,
    )


def flame_profile():
    """LAN/MITM-dominant spread, C2-dependent, with the May 2012
    disclosure: transmission collapses and cleanup surges once the
    campaign goes public."""
    return TransmissionProfile(
        "flame-epidemic",
        usb_rate=0.08,
        lan_rate=0.5,
        c2_rate=0.05,
        c2_domains=FLAME_EPIDEMIC_DOMAINS,
        region_weights=FLAME_REGIONS,
        latency_epochs=2,
        recovery_rate=0.005,
        disclosure_epoch=20,
        disclosure_damp=0.9,
        disclosure_recovery_boost=0.30,
    )


class EpidemicCampaign:
    """Base driver: seed, spread for ``epochs`` days, promote samples.

    Subclasses pin the transmission profile and default seed; the
    sweep engine constructs them via ``cls(seed=..., **params)`` like
    every other campaign.
    """

    def __init__(self, profile, seed, host_count=1_000_000, epochs=30,
                 epoch_days=1.0, initial_infections=5, promote_samples=2):
        self.world = CampaignWorld(seed=seed)
        self.profile = profile
        self.host_count = host_count
        self.epochs = epochs
        self.initial_infections = initial_infections
        self.promote_samples = promote_samples
        #: Built (and registered as a kernel state provider) at
        #: construction, so checkpoints restored onto a fresh campaign
        #: find the provider waiting.
        self.model = EpidemicModel(
            self.world.kernel, profile, host_count, epochs,
            epoch_seconds=epoch_days * SECONDS_PER_DAY)
        self.result = None

    def cnc_domains(self):
        """The campaign's C&C domains, for fault-profile targeting."""
        return list(self.profile.c2_domains)

    def fault_epoch(self):
        """Virtual time at which the campaign's action begins."""
        return 0.0

    def checkpoint_callbacks(self):
        """Callback registry for restoring mid-spread checkpoints."""
        return self.model.checkpoint_callbacks()

    def run(self):
        kernel = self.world.kernel
        model = self.model
        with kernel.span("epidemic.campaign", hosts=self.host_count,
                         epochs=self.epochs):
            with kernel.span("epidemic.seed",
                             infections=self.initial_infections):
                model.seed_initial(self.initial_infections)
                model.start()
            with kernel.span("epidemic.spread", epochs=self.epochs):
                kernel.run(until=model.horizon_seconds())
            with kernel.span("epidemic.promote",
                             samples=self.promote_samples):
                promoted = self._promote_samples()
        pool = model.pool
        curve = model.curve
        peak = max(curve, key=lambda point: point["infectious"])
        total_infected = pool.cumulative_infections()
        final = pool.compartments()
        self.result = {
            "host_count": self.host_count,
            "epochs": self.epochs,
            "initial_infections": self.initial_infections,
            "total_infected": total_infected,
            "attack_rate": total_infected / self.host_count,
            "peak_infectious": peak["infectious"],
            "peak_epoch": peak["epoch"],
            "final": final,
            "infections_by_vector": dict(pool.vector_counts),
            "infected_by_region": pool.infected_by_region(),
            "curve": curve,
            "promoted": promoted,
            "c2_impaired_epochs": sum(
                1 for point in curve if point["c2_availability"] < 1.0),
        }
        return self.result

    def _promote_samples(self):
        """Promote a few infectious rows to full fidelity and back.

        The promotion round-trip is part of every run on purpose: it
        exercises the tier boundary (a promoted host must carry its
        infection; demotion must leave the pool counters intact) at
        campaign scale, not just in unit tests.
        """
        pool = self.model.pool
        infectious = pool.indices_in_state(INFECTIOUS)
        count = min(self.promote_samples, len(infectious))
        if count <= 0:
            return []
        rng = self.world.kernel.rng.fork(
            "epidemic-promote:%s" % self.model.label)
        promoted = []
        for index in sorted(rng.sample(infectious, count)):
            host = promote_host(self.world, pool, index,
                                self.profile.name)
            if not host.is_infected_by(self.profile.name):
                raise RuntimeError(
                    "promotion lost the infection for pool host %d"
                    % index)
            demote_host(pool, host, self.profile.name)
            promoted.append(host.hostname)
        self.model.resync_from_pool()
        return promoted


class StuxnetEpidemicCampaign(EpidemicCampaign):
    """Stuxnet in the wild: the escape the 417 code never intended."""

    def __init__(self, seed=2010, **kwargs):
        super().__init__(stuxnet_profile(), seed, **kwargs)


class FlameEpidemicCampaign(EpidemicCampaign):
    """Flame's quiet years and loud death: spread, disclosure, suicide."""

    def __init__(self, seed=2012, **kwargs):
        super().__init__(flame_profile(), seed, **kwargs)
