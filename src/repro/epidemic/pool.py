"""Struct-of-arrays host pool: a million hosts without a million objects.

The paper's campaigns are regional epidemics (tens of thousands of
infections across the Middle East), but a full :class:`WindowsHost`
costs kilobytes of Python objects — a filesystem, a registry, a disk.
The pool stores only what the compartmental model needs, as parallel
``array`` rows:

* ``state``      — one byte per host: S/E/I/R compartment code;
* ``region``     — one short per host: index into the pool's region
  name table (the paper's per-country victim distributions);
* ``exposed_epoch`` — the epoch a host left S (−1 while susceptible),
  which together with the profile's fixed latency also determines when
  it turns infectious — so the model's iteration orders are fully
  reconstructible from the arrays alone;
* ``vector``     — which transmission channel claimed it (USB / LAN /
  C2 / initial seeding).

That is 8 bytes per host: a 10^6-host pool fits in ~8 MB and snapshots
into a checkpoint as four base64 strings.  Compartment totals, per-
region infectious counts, and per-vector tallies are maintained
incrementally, so the epidemic stepper's hazard computation is O(#
regions), not O(N).

Individual hosts are promoted to full fidelity on demand — see
:mod:`repro.epidemic.promote`.
"""

import base64
import sys
from array import array
from bisect import bisect_right

#: Compartment codes, in lifecycle order.  A host only ever moves
#: forward: S -> E (exposed, latent) -> I (infectious) -> R (removed —
#: cleaned, patched, or suicided).
SUSCEPTIBLE = 0
EXPOSED = 1
INFECTIOUS = 2
RECOVERED = 3

STATE_NAMES = ("susceptible", "exposed", "infectious", "recovered")

#: Transmission channels a pool host can be claimed by.  Stored as an
#: index into this tuple; 0 means "not infected yet".
VECTORS = ("none", "initial", "usb", "lan", "c2")

_VECTOR_CODES = {name: code for code, name in enumerate(VECTORS)}


def assign_regions(rng, count, region_weights):
    """Deterministically assign ``count`` hosts to weighted regions.

    One uniform draw per host against the cumulative weight table, in
    host-index order — the full-fidelity oracle uses the same function
    on the same forked stream, so both tiers agree on every host's
    region by construction.  Returns an ``array('h')`` of region codes.
    """
    if count < 0:
        raise ValueError("count must be >= 0, got %r" % count)
    weights = [float(weight) for _, weight in region_weights]
    if not weights or any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ValueError("region weights must be non-negative with a "
                         "positive sum, got %r" % (region_weights,))
    cumulative = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    regions = array("h")
    rand = rng.random
    top = len(weights) - 1
    for _ in range(count):
        regions.append(min(bisect_right(cumulative, rand() * total), top))
    return regions


def _encode_array(values):
    """JSON-safe snapshot of one pool array (canonical little-endian)."""
    if sys.byteorder == "big":
        values = array(values.typecode, values)
        values.byteswap()
    return {
        "typecode": values.typecode,
        "itemsize": values.itemsize,
        "data": base64.b64encode(values.tobytes()).decode("ascii"),
    }


def _decode_array(payload, expected_typecode, expected_length):
    """Rebuild one pool array from :func:`_encode_array` output."""
    from repro.sim.errors import CheckpointError

    try:
        typecode = payload["typecode"]
        itemsize = int(payload["itemsize"])
        data = base64.b64decode(payload["data"].encode("ascii"),
                                validate=True)
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            "malformed pool array payload: %s: %s"
            % (type(exc).__name__, exc)) from exc
    if typecode != expected_typecode:
        raise CheckpointError(
            "pool array typecode mismatch: snapshot has %r, this build "
            "uses %r" % (typecode, expected_typecode))
    values = array(expected_typecode)
    if values.itemsize != itemsize:
        raise CheckpointError(
            "pool array itemsize mismatch for typecode %r: snapshot "
            "recorded %d, this platform uses %d"
            % (typecode, itemsize, values.itemsize))
    try:
        values.frombytes(data)
    except ValueError as exc:
        raise CheckpointError(
            "truncated pool array payload: %s" % exc) from exc
    if len(values) != expected_length:
        raise CheckpointError(
            "pool array length mismatch: snapshot holds %d entries, "
            "pool expects %d" % (len(values), expected_length))
    if sys.byteorder == "big":
        values.byteswap()
    return values


class HostPool:
    """The aggregate-fidelity population: parallel arrays, no objects.

    Parameters
    ----------
    count:
        Number of hosts in the pool.
    region_weights:
        Sequence of ``(region_name, weight)`` pairs — the paper's
        victim distributions.
    rng:
        A dedicated forked stream for region assignment (one draw per
        host; nothing else in the pool consumes randomness).
    """

    def __init__(self, count, region_weights, rng):
        if count <= 0:
            raise ValueError("pool needs at least one host, got %r" % count)
        self.count = count
        self.region_names = tuple(name for name, _ in region_weights)
        if len(set(self.region_names)) != len(self.region_names):
            raise ValueError("duplicate region names: %r"
                             % (self.region_names,))
        self._region = assign_regions(rng, count, region_weights)
        self._state = array("b", bytes(count))
        self._exposed_epoch = array("i", [-1]) * count
        self._vector = array("b", bytes(count))
        #: Hosts per region (fixed at construction).
        self.region_counts = [0] * len(self.region_names)
        for code in self._region:
            self.region_counts[code] += 1
        #: Compartment totals, maintained incrementally.
        self.counts = [count, 0, 0, 0]
        #: Infectious hosts per region, maintained incrementally — the
        #: stepper's LAN hazard is O(#regions) because of this.
        self.infectious_by_region = [0] * len(self.region_names)
        #: Cumulative infections per transmission channel.
        self.vector_counts = {}

    # -- read access ----------------------------------------------------------

    def state_of(self, index):
        return self._state[index]

    def region_of(self, index):
        """Region *name* of one host."""
        return self.region_names[self._region[index]]

    def vector_of(self, index):
        """Transmission channel that claimed this host ('none' if S)."""
        return VECTORS[self._vector[index]]

    def exposed_epoch_of(self, index):
        """Epoch the host left S, or -1 while still susceptible."""
        return self._exposed_epoch[index]

    def region_view(self):
        """The raw region-code array — read-only, for hot loops."""
        return self._region

    def state_view(self):
        """The raw state array — read-only, for hot loops."""
        return self._state

    def exposed_epoch_view(self):
        """The raw exposure-epoch array — read-only."""
        return self._exposed_epoch

    def indices_in_state(self, state):
        """Ascending host indices currently in ``state``."""
        return [index for index, code in enumerate(self._state)
                if code == state]

    def compartments(self):
        """``{name: count}`` snapshot of the compartment totals."""
        return dict(zip(STATE_NAMES, self.counts))

    def cumulative_infections(self):
        """Hosts that have ever left S (E + I + R)."""
        return self.count - self.counts[SUSCEPTIBLE]

    def infected_by_region(self):
        """``{region: ever-infected hosts}`` — one O(N) scan."""
        totals = [0] * len(self.region_names)
        region = self._region
        for index, code in enumerate(self._state):
            if code != SUSCEPTIBLE:
                totals[region[index]] += 1
        return {name: totals[code]
                for code, name in enumerate(self.region_names)}

    # -- transitions ----------------------------------------------------------

    def _claim(self, index, epoch, vector):
        if self._state[index] != SUSCEPTIBLE:
            raise ValueError(
                "host %d is %s, not susceptible"
                % (index, STATE_NAMES[self._state[index]]))
        code = _VECTOR_CODES.get(vector)
        if code is None:
            raise ValueError("unknown vector %r (expected one of %s)"
                             % (vector, VECTORS[1:]))
        self._exposed_epoch[index] = epoch
        self._vector[index] = code
        self.counts[SUSCEPTIBLE] -= 1
        self.vector_counts[vector] = self.vector_counts.get(vector, 0) + 1

    def expose(self, index, epoch, vector):
        """S -> E: the host caught the malware this epoch."""
        self._claim(index, epoch, vector)
        self._state[index] = EXPOSED
        self.counts[EXPOSED] += 1

    def seed(self, index, epoch=0, vector="initial"):
        """S -> I directly: a patient-zero host, infectious from day one."""
        self._claim(index, epoch, vector)
        self._state[index] = INFECTIOUS
        self.counts[INFECTIOUS] += 1
        self.infectious_by_region[self._region[index]] += 1

    def activate(self, index):
        """E -> I: the latency elapsed; the host spreads from now on."""
        if self._state[index] != EXPOSED:
            raise ValueError(
                "host %d is %s, not exposed"
                % (index, STATE_NAMES[self._state[index]]))
        self._state[index] = INFECTIOUS
        self.counts[EXPOSED] -= 1
        self.counts[INFECTIOUS] += 1
        self.infectious_by_region[self._region[index]] += 1

    def recover(self, index):
        """I -> R: cleaned, patched, or suicided out of the population."""
        if self._state[index] != INFECTIOUS:
            raise ValueError(
                "host %d is %s, not infectious"
                % (index, STATE_NAMES[self._state[index]]))
        self._state[index] = RECOVERED
        self.counts[INFECTIOUS] -= 1
        self.counts[RECOVERED] += 1
        self.infectious_by_region[self._region[index]] -= 1

    def force_state(self, index, state):
        """Overwrite one host's compartment, fixing every counter.

        The demotion write-back path: a promoted host may have been
        disinfected (or infected) at full fidelity, and its pool row
        must reflect the outcome whatever it was.
        """
        if state not in (SUSCEPTIBLE, EXPOSED, INFECTIOUS, RECOVERED):
            raise ValueError("unknown state code %r" % (state,))
        old = self._state[index]
        if old == state:
            return
        self.counts[old] -= 1
        self.counts[state] += 1
        region = self._region[index]
        if old == INFECTIOUS:
            self.infectious_by_region[region] -= 1
        if state == INFECTIOUS:
            self.infectious_by_region[region] += 1
        if state == SUSCEPTIBLE:
            self._exposed_epoch[index] = -1
            self._vector[index] = 0
        self._state[index] = state

    # -- checkpointing --------------------------------------------------------

    def snapshot_state(self):
        """JSON-safe snapshot: arrays as base64, counters for checking.

        Pure observation — reads every array, mutates nothing, consumes
        no randomness.
        """
        return {
            "count": self.count,
            "region_names": list(self.region_names),
            "region_counts": list(self.region_counts),
            "counts": list(self.counts),
            "vector_counts": dict(sorted(self.vector_counts.items())),
            "arrays": {
                "state": _encode_array(self._state),
                "region": _encode_array(self._region),
                "exposed_epoch": _encode_array(self._exposed_epoch),
                "vector": _encode_array(self._vector),
            },
        }

    def load_state(self, state):
        """Restore a snapshot; derived counters are recomputed from the
        arrays and cross-checked against the recorded ones, so a
        tampered or miscounted snapshot fails loudly."""
        from repro.sim.errors import CheckpointError

        try:
            count = int(state["count"])
            region_names = tuple(state["region_names"])
            arrays = state["arrays"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                "malformed pool snapshot: %s: %s"
                % (type(exc).__name__, exc)) from exc
        if count != self.count:
            raise CheckpointError(
                "pool size mismatch: snapshot holds %d hosts, pool was "
                "built with %d" % (count, self.count))
        if region_names != self.region_names:
            raise CheckpointError(
                "pool region mismatch: snapshot has %r, pool was built "
                "with %r" % (region_names, self.region_names))
        self._state = _decode_array(arrays["state"], "b", count)
        self._region = _decode_array(arrays["region"], "h", count)
        self._exposed_epoch = _decode_array(arrays["exposed_epoch"], "i",
                                            count)
        self._vector = _decode_array(arrays["vector"], "b", count)
        counts = [0, 0, 0, 0]
        infectious_by_region = [0] * len(self.region_names)
        region_counts = [0] * len(self.region_names)
        vector_counts = {}
        for index, code in enumerate(self._state):
            if not 0 <= code <= RECOVERED:
                raise CheckpointError(
                    "pool snapshot holds invalid state code %r at host %d"
                    % (code, index))
            counts[code] += 1
            region = self._region[index]
            if not 0 <= region < len(self.region_names):
                raise CheckpointError(
                    "pool snapshot holds invalid region code %r at host %d"
                    % (region, index))
            region_counts[region] += 1
            if code == INFECTIOUS:
                infectious_by_region[region] += 1
            vector = self._vector[index]
            if code != SUSCEPTIBLE:
                name = VECTORS[vector]
                vector_counts[name] = vector_counts.get(name, 0) + 1
        if counts != list(state.get("counts", counts)):
            raise CheckpointError(
                "pool snapshot counters disagree with its arrays: "
                "recorded %r, recomputed %r" % (state["counts"], counts))
        self.counts = counts
        self.region_counts = region_counts
        self.infectious_by_region = infectious_by_region
        self.vector_counts = dict(sorted(vector_counts.items()))

    def __len__(self):
        return self.count

    def __repr__(self):
        return ("HostPool(%d hosts, %d regions, S/E/I/R=%r)"
                % (self.count, len(self.region_names), self.counts))
