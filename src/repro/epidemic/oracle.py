"""The full-fidelity epidemic oracle for differential testing.

:class:`FullFidelityEpidemic` implements the epoch-stepping spec from
:mod:`repro.epidemic.model` *independently*, over real
:class:`~repro.winsim.WindowsHost` objects: every host is a genuine
object, exposure registers a genuine :class:`EpidemicInfection`, and —
crucially — the compartment counts that drive each epoch's hazards are
**recounted from the host objects** (``host.infections`` plus the
recovered ledger) rather than carried in aggregate counters.

Because both tiers fork the same RNG labels (``epidemic-regions:<label>``
for region assignment, ``epidemic-seed:<label>`` for patient zeros,
``epidemic:<label>`` for the dynamics) and follow the same draw order,
two same-seed kernels — one driving an :class:`EpidemicModel`, one
driving this oracle — must produce byte-identical infection curves.
The differential suite asserts exactly that; any divergence means one
tier's bookkeeping (the pool's incremental counters, the FIFO orders,
the skip-draw rules) is wrong.

The oracle is O(N) objects and O(N) recounting per epoch, so it only
scales to a few hundred hosts — which is the point: it is the slow,
obviously-correct implementation the fast one is checked against.
"""

from repro.epidemic.model import SECONDS_PER_DAY, c2_availability
from repro.epidemic.pool import assign_regions
from repro.epidemic.promote import EpidemicInfection


class FullFidelityEpidemic:
    """Per-host epidemic over real Windows hosts; the slow reference.

    Parameters mirror :class:`~repro.epidemic.model.EpidemicModel`;
    ``world`` is a :class:`~repro.core.environments.CampaignWorld`
    whose ``make_host`` builds each member of the population.
    """

    def __init__(self, world, profile, host_count, epochs,
                 epoch_seconds=SECONDS_PER_DAY, label=None,
                 hostname_prefix="ORACLE", **config_kwargs):
        if host_count <= 0:
            raise ValueError("oracle needs at least one host, got %r"
                             % host_count)
        if not isinstance(epochs, int) or epochs < 1:
            raise ValueError("epochs must be an integer >= 1, got %r"
                             % (epochs,))
        self._world = world
        self._kernel = world.kernel
        self.profile = profile
        self._label = label or profile.name
        #: Same fork label + same assignment function as the pool tier,
        #: so both tiers agree on every host's region by construction.
        self._regions = assign_regions(
            self._kernel.rng.fork("epidemic-regions:%s" % self._label),
            host_count, profile.region_weights)
        self.region_names = tuple(name for name, _
                                  in profile.region_weights)
        self._region_counts = [0] * len(self.region_names)
        for code in self._regions:
            self._region_counts[code] += 1
        self._rng = self._kernel.rng.fork("epidemic:%s" % self._label)
        self.hosts = [world.make_host("%s-%06d" % (hostname_prefix, i),
                                      **config_kwargs)
                      for i in range(host_count)]
        self._epochs = epochs
        self._epoch_seconds = float(epoch_seconds)
        self._epoch = 0
        self._curve = []
        self._seeded = False
        self._exposed = []
        self._infectious = []
        self._recovered = set()

    @property
    def label(self):
        return self._label

    @property
    def epoch(self):
        return self._epoch

    @property
    def curve(self):
        return list(self._curve)

    # -- ground truth ---------------------------------------------------------

    def _compartments(self):
        """Recount S/E/I/R by inspecting every host object.

        This is the oracle's defining move: no incremental counters —
        the hazard inputs are re-derived from the infection registries
        each epoch, so aggregate-tier counter bugs cannot be mirrored
        here.
        """
        name = self.profile.name
        s = e = i = r = 0
        infectious_by_region = [0] * len(self.region_names)
        for index, host in enumerate(self.hosts):
            infection = host.infections.get(name)
            if infection is not None:
                if infection.active:
                    i += 1
                    infectious_by_region[self._regions[index]] += 1
                else:
                    e += 1
            elif index in self._recovered:
                r += 1
            else:
                s += 1
        return s, e, i, r, infectious_by_region

    def host_state(self, index):
        """One host's compartment name, from the object itself."""
        infection = self.hosts[index].infections.get(self.profile.name)
        if infection is not None:
            return "infectious" if infection.active else "exposed"
        if index in self._recovered:
            return "recovered"
        return "susceptible"

    # -- driving --------------------------------------------------------------

    def seed_initial(self, count, vector="initial"):
        if self._seeded:
            raise RuntimeError("oracle %r is already seeded" % self._label)
        if not 0 < count <= len(self.hosts):
            raise ValueError(
                "initial infections must be within [1, %d], got %r"
                % (len(self.hosts), count))
        rng = self._kernel.rng.fork("epidemic-seed:%s" % self._label)
        chosen = sorted(rng.sample(range(len(self.hosts)), count))
        name = self.profile.name
        for index in chosen:
            self.hosts[index].register_infection(
                name, EpidemicInfection(name, vector, 0, active=True))
            self._infectious.append(index)
        self._seeded = True
        self._record_epoch(new_infections=count, c2_availability=1.0)
        return chosen

    def run(self):
        """Step every epoch, pacing the kernel clock like the model.

        The model steps on timer events at ``k * epoch_seconds``; the
        oracle reproduces that by running the kernel up to each epoch
        boundary before stepping, so fault windows (a DNS takedown at
        epoch 10) open and close at the same virtual instants for both
        tiers.
        """
        if not self._seeded:
            raise RuntimeError("seed_initial() must run before run()")
        start = self._kernel.clock.now
        for k in range(1, self._epochs + 1):
            self._kernel.run(until=start + k * self._epoch_seconds)
            self._step_epoch()
        return self.curve

    def _step_epoch(self):
        self._epoch += 1
        epoch = self._epoch
        name = self.profile.name
        total = len(self.hosts)
        _, _, i_total, _, infectious_by_region = self._compartments()
        availability = c2_availability(self._kernel,
                                       self.profile.c2_domains)
        usb, lan, c2, recovery = self.profile.rates_at(epoch)
        p_usb = usb * i_total / total
        p_c2 = c2 * availability if i_total else 0.0
        hazards = []
        shares = []
        any_hazard = False
        for code, population in enumerate(self._region_counts):
            infectious_here = infectious_by_region[code]
            p_lan = (lan * infectious_here / population) if population \
                else 0.0
            hazard = 1.0 - (1.0 - p_usb) * (1.0 - p_lan) * (1.0 - p_c2)
            hazards.append(hazard)
            shares.append((p_usb, p_lan, p_c2))
            if hazard > 0.0:
                any_hazard = True

        new_exposed = []
        if any_hazard:
            rand = self._rng.random
            recovered = self._recovered
            for index, host in enumerate(self.hosts):
                if index in recovered or \
                        host.infections.get(name) is not None:
                    continue
                code = self._regions[index]
                if rand() < hazards[code]:
                    p_u, p_l, p_c = shares[code]
                    draw = rand() * (p_u + p_l + p_c)
                    if draw < p_u:
                        vector = "usb"
                    elif draw < p_u + p_l:
                        vector = "lan"
                    else:
                        vector = "c2"
                    host.register_infection(name, EpidemicInfection(
                        name, vector, epoch, active=False))
                    new_exposed.append(index)

        if recovery > 0.0 and self._infectious:
            rand = self._rng.random
            still_infectious = []
            for index in self._infectious:
                if rand() < recovery:
                    self.hosts[index].remove_infection(name)
                    self._recovered.add(index)
                else:
                    still_infectious.append(index)
            self._infectious = still_infectious

        latency = self.profile.latency_epochs
        promoted = 0
        exposed = self._exposed
        while promoted < len(exposed):
            index = exposed[promoted]
            infection = self.hosts[index].infections[name]
            if epoch - infection.exposed_epoch < latency:
                break
            infection.activate()
            self._infectious.append(index)
            promoted += 1
        if promoted:
            self._exposed = exposed[promoted:]

        self._exposed.extend(new_exposed)
        self._record_epoch(new_infections=len(new_exposed),
                           c2_availability=availability)

    def _record_epoch(self, new_infections, c2_availability):
        s, e, i, r, _ = self._compartments()
        self._curve.append({
            "epoch": self._epoch,
            "susceptible": s,
            "exposed": e,
            "infectious": i,
            "recovered": r,
            "cumulative": len(self.hosts) - s,
            "new_infections": new_infections,
            "c2_availability": c2_availability,
        })

    def __repr__(self):
        s, e, i, r, _ = self._compartments()
        return ("FullFidelityEpidemic(%r, epoch %d/%d, S/E/I/R=[%d, %d, "
                "%d, %d])" % (self._label, self._epoch, self._epochs,
                              s, e, i, r))
