"""Checkpointed runs and deterministic resume for campaigns and sweeps.

The kernel-level snapshot format lives in :mod:`repro.sim.checkpoint`;
this module is the policy layer that decides *when* to snapshot and
*how* to come back:

* :class:`CheckpointStore` — one directory of numbered checkpoint files
  plus a digest-protected ``MANIFEST.json`` describing them.
* :class:`CampaignCheckpointer` — hooks a live campaign's kernel so a
  checkpoint lands at every kill-chain stage boundary (via the span
  recorder's finish listener) and, optionally, every N dispatched
  events (via the kernel's checkpoint hook).
* :func:`run_checkpointed` / :func:`resume_checkpointed` — the
  replay-based resume protocol.  Campaign callbacks are closures, so a
  mid-run kernel snapshot cannot simply be "continued"; instead, every
  run is fully determined by its seed, so resuming re-executes the
  campaign from zero and demands that the interrupted run's recorded
  checkpoint chain — tag by tag, event count by event count, state
  digest by state digest — is a bit-identical prefix of the replay.
  Divergence raises :class:`~repro.sim.errors.CheckpointError`; the
  checkpoint chain is thus both the recovery mechanism and the
  strongest correctness oracle the kernel has.
* :class:`SweepCheckpoint` — the sweep manifest: one spec/config
  fingerprint plus one atomically-written result file per completed
  replica.  On resume, finished replicas short-circuit straight from
  the manifest and only the missing ones re-run; deterministic
  per-replica seeding makes the merged result byte-identical to an
  uninterrupted sweep.  The pending set re-enters ``run_sweep`` with
  the same (spec, base seed, workers) triple, so in-process resumes
  (retry loops, salvage-then-retry) land on the process-wide warm
  worker pool (:mod:`repro.sim.workerpool`) instead of paying pool
  start-up and cache warm-up again; and when the pending set is small,
  the adaptive fallback skips process dispatch for it entirely.
"""

import os

from repro.core.ensemble import ReplicaFailure, ReplicaResult
from repro.sim.checkpoint import (
    KIND_FAILURE,
    KIND_MANIFEST,
    KIND_REPLICA,
    KIND_SWEEP,
    make_envelope,
    read_checkpoint,
    snapshot_kernel,
    restore_kernel,
    write_checkpoint,
)
from repro.sim.errors import CheckpointError

#: Tag of the checkpoint written after a campaign run completes; its
#: meta carries the campaign result, so a finished run short-circuits
#: on resume instead of replaying.
FINAL_TAG = "final"


def _slug(tag):
    """Filesystem-safe rendering of a checkpoint tag."""
    return "".join(ch if ch.isalnum() or ch in ".-" else "-"
                   for ch in tag) or "checkpoint"


def _ensure_directory(directory):
    """Create a checkpoint directory, with failures surfaced as the
    typed :class:`CheckpointError` (a path through a regular file, a
    permission-denied parent, a read-only filesystem) rather than the
    raw ``OSError`` leaking out of the store."""
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as exc:
        raise CheckpointError(
            "cannot create checkpoint directory %s: %s: %s"
            % (directory, type(exc).__name__, exc)) from exc
    return directory


def _list_directory(directory):
    """List a checkpoint directory, wrapping unreadable/permission-
    denied directories in :class:`CheckpointError`."""
    try:
        return os.listdir(directory)
    except OSError as exc:
        raise CheckpointError(
            "cannot read checkpoint directory %s: %s: %s"
            % (directory, type(exc).__name__, exc)) from exc


class CheckpointStore:
    """One directory of checkpoint files described by a manifest.

    The manifest is rewritten (atomically) after every append, so at
    any instant the directory is self-describing: files the manifest
    does not mention are as good as absent, which is what makes a
    SIGKILL mid-append recoverable.
    """

    MANIFEST = "MANIFEST.json"

    def __init__(self, directory):
        self.directory = directory
        self._manifest = None

    @property
    def manifest_path(self):
        return os.path.join(self.directory, self.MANIFEST)

    def initialise(self, meta=None, every_events=None):
        """Create (or reset) the manifest for a fresh recorded run."""
        _ensure_directory(self.directory)
        from repro.obs.export import jsonable

        self._manifest = {
            "meta": {str(k): jsonable(v) for k, v in (meta or {}).items()},
            "every_events": every_events,
            "checkpoints": [],
        }
        self._write_manifest()
        return self

    def _write_manifest(self):
        write_checkpoint(self.manifest_path,
                         make_envelope(KIND_MANIFEST, self._manifest))

    def load(self):
        """Read and validate the manifest; returns ``self``."""
        envelope = read_checkpoint(self.manifest_path, kind=KIND_MANIFEST)
        self._manifest = envelope["state"]
        return self

    @property
    def meta(self):
        return dict(self._manifest["meta"])

    @property
    def every_events(self):
        return self._manifest["every_events"]

    def entries(self):
        """Recorded checkpoint descriptors, in write order."""
        return [dict(entry) for entry in self._manifest["checkpoints"]]

    def append(self, envelope, tag):
        """Write one checkpoint file and record it in the manifest."""
        sequence = len(self._manifest["checkpoints"]) + 1
        filename = "ckpt-%04d-%s.json" % (sequence, _slug(tag))
        write_checkpoint(os.path.join(self.directory, filename), envelope)
        self._manifest["checkpoints"].append({
            "file": filename,
            "tag": tag,
            "events": envelope["state"]["dispatched"],
            "sim_seconds": envelope["state"]["clock"]["now"],
            "state_digest": envelope["state_digest"],
        })
        self._write_manifest()
        return filename

    def read(self, entry):
        """Load and validate the checkpoint file behind one entry."""
        from repro.sim.checkpoint import KIND_KERNEL

        return read_checkpoint(os.path.join(self.directory, entry["file"]),
                               kind=KIND_KERNEL)

    def latest(self):
        """The newest entry, or None for an empty store."""
        checkpoints = self._manifest["checkpoints"]
        return dict(checkpoints[-1]) if checkpoints else None

    def final_entry(self):
        """The run-completed entry, or None if the run was interrupted."""
        for entry in reversed(self._manifest["checkpoints"]):
            if entry["tag"] == FINAL_TAG:
                return dict(entry)
        return None


def interrupt_after(directory, keep):
    """Crash simulator: forget all but the first ``keep`` checkpoints.

    Rewrites the manifest as if the recording process had been killed
    right after checkpoint ``keep`` landed — which, because appends are
    atomic and the manifest is rewritten per append, is exactly the
    on-disk state such a crash leaves.  Used by the differential tests
    and the CI resume-equivalence step.
    """
    store = CheckpointStore(directory).load()
    entries = store._manifest["checkpoints"]
    if not 0 <= keep <= len(entries):
        raise ValueError("cannot keep %r of %d checkpoints"
                         % (keep, len(entries)))
    del entries[keep:]
    store._write_manifest()
    return store


class CampaignCheckpointer:
    """Auto-checkpoint hooks for one live campaign kernel.

    Writes a snapshot into ``directory`` at every kill-chain stage
    boundary (span finish) and, if ``every_events`` is given, every N
    dispatched events.  Snapshotting is pure observation, so a
    checkpointed run's trace digest is identical to an uninstrumented
    run of the same seed — the golden-trace suite pins this.
    """

    def __init__(self, campaign, directory, meta=None, every_events=None,
                 stage_boundaries=True, fresh=True):
        self.kernel = campaign.world.kernel
        self.store = CheckpointStore(directory)
        if fresh:
            self.store.initialise(meta=meta, every_events=every_events)
        else:
            self.store.load()
        self.meta = dict(meta or {})
        self._listener = None
        if stage_boundaries:
            self._listener = self.kernel.spans.on_finish(self._stage_finished)
        if every_events is not None:
            self.kernel.set_checkpoint_hook(self._periodic, every_events)

    def _stage_finished(self, span):
        self.checkpoint("stage:%s" % span.name)

    def _periodic(self, kernel):
        self.checkpoint("periodic")

    def checkpoint(self, tag, extra_meta=None):
        """Snapshot the kernel now, under ``tag``."""
        meta = dict(self.meta)
        meta["tag"] = tag
        if extra_meta:
            meta.update(extra_meta)
        envelope = snapshot_kernel(self.kernel, meta=meta)
        self.store.append(envelope, tag)
        return envelope

    def finalize(self, result=None):
        """Record the run-completed checkpoint, with the result in meta.

        The result goes through :func:`jsonable_ordered` so dict-valued
        measurements keep their insertion order and a resume that
        short-circuits to this checkpoint prints byte-identically.
        """
        from repro.obs.export import jsonable_ordered

        return self.checkpoint(
            FINAL_TAG, extra_meta={"result": jsonable_ordered(result)})

    def detach(self):
        """Unhook from the kernel (listeners + periodic hook)."""
        if self._listener is not None:
            self.kernel.spans.remove_finish_listener(self._listener)
            self._listener = None
        self.kernel.set_checkpoint_hook(None)


class ResumeReport:
    """What a resume (or checkpointed run) produced and verified."""

    __slots__ = ("result", "kernel", "campaign", "store", "verified",
                 "replayed_events", "short_circuited")

    def __init__(self, result, kernel, campaign, store, verified=0,
                 replayed_events=0, short_circuited=False):
        self.result = result
        self.kernel = kernel
        self.campaign = campaign
        self.store = store
        #: How many recorded checkpoints the replay re-verified.
        self.verified = verified
        #: Event count covered by the verified prefix.
        self.replayed_events = replayed_events
        #: True when a final checkpoint made re-execution unnecessary.
        self.short_circuited = short_circuited

    def as_dict(self):
        return {
            "verified_checkpoints": self.verified,
            "replayed_events": self.replayed_events,
            "short_circuited": self.short_circuited,
        }

    def __repr__(self):
        return ("ResumeReport(verified=%d, replayed_events=%d, "
                "short_circuited=%r)" % (self.verified,
                                         self.replayed_events,
                                         self.short_circuited))


def run_checkpointed(factory, directory, meta=None, run=None,
                     every_events=None):
    """Build a campaign with ``factory()``, run it with checkpointing.

    ``run(campaign)`` defaults to ``campaign.run()``.  Returns a
    :class:`ResumeReport` (with ``verified == 0`` — nothing existed to
    verify against).
    """
    campaign = factory()
    checkpointer = CampaignCheckpointer(campaign, directory, meta=meta,
                                        every_events=every_events)
    try:
        result = (run or (lambda c: c.run()))(campaign)
        checkpointer.finalize(result)
    finally:
        checkpointer.detach()
    return ResumeReport(result=result, kernel=campaign.world.kernel,
                        campaign=campaign, store=checkpointer.store)


def resume_checkpointed(factory, directory, meta=None, run=None):
    """Resume an interrupted checkpointed run from ``directory``.

    * A finished run (final checkpoint present) short-circuits: the
      result comes from the checkpoint meta and the kernel is restored
      from the snapshot — no re-execution at all.
    * An interrupted run replays: the campaign is rebuilt from the
      deterministic ``factory`` and re-run with the same checkpoint
      policy, and every checkpoint the interrupted run managed to
      record must match the replay's — same tag, same event count, same
      state digest — or :class:`CheckpointError` reports the exact
      divergence point.

    ``meta``, when given, must equal the manifest's recorded meta; this
    catches resuming with the wrong campaign, seed, or parameters
    before any work happens.
    """
    from repro.obs.export import jsonable

    store = CheckpointStore(directory).load()
    if meta is not None:
        recorded = store.meta
        wanted = {str(k): jsonable(v) for k, v in meta.items()}
        if recorded != wanted:
            raise CheckpointError(
                "checkpoint directory %s was recorded for a different "
                "run: manifest meta %r, resume requested %r"
                % (directory, recorded, wanted))
    prior = store.entries()
    every_events = store.every_events
    final = store.final_entry()
    if final is not None:
        envelope = store.read(final)
        kernel = restore_kernel(envelope)
        return ResumeReport(result=envelope["meta"].get("result"),
                            kernel=kernel, campaign=None, store=store,
                            verified=len(prior),
                            replayed_events=final["events"],
                            short_circuited=True)
    replay = run_checkpointed(factory, directory, meta=store.meta, run=run,
                              every_events=every_events)
    fresh = replay.store.entries()
    if len(fresh) < len(prior):
        raise CheckpointError(
            "replay recorded %d checkpoints but the interrupted run had "
            "already recorded %d — the runs cannot be the same "
            "simulation" % (len(fresh), len(prior)))
    for index, (old, new) in enumerate(zip(prior, fresh)):
        for key in ("tag", "events", "state_digest"):
            if old[key] != new[key]:
                raise CheckpointError(
                    "replay diverged from the interrupted run at "
                    "checkpoint %d (%r): recorded %s=%r, replay produced "
                    "%s=%r" % (index + 1, old["tag"], key, old[key], key,
                               new[key]))
    return ResumeReport(result=replay.result, kernel=replay.kernel,
                        campaign=replay.campaign, store=replay.store,
                        verified=len(prior),
                        replayed_events=(prior[-1]["events"] if prior
                                         else 0))


# -- sweep manifests -----------------------------------------------------------

class SweepCheckpoint:
    """Resume manifest for a Monte-Carlo sweep.

    ``sweep.json`` pins the spec, base seed, and replica count; each
    completed replica lands as an atomically-written
    ``replica-NNNN.json``.  Per-replica seeds are a pure function of
    (base seed, index), so a manifest's replicas splice into a resumed
    sweep byte-for-byte as if the sweep had never stopped.

    The supervised sweep path additionally persists quarantine records
    as ``failure-NNNN.json``: a resume then *deterministically* either
    retries a poison replica (the default — and a success supersedes
    the record) or skips it and carries the structured failure into the
    resumed result.
    """

    SWEEP_MANIFEST = "sweep.json"
    REPLICA_PATTERN = "replica-%04d.json"
    FAILURE_PATTERN = "failure-%04d.json"

    def __init__(self, directory, payload):
        self.directory = directory
        self._payload = payload

    @classmethod
    def create(cls, directory, spec, config):
        """Start a fresh manifest for (spec, config) in ``directory``."""
        _ensure_directory(directory)
        payload = {
            "spec": spec.as_dict(),
            "base_seed": config.base_seed,
            "replicas": config.replicas,
        }
        manifest = cls(directory, payload)
        write_checkpoint(manifest.manifest_path,
                         make_envelope(KIND_SWEEP, payload))
        return manifest

    @classmethod
    def load(cls, directory):
        """Read and validate an existing manifest."""
        path = os.path.join(directory, cls.SWEEP_MANIFEST)
        envelope = read_checkpoint(path, kind=KIND_SWEEP)
        return cls(directory, envelope["state"])

    @property
    def manifest_path(self):
        return os.path.join(self.directory, self.SWEEP_MANIFEST)

    def validate_against(self, spec, config):
        """Reject a resume whose spec/config cannot splice with ours.

        Replica results are only reusable if the spec, base seed, and
        ensemble size match; pool shape (workers, chunking, mode) is
        free to differ — sharding never affects per-replica results.
        """
        problems = []
        if self._payload["spec"] != spec.as_dict():
            problems.append("spec %r != recorded %r"
                            % (spec.as_dict(), self._payload["spec"]))
        if self._payload["base_seed"] != config.base_seed:
            problems.append("base_seed %r != recorded %r"
                            % (config.base_seed,
                               self._payload["base_seed"]))
        if self._payload["replicas"] != config.replicas:
            problems.append("replicas %r != recorded %r"
                            % (config.replicas, self._payload["replicas"]))
        if problems:
            raise CheckpointError(
                "cannot resume sweep from %s: %s"
                % (self.directory, "; ".join(problems)))

    def replica_path(self, index):
        return os.path.join(self.directory, self.REPLICA_PATTERN % index)

    def failure_path(self, index):
        return os.path.join(self.directory, self.FAILURE_PATTERN % index)

    def record(self, replica):
        """Persist one completed replica's reduction, atomically.

        A completed replica supersedes any quarantine record a previous
        (supervised) pass left for the same index, so a retry pass that
        finally succeeds leaves the manifest clean.
        """
        from repro.obs.export import jsonable

        payload = {"replica": jsonable(replica.as_dict())}
        path = write_checkpoint(self.replica_path(replica.index),
                                make_envelope(KIND_REPLICA, payload))
        self.clear_failure(replica.index)
        return path

    def record_failure(self, failure):
        """Persist one quarantined replica's failure record, atomically."""
        from repro.obs.export import jsonable

        payload = {"failure": jsonable(failure.as_dict())}
        return write_checkpoint(self.failure_path(failure.index),
                                make_envelope(KIND_FAILURE, payload))

    def clear_failure(self, index):
        """Drop the quarantine record for ``index``, if one exists."""
        try:
            os.remove(self.failure_path(index))
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise CheckpointError(
                "cannot remove failure record %s: %s: %s"
                % (self.failure_path(index), type(exc).__name__,
                   exc)) from exc

    def failures(self):
        """Validated ``{index: ReplicaFailure}`` for every quarantine
        record in the manifest directory."""
        out = {}
        for name in sorted(_list_directory(self.directory)):
            if not (name.startswith("failure-") and name.endswith(".json")):
                continue
            envelope = read_checkpoint(os.path.join(self.directory, name),
                                       kind=KIND_FAILURE)
            failure = _failure_from_dict(envelope["state"]["failure"])
            if name != self.FAILURE_PATTERN % failure.index:
                raise CheckpointError(
                    "failure record %s records index %d (expected file %s)"
                    % (name, failure.index,
                       self.FAILURE_PATTERN % failure.index))
            out[failure.index] = failure
        return out

    def completed(self):
        """Validated ``{index: ReplicaResult}`` for every recorded file.

        Any replica file that fails validation raises the typed error —
        a corrupted manifest should be noticed, not silently re-run.
        Files beyond the manifest's replica range are rejected too.
        """
        out = {}
        for name in sorted(_list_directory(self.directory)):
            if not (name.startswith("replica-") and name.endswith(".json")):
                continue
            envelope = read_checkpoint(os.path.join(self.directory, name),
                                       kind=KIND_REPLICA)
            replica = _replica_from_dict(envelope["state"]["replica"])
            if not 0 <= replica.index < self._payload["replicas"]:
                raise CheckpointError(
                    "replica file %s has index %d outside the sweep's "
                    "0..%d range" % (name, replica.index,
                                     self._payload["replicas"] - 1))
            if name != self.REPLICA_PATTERN % replica.index:
                raise CheckpointError(
                    "replica file %s records index %d (expected file %s)"
                    % (name, replica.index,
                       self.REPLICA_PATTERN % replica.index))
            out[replica.index] = replica
        return out


def _replica_from_dict(payload):
    """Rebuild a :class:`ReplicaResult` from its ``as_dict`` rendering."""
    try:
        return ReplicaResult(**{slot: payload[slot]
                                for slot in ReplicaResult.__slots__})
    except (KeyError, TypeError) as exc:
        raise CheckpointError(
            "malformed replica payload: %s: %s"
            % (type(exc).__name__, exc)) from exc


def _failure_from_dict(payload):
    """Rebuild a :class:`ReplicaFailure` from its ``as_dict`` rendering."""
    try:
        return ReplicaFailure(**{slot: payload[slot]
                                 for slot in ReplicaFailure.__slots__})
    except (KeyError, TypeError) as exc:
        raise CheckpointError(
            "malformed failure payload: %s: %s"
            % (type(exc).__name__, exc)) from exc
