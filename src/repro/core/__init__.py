"""Campaign orchestration: the public top of the library.

Environments build the worlds the paper's attacks play out in (an
air-gapped enrichment plant, a ministry LAN, a 30,000-host oil company);
campaigns wire malware into those worlds, run the clock, and return the
measurements the benchmark harness prints.
"""

from repro.core.environments import (
    CampaignWorld,
    build_flame_infrastructure,
    build_natanz_plant,
    build_office_lan,
    seed_user_documents,
)
from repro.core.campaign import (
    FlameEspionageCampaign,
    ShamoonWiperCampaign,
    StuxnetNatanzCampaign,
)
from repro.core.ensemble import (
    CAMPAIGNS,
    CampaignSpec,
    FAULT_PROFILES,
    QUICK_PARAMS,
    ReplicaFailure,
    ReplicaResult,
    aggregate,
    percentile,
    replica_seed,
    run_replica,
    summarize,
    trace_digest,
)
from repro.core.reporting import comparison_table, ensemble_table, format_row
from repro.core.resume import (
    CampaignCheckpointer,
    CheckpointStore,
    ResumeReport,
    SweepCheckpoint,
    interrupt_after,
    resume_checkpointed,
    run_checkpointed,
)

__all__ = [
    "CampaignCheckpointer",
    "CheckpointStore",
    "ResumeReport",
    "SweepCheckpoint",
    "interrupt_after",
    "resume_checkpointed",
    "run_checkpointed",
    "CAMPAIGNS",
    "CampaignSpec",
    "CampaignWorld",
    "FAULT_PROFILES",
    "FlameEspionageCampaign",
    "QUICK_PARAMS",
    "ReplicaFailure",
    "ReplicaResult",
    "ShamoonWiperCampaign",
    "StuxnetNatanzCampaign",
    "aggregate",
    "build_flame_infrastructure",
    "build_natanz_plant",
    "build_office_lan",
    "comparison_table",
    "ensemble_table",
    "format_row",
    "percentile",
    "replica_seed",
    "run_replica",
    "seed_user_documents",
    "summarize",
    "trace_digest",
]
