"""Turn-key campaigns: the scenarios behind the paper's three sections."""

from datetime import datetime, timedelta, timezone

from repro.core.environments import (
    CampaignWorld,
    build_flame_infrastructure,
    build_natanz_plant,
    build_office_lan,
    place_bluetooth_neighborhood,
)
from repro.malware.flame import Flame, FlameConfig, FlameOperatorConsole
from repro.malware.shamoon import Shamoon, ShamoonConfig, ShamoonReportSink
from repro.malware.stuxnet import (
    STUXNET_DOMAINS,
    Stuxnet,
    StuxnetCncService,
    StuxnetConfig,
)
from repro.netsim import run_windows_update
from repro.usb import UsbDrive

SECONDS_PER_DAY = 86400.0


class StuxnetNatanzCampaign:
    """§II / Fig. 1: USB seeding → Windows → Step 7 → PLC → centrifuges."""

    def __init__(self, seed=2010, centrifuge_count=984, workstation_count=3,
                 duration_days=365, stuxnet_config=None):
        self.world = CampaignWorld(seed=seed)
        self.plant = build_natanz_plant(self.world,
                                        centrifuge_count=centrifuge_count,
                                        workstation_count=workstation_count)
        self.cnc = StuxnetCncService(self.world.internet)
        self.stuxnet = Stuxnet(self.world.kernel, self.world.pki,
                               cnc_service=self.cnc, config=stuxnet_config)
        self.duration_days = duration_days
        self.result = None

    def cnc_domains(self):
        """The campaign's C&C domains, for fault-profile targeting."""
        return list(STUXNET_DOMAINS)

    def fault_epoch(self):
        """Virtual time at which the campaign's action begins."""
        return 0.0

    def run(self, settle_days=2):
        """Execute the whole kill chain and return the measurements.

        Each stage runs inside a named kernel span, so the exported
        trace shows the Fig. 1 kill chain as a tree of intervals.
        """
        kernel = self.world.kernel
        plant = self.plant
        with kernel.span("stuxnet.campaign", days=self.duration_days):
            # Let the plant reach steady state first.
            with kernel.span("stuxnet.settle", days=settle_days):
                kernel.run_for(settle_days * SECONDS_PER_DAY)
            baseline_freq = plant["plc"].actual_frequency()

            # Initial vector: a contractor's weaponised USB stick (§V.E).
            with kernel.span("stuxnet.usb_entry"):
                stick = self.stuxnet.weaponize_drive(
                    UsbDrive("contractor-stick"))
                plant["engineering_host"].insert_usb(stick)

            # The engineer's routine: open the project, program, monitor.
            step7 = plant["step7"]
            with kernel.span("stuxnet.step7_infect"):
                step7.open_project(plant["project"].folder)
                step7.download_project(plant["project"], plant["plc"])
                step7.monitor_frequency(plant["plc"])

            with kernel.span("stuxnet.operation",
                             days=self.duration_days):
                kernel.run_for(self.duration_days * SECONDS_PER_DAY)
                plant["bus"].sync_all()

        cascades = plant["cascades"]
        total = sum(len(c) for c in cascades)
        destroyed = sum(c.destroyed_count() for c in cascades)
        payloads = self.stuxnet.armed_plc_payloads()
        operator_view = step7.monitor_frequency(plant["plc"])
        blocks_visible = step7.list_plc_blocks(plant["plc"])
        self.result = {
            "baseline_frequency": baseline_freq,
            "infected_hosts": self.stuxnet.infection_count,
            "infection_vectors": self.stuxnet.infections_by_vector(),
            "payloads_armed": len(payloads),
            "attack_cycles": payloads[0].cycles_completed if payloads else 0,
            "centrifuges_total": total,
            "centrifuges_destroyed": destroyed,
            "destruction_fraction": destroyed / total if total else 0.0,
            "enrichment_output": sum(c.total_enrichment() for c in cascades),
            "safety_tripped": plant["safety"].tripped,
            "operator_view_hz": operator_view,
            "stux_blocks_visible_to_engineer": [
                b for b in blocks_visible if "STUX" in b.upper()],
            "stux_blocks_on_plc": [
                b for b in plant["plc"].block_names() if "STUX" in b.upper()],
        }
        return self.result


class FlameEspionageCampaign:
    """§III / Figs. 2-5: MITM spread, two-phase exfil, C&C, suicide."""

    def __init__(self, seed=2012, victim_count=12, domain_count=80,
                 server_count=22, duration_weeks=4, flame_config=None,
                 docs_per_host=8):
        self.world = CampaignWorld(seed=seed)
        self.infra = build_flame_infrastructure(self.world,
                                                domain_count=domain_count,
                                                server_count=server_count)
        self.lan, self.hosts = build_office_lan(
            self.world, "ministry", victim_count,
            docs_per_host=docs_per_host, microphone_fraction=0.3,
            bluetooth_fraction=0.3,
        )
        place_bluetooth_neighborhood(self.world, self.hosts)
        self.flame = Flame(
            self.world.kernel, self.world.pki,
            default_domains=self.infra["default_domains"],
            update_registry=self.world.update_registry,
            coordinator_public_key=self.infra["center"].coordinator_public_key,
            bluetooth_neighborhood=self.world.bluetooth,
            config=flame_config,
        )
        self.console = FlameOperatorConsole(self.infra["center"])
        self.duration_weeks = duration_weeks
        self.result = None

    def cnc_domains(self):
        """The campaign's C&C domains, for fault-profile targeting."""
        return list(self.infra["default_domains"])

    def fault_epoch(self):
        """Virtual time at which the campaign's action begins."""
        return 0.0

    def run(self, suicide_at_end=False):
        kernel = self.world.kernel
        with kernel.span("flame.campaign", weeks=self.duration_weeks):
            # Week one: patient zero collects alone.
            with kernel.span("flame.patient_zero"):
                self.flame.infect(self.hosts[0], via="initial")
                kernel.run_for(7 * SECONDS_PER_DAY)
            # The rest of the LAN catches the fake Windows update (Fig. 2).
            with kernel.span("flame.wu_spread",
                             hosts=len(self.hosts) - 1):
                for host in self.hosts[1:]:
                    self.lan.browser_start(host)
                    run_windows_update(host, self.lan,
                                       self.world.update_registry)
            # Remaining weeks: daily operator review cycles.
            remaining_days = max(self.duration_weeks * 7 - 7, 1)
            with kernel.span("flame.operations", days=remaining_days):
                for _ in range(remaining_days):
                    kernel.run_for(SECONDS_PER_DAY)
                    self.console.review_cycle()
            if suicide_at_end:
                with kernel.span("flame.suicide_broadcast"):
                    self.infra["center"].broadcast_suicide()
                    kernel.run_for(2 * SECONDS_PER_DAY)
        servers = self.infra["servers"]
        center = self.infra["center"]
        self.result = {
            "victims_infected": len(self.flame.infection_log),
            "infection_vectors": self.flame.infections_by_vector(),
            "domains_registered": len(self.infra["pool"]),
            "server_count": len(servers),
            "stolen_bytes_total": sum(s.bytes_received for s in servers),
            "stolen_bytes_per_week": (
                sum(s.bytes_received for s in servers)
                / max(self.duration_weeks, 1)),
            "entries_uploaded": self.flame.stats["entries_uploaded"],
            "metadata_reviews": self.console.metadata_reviewed,
            "files_requested": self.console.files_requested,
            "documents_recovered": self.console.documents_recovered,
            "module_updates_applied": self.flame.stats["updates_applied"],
            "active_infections": len(self.flame.active_infections()),
            "footprint_bytes": (
                self.flame.footprint_bytes(self.hosts[0])
                if self.hosts[0].is_infected_by("flame") else 0),
        }
        return self.result


class ShamoonWiperCampaign:
    """§IV / Fig. 6: the date-fused wiper sweeping an organisation."""

    #: The paper's infection count at Saudi Aramco.
    ARAMCO_SCALE = 30_000

    def __init__(self, seed=2012, host_count=2_000, docs_per_host=3,
                 start=datetime(2012, 8, 1, tzinfo=timezone.utc),
                 end=datetime(2012, 8, 20, tzinfo=timezone.utc),
                 shamoon_config=None, max_doc_size=None):
        if max_doc_size is None and host_count > 5_000:
            # Org-scale runs must keep per-host corpora small or the
            # zero-filled documents alone dwarf physical memory.
            max_doc_size = 8 * 1024
        self.world = CampaignWorld(seed=seed)
        self.sink = ShamoonReportSink()
        self.world.internet.register_site("home.attacker.net", self.sink.server)
        self.lan, self.hosts = build_office_lan(
            self.world, "aramco", host_count, docs_per_host=docs_per_host,
            microphone_fraction=0.0, bluetooth_fraction=0.0,
            max_doc_size=max_doc_size,
        )
        config = shamoon_config or ShamoonConfig(
            report_domain="home.attacker.net")
        self.shamoon = Shamoon(self.world.kernel, self.world.pki,
                               self.lan.domain_admin_credential, config)
        self.start = start
        self.end = end
        self.result = None

    def cnc_domains(self):
        """The campaign's C&C domains, for fault-profile targeting."""
        domain = self.shamoon.config.report_domain
        return [domain] if domain else []

    def fault_epoch(self):
        """Virtual time at which the campaign's action begins.

        Shamoon idles until the patient-zero date, so faults anchored
        to t=0 would expire years before the wiper moves.
        """
        return self.world.kernel.clock.to_seconds(self.start)

    def run(self):
        kernel = self.world.kernel
        with kernel.span("shamoon.campaign", hosts=len(self.hosts)):
            # The wiper idles until the operators strike (§IV).
            with kernel.span("shamoon.dormant"):
                kernel.run(until=kernel.clock.to_seconds(self.start))
            with kernel.span("shamoon.patient_zero"):
                self.shamoon.infect(self.hosts[0], via="initial")
            with kernel.span("shamoon.operation"):
                kernel.run(until=kernel.clock.to_seconds(self.end))
        summary = self.shamoon.destruction_summary()
        usable = sum(1 for h in self.hosts if h.usable())
        first_wipe = kernel.trace.first(actor="shamoon", action="host-wiped")
        self.result = dict(summary)
        self.result.update({
            "host_count": len(self.hosts),
            "hosts_usable_after": usable,
            "infected_hosts": self.shamoon.infection_count,
            "reports_received": len(self.sink.reports),
            "files_reported": self.sink.total_files_reported(),
            "first_wipe_at": (
                (kernel.clock.epoch
                 + timedelta(seconds=first_wipe.time)).isoformat()
                if first_wipe else None),
            "overwrite_fraction": (
                summary["bytes_overwritten"] / summary["bytes_intended"]
                if summary["bytes_intended"] else 0.0),
        })
        return self.result
