"""Paper-vs-measured report formatting for the benchmark harness."""


def format_row(label, paper_value, measured_value, verdict=None):
    """One aligned row: what the paper says vs what the simulation did."""
    mark = ""
    if verdict is not None:
        mark = "  [%s]" % ("OK" if verdict else "DIVERGES")
    return "%-46s paper: %-28s measured: %-28s%s" % (
        label, str(paper_value), str(measured_value), mark,
    )


def comparison_table(title, rows):
    """Render a titled block of :func:`format_row` rows.

    ``rows`` is an iterable of (label, paper, measured[, verdict]).
    """
    lines = ["", "=" * 100, title, "-" * 100]
    for row in rows:
        if len(row) == 4:
            label, paper, measured, verdict = row
        else:
            label, paper, measured = row
            verdict = None
        lines.append(format_row(label, paper, measured, verdict))
    lines.append("=" * 100)
    return "\n".join(lines)
