"""Paper-vs-measured report formatting for the benchmark harness."""


def format_row(label, paper_value, measured_value, verdict=None):
    """One aligned row: what the paper says vs what the simulation did."""
    mark = ""
    if verdict is not None:
        mark = "  [%s]" % ("OK" if verdict else "DIVERGES")
    return "%-46s paper: %-28s measured: %-28s%s" % (
        label, str(paper_value), str(measured_value), mark,
    )


def format_stats_row(key, stats):
    """One aligned row of ensemble statistics for a measurement key."""
    return ("%-38s mean %12.3f  sd %10.3f  ci95 +/-%10.3f  "
            "p5 %10.2f  p50 %10.2f  p95 %10.2f"
            % (key, stats["mean"], stats["stddev"], stats["ci95"],
               stats["p5"], stats["p50"], stats["p95"]))


def ensemble_table(title, aggregated):
    """Render the per-key summary of a Monte-Carlo sweep.

    ``aggregated`` is the mapping :func:`repro.core.ensemble.aggregate`
    returns: measurement key -> summary-statistics dict.
    """
    lines = ["", "=" * 118, title, "-" * 118]
    for key in sorted(aggregated):
        lines.append(format_stats_row(key, aggregated[key]))
    lines.append("=" * 118)
    return "\n".join(lines)


def comparison_table(title, rows):
    """Render a titled block of :func:`format_row` rows.

    ``rows`` is an iterable of (label, paper, measured[, verdict]).
    """
    lines = ["", "=" * 100, title, "-" * 100]
    for row in rows:
        if len(row) == 4:
            label, paper, measured, verdict = row
        else:
            label, paper, measured = row
            verdict = None
        lines.append(format_row(label, paper, measured, verdict))
    lines.append("=" * 100)
    return "\n".join(lines)
