"""Monte-Carlo ensembles: replica specs, worker-side reduction, aggregation.

The paper's headline numbers (984 centrifuges degraded, ~30,000 Aramco
machines wiped, Flame's staged exfiltration volumes) are single
trajectories.  A credible reproduction reports them as *distributions*:
run N seeded replicas of a campaign, reduce each run to its scalar
measurements inside the worker, and summarise per measurement key.

This module is the process-boundary-safe half of the sweep engine: a
:class:`CampaignSpec` is a picklable description of one campaign
configuration, :func:`run_replica` turns (spec, replica index, base
seed) into a small :class:`ReplicaResult`, and :func:`aggregate` /
:func:`summarize` compute the ensemble statistics.  The scheduling half
(worker pools, sharding, serial fallback) lives in
:mod:`repro.sim.sweep`.
"""

import hashlib
import math
import time
from datetime import datetime, timezone

from repro.core.campaign import (
    FlameEspionageCampaign,
    ShamoonWiperCampaign,
    StuxnetNatanzCampaign,
)
from repro.epidemic.scenarios import (
    FlameEpidemicCampaign,
    StuxnetEpidemicCampaign,
)

#: The sweepable campaigns, by CLI name.
CAMPAIGNS = {
    "stuxnet": StuxnetNatanzCampaign,
    "flame": FlameEspionageCampaign,
    "shamoon": ShamoonWiperCampaign,
    "stuxnet-epidemic": StuxnetEpidemicCampaign,
    "flame-epidemic": FlameEpidemicCampaign,
}

#: Scaled-down parameter presets: every campaign finishes in well under a
#: second, so a 16-replica ensemble is an interactive experiment.  The
#: CLI's ``repro sweep`` uses these unless ``--full`` asks for the
#: paper-scale defaults.
QUICK_PARAMS = {
    "stuxnet": {
        "centrifuge_count": 12,
        "workstation_count": 1,
        "duration_days": 10,
    },
    "flame": {
        "victim_count": 3,
        "domain_count": 6,
        "server_count": 3,
        "duration_weeks": 1,
        "docs_per_host": 2,
    },
    "shamoon": {
        "host_count": 20,
        "docs_per_host": 2,
        "start": datetime(2012, 8, 14, tzinfo=timezone.utc),
        "end": datetime(2012, 8, 16, tzinfo=timezone.utc),
    },
    "stuxnet-epidemic": {
        "host_count": 400,
        "epochs": 10,
        "initial_infections": 3,
        "promote_samples": 2,
    },
    "flame-epidemic": {
        "host_count": 400,
        "epochs": 10,
        "initial_infections": 3,
        "promote_samples": 2,
    },
}


def replica_seed(base_seed, index):
    """Derived seed for replica ``index`` of an ensemble.

    Mirrors :meth:`repro.sim.rng.DeterministicRandom.fork`: the child
    seed is a pure function of (base seed, replica index), so the i-th
    replica draws the same stream no matter how replicas are sharded
    across workers — or whether a pool is used at all.
    """
    return "%r|replica-%04d" % (base_seed, index)


# -- fault profiles ------------------------------------------------------------

def _profile_flaky_network(campaign, probability=0.2, latency_seconds=5.0,
                           duration_days=30.0):
    """Global packet loss plus added latency over the campaign's action."""
    faults = campaign.world.kernel.faults
    start = campaign.fault_epoch()
    duration = duration_days * 86400.0
    faults.inject_packet_loss(probability, start=start, duration=duration)
    faults.inject_latency(latency_seconds, start=start, duration=duration)


def _profile_takedown_sweep(campaign, start_days=2.0, interval_days=1.0):
    """Staggered registrar seizures across the campaign's C&C domains."""
    faults = campaign.world.kernel.faults
    start = campaign.fault_epoch() + start_days * 86400.0
    faults.inject_takedown_campaign(campaign.cnc_domains(), start=start,
                                    interval=interval_days * 86400.0)


def _profile_dns_blackout(campaign, start_days=1.0, duration_days=7.0):
    """Every C&C domain goes NXDOMAIN for a window, then recovers."""
    faults = campaign.world.kernel.faults
    start = campaign.fault_epoch() + start_days * 86400.0
    for domain in campaign.cnc_domains():
        faults.inject_dns_blackout(domain, start=start,
                                   duration=duration_days * 86400.0)


#: Named fault-injection profiles a spec can ask for.  Each is applied
#: to a freshly built campaign before ``run()``; the injector draws from
#: its own forked RNG stream, so profiles never perturb the campaign's
#: other randomness (same seed, same infections — only the faults vary).
FAULT_PROFILES = {
    "flaky-network": _profile_flaky_network,
    "takedown-sweep": _profile_takedown_sweep,
    "dns-blackout": _profile_dns_blackout,
}


class CampaignSpec:
    """Pickle-safe description of one campaign configuration.

    Holds only primitives (campaign name, constructor kwargs, run
    kwargs, fault-profile name + kwargs), so a spec crosses process
    boundaries cheaply and identically; workers rebuild the campaign
    object on their side of the fence.
    """

    __slots__ = ("campaign", "params", "run_params", "fault_profile",
                 "fault_params")

    def __init__(self, campaign, params=None, run_params=None,
                 fault_profile=None, fault_params=None):
        if campaign not in CAMPAIGNS:
            raise ValueError("unknown campaign %r (expected one of %s)"
                             % (campaign, sorted(CAMPAIGNS)))
        if fault_profile is not None and fault_profile not in FAULT_PROFILES:
            raise ValueError("unknown fault profile %r (expected one of %s)"
                             % (fault_profile, sorted(FAULT_PROFILES)))
        self.params = dict(params or {})
        if "seed" in self.params:
            raise ValueError("specs must not pin a seed: the sweep engine "
                             "derives one per replica via replica_seed()")
        self.campaign = campaign
        self.run_params = dict(run_params or {})
        self.fault_profile = fault_profile
        self.fault_params = dict(fault_params or {})

    @classmethod
    def quick(cls, campaign, **kwargs):
        """A spec using the scaled-down :data:`QUICK_PARAMS` preset."""
        return cls(campaign, params=dict(QUICK_PARAMS[campaign]), **kwargs)

    def build(self, seed):
        """Construct the campaign object for one replica."""
        campaign = CAMPAIGNS[self.campaign](seed=seed, **self.params)
        if self.fault_profile is not None:
            FAULT_PROFILES[self.fault_profile](campaign, **self.fault_params)
        return campaign

    def as_dict(self):
        return {
            "campaign": self.campaign,
            "params": {k: str(v) if isinstance(v, datetime) else v
                       for k, v in sorted(self.params.items())},
            "run_params": dict(sorted(self.run_params.items())),
            "fault_profile": self.fault_profile,
            "fault_params": dict(sorted(self.fault_params.items())),
        }

    def __repr__(self):
        profile = (", fault_profile=%r" % self.fault_profile
                   if self.fault_profile else "")
        return "CampaignSpec(%r%s)" % (self.campaign, profile)


# -- worker-side reduction -----------------------------------------------------

def reduce_measurements(raw):
    """Flatten a campaign result dict to scalars that survive pickling.

    Numbers pass through (bools become 0/1 so they aggregate as
    fractions), one level of nested dict flattens to ``key.subkey``,
    and containers reduce to ``key.count`` — full structures (and the
    event trace) stay on the worker's side of the process boundary.
    """
    out = {}
    for key, value in raw.items():
        if isinstance(value, bool):
            out[key] = int(value)
        elif isinstance(value, (int, float)):
            out[key] = value
        elif isinstance(value, str) or value is None:
            out[key] = value
        elif isinstance(value, dict):
            for sub, subvalue in value.items():
                if isinstance(subvalue, bool):
                    subvalue = int(subvalue)
                if isinstance(subvalue, (int, float)):
                    out["%s.%s" % (key, sub)] = subvalue
        elif isinstance(value, (list, tuple, set, frozenset)):
            out["%s.count" % key] = len(value)
    return out


def _stable(value):
    """Process-independent rendering of a trace-detail value.

    ``repr`` of a primitive is stable across interpreters; the default
    ``repr`` of an arbitrary object embeds its memory address, which
    would make digests differ between workers — so objects render as
    their type name.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, dict):
        items = sorted((str(k), _stable(v)) for k, v in value.items())
        return "{%s}" % ",".join("%s=%s" % item for item in items)
    if isinstance(value, (list, tuple, set, frozenset)):
        parts = [_stable(v) for v in value]
        if isinstance(value, (set, frozenset)):
            parts = sorted(parts)
        return "[%s]" % ",".join(parts)
    return "<%s>" % type(value).__name__


def trace_digest(trace):
    """SHA-256 digest of a :class:`~repro.sim.trace.TraceLog`.

    The golden-determinism tests compare digests, not traces: two runs
    with the same seed must agree record for record, and the digest is
    the only trace artefact cheap enough to ship back from a worker.
    """
    digest = hashlib.sha256()
    # Feed the hash in ~64 KiB batches: one encode+update per buffer
    # instead of per record.  UTF-8 encoding distributes over
    # concatenation, so the digest is byte-identical to the per-line
    # version — this runs once per replica, right on the sweep engine's
    # hot path.
    buffered = []
    buffered_bytes = 0
    for record in trace:
        line = "%r|%s|%s|%s|%s\n" % (record.time, record.actor,
                                     record.action, record.target,
                                     _stable(record.detail))
        buffered.append(line)
        buffered_bytes += len(line)
        if buffered_bytes >= 65536:
            digest.update("".join(buffered).encode("utf-8",
                                                   "backslashreplace"))
            buffered = []
            buffered_bytes = 0
    if buffered:
        digest.update("".join(buffered).encode("utf-8", "backslashreplace"))
    return digest.hexdigest()


class ReplicaResult:
    """What one replica sends home: scalars, a digest, and counters."""

    __slots__ = ("index", "seed", "measurements", "trace_digest",
                 "trace_records", "events_dispatched", "sim_seconds",
                 "wall_seconds", "metrics")

    def __init__(self, index, seed, measurements, trace_digest,
                 trace_records, events_dispatched, sim_seconds,
                 wall_seconds, metrics=None):
        self.index = index
        self.seed = seed
        self.measurements = measurements
        self.trace_digest = trace_digest
        self.trace_records = trace_records
        self.events_dispatched = events_dispatched
        self.sim_seconds = sim_seconds
        self.wall_seconds = wall_seconds
        #: Metrics-registry snapshot (primitive dicts; see
        #: :meth:`repro.obs.metrics.MetricsRegistry.snapshot`).
        self.metrics = metrics or {}

    def as_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self):
        return ("ReplicaResult(index=%d, seed=%r, digest=%s..., "
                "events=%d)" % (self.index, self.seed,
                                self.trace_digest[:12],
                                self.events_dispatched))


class ReplicaFailure:
    """Structured record of a replica an ensemble could not complete.

    The supervised sweep path produces one of these instead of killing
    the whole ensemble when a replica keeps crashing its worker, timing
    out, or raising; it also marks replicas abandoned at a sweep
    deadline.  ``quarantined`` distinguishes a *poison* replica (failed
    every allowed attempt — retried on resume only when asked) from a
    merely *unfinished* one (deadline/interrupt salvage — always
    retried on resume).  ``history`` keeps one entry per failed attempt
    (``attempt``, ``reason``, ``detail``), so the failure report says
    not just that a replica died but how, each time.
    """

    __slots__ = ("index", "seed", "attempts", "reason", "quarantined",
                 "history")

    #: Failure reasons the supervisor records.
    REASONS = ("worker-crash", "timeout", "hang", "error", "deadline")

    def __init__(self, index, seed, attempts, reason, quarantined=True,
                 history=None):
        self.index = index
        self.seed = seed
        self.attempts = attempts
        self.reason = reason
        self.quarantined = bool(quarantined)
        self.history = [dict(entry) for entry in (history or [])]

    def as_dict(self):
        return {
            "index": self.index,
            "seed": self.seed,
            "attempts": self.attempts,
            "reason": self.reason,
            "quarantined": self.quarantined,
            "history": [dict(entry) for entry in self.history],
        }

    def __repr__(self):
        return ("ReplicaFailure(index=%d, attempts=%d, reason=%r, "
                "quarantined=%r)" % (self.index, self.attempts,
                                     self.reason, self.quarantined))


def run_replica(spec, index, base_seed=0):
    """Build, fault, and run one seeded replica; return its reduction.

    This is the unit of work both the serial fallback and the worker
    pool execute — which is what makes the two paths bit-identical per
    seed.
    """
    started = time.perf_counter()
    campaign = spec.build(replica_seed(base_seed, index))
    raw = campaign.run(**spec.run_params)
    kernel = campaign.world.kernel
    return ReplicaResult(
        index=index,
        seed=replica_seed(base_seed, index),
        measurements=reduce_measurements(raw),
        trace_digest=trace_digest(kernel.trace),
        trace_records=len(kernel.trace),
        events_dispatched=kernel.dispatched_events,
        sim_seconds=kernel.now,
        wall_seconds=time.perf_counter() - started,
        metrics=kernel.metrics.snapshot(),
    )


# -- aggregation ---------------------------------------------------------------

def percentile(sorted_values, q):
    """Linear-interpolated percentile ``q`` (0..100) of a sorted list."""
    if not sorted_values:
        raise ValueError("percentile() of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be within [0, 100], got %r" % q)
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = (len(sorted_values) - 1) * q / 100.0
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(sorted_values[low])
    fraction = position - low
    return (sorted_values[low] * (1.0 - fraction)
            + sorted_values[high] * fraction)


#: z-score for a two-sided 95% interval under the normal approximation.
Z_95 = 1.959963984540054


def summarize(values):
    """Summary statistics for one measurement key across replicas.

    The confidence interval is the normal-approximation interval for
    the mean (``Z_95 * stddev / sqrt(n)``): half-width ``ci95``, bounds
    ``ci_low``/``ci_high``.  With one replica the spread statistics are
    all zero — a single trajectory carries no dispersion information.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("summarize() needs at least one value")
    n = len(values)
    mean = math.fsum(values) / n
    if n > 1:
        variance = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
        stddev = math.sqrt(variance)
    else:
        stddev = 0.0
    ordered = sorted(values)
    ci95 = Z_95 * stddev / math.sqrt(n)
    return {
        "n": n,
        "mean": mean,
        "stddev": stddev,
        "min": ordered[0],
        "max": ordered[-1],
        "p5": percentile(ordered, 5),
        "p25": percentile(ordered, 25),
        "p50": percentile(ordered, 50),
        "p75": percentile(ordered, 75),
        "p95": percentile(ordered, 95),
        "ci95": ci95,
        "ci_low": mean - ci95,
        "ci_high": mean + ci95,
    }


def aggregate(results):
    """Per-measurement-key :func:`summarize` over an ensemble.

    ``results`` may be :class:`ReplicaResult` objects or plain
    measurement mappings.  Only numeric keys aggregate; strings (like
    Shamoon's ``first_wipe_at``) are identity-checked by the
    determinism tests instead.  Returns ``{}`` for an empty ensemble.
    """
    series = {}
    for result in results:
        measurements = getattr(result, "measurements", result)
        for key, value in measurements.items():
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                series.setdefault(key, []).append(value)
    return {key: summarize(values) for key, values in sorted(series.items())}


def merge_metric_snapshots(results):
    """Ensemble-wide metric totals: one snapshot as if a single
    registry had observed every replica (counters/histograms add,
    gauges take the max — see :func:`repro.obs.metrics.merge_snapshots`).

    ``results`` may be :class:`ReplicaResult` objects or raw snapshot
    mappings.
    """
    from repro.obs.metrics import merge_snapshots

    snapshots = [getattr(result, "metrics", result) for result in results]
    return merge_snapshots(*snapshots)


def aggregate_metrics(results):
    """Per-metric :func:`summarize` across an ensemble's replicas.

    Counters and gauges summarise their scalar value; histograms
    summarise their observation count (their full merged shape is in
    :func:`merge_metric_snapshots`).  Returns ``{}`` for an empty
    ensemble.
    """
    series = {}
    for result in results:
        snapshot = getattr(result, "metrics", result)
        for name, entry in snapshot.items():
            value = (entry["count"] if entry["type"] == "histogram"
                     else entry["value"])
            series.setdefault(name, []).append(value)
    return {name: summarize(values)
            for name, values in sorted(series.items())}
