"""Builders for the worlds the campaigns run in."""

from repro.bluetooth import BluetoothDevice, BluetoothNeighborhood
from repro.certs import PkiWorld
from repro.cnc import AttackCenter, CncServer, DomainPool
from repro.netsim import Internet, Lan, WindowsUpdateService
from repro.netsim.http import HttpResponse, HttpServer
from repro.netsim.windowsupdate import UpdateRegistry
from repro.plc import (
    CentrifugeCascade,
    DigitalSafetySystem,
    FARARO_PAYA,
    FrequencyConverterDrive,
    ProfibusBus,
    ProgrammableLogicController,
    Step7Application,
    VACON,
)
from repro.sim import Kernel
from repro.winsim import HostConfig, WindowsHost

#: Document templates used to seed victim machines: (folder, name
#: pattern, extension, size).  Names containing operator keywords are
#: the "juicy" ones Flame's two-phase exfil is supposed to find.
_DOC_TEMPLATES = (
    ("documents", "meeting-notes-%d", "txt", 2_000),
    ("documents", "budget-%d", "xlsx", 40_000),
    ("documents", "secret-design-%d", "docx", 120_000),
    ("documents", "network-diagram-%d", "dwg", 300_000),
    ("downloads", "setup-%d", "zip", 800_000),
    ("pictures", "holiday-%d", "jpg", 250_000),
    ("desktop", "todo-%d", "txt", 500),
    ("music", "track-%d", "mp3", 3_000_000),
    ("videos", "clip-%d", "mp4", 8_000_000),
)


def seed_user_documents(host, rng, users=1, docs_per_user=6,
                        max_doc_size=None):
    """Populate a host with a believable user file corpus.

    Returns the number of files written.  Contents are zero-filled at
    template-scaled sizes; what matters to every experiment is names,
    extensions, folders, and byte counts.  ``max_doc_size`` caps sizes —
    org-scale scenarios (30,000 hosts) must not hold gigabytes of zero
    buffers in memory.
    """
    written = 0
    for user_index in range(users):
        user_root = "c:\\users\\user%02d" % user_index
        for doc_index in range(docs_per_user):
            folder, pattern, ext, size = rng.choice(list(_DOC_TEMPLATES))
            size = int(size * rng.uniform(0.5, 1.5))
            if max_doc_size is not None:
                size = min(size, max_doc_size)
            path = "%s\\%s\\%s.%s" % (
                user_root, folder, pattern % (written,), ext,
            )
            host.vfs.write(path, b"\x00" * size, origin="user")
            written += 1
    return written


class CampaignWorld:
    """The shared stage: kernel, PKI, internet, Windows Update.

    One of these per scenario; every other builder takes it as input.
    """

    def __init__(self, seed=0, with_internet=True):
        self.kernel = Kernel(seed=seed)
        self.pki = PkiWorld()
        self.internet = Internet(self.kernel) if with_internet else None
        self.update_registry = UpdateRegistry()
        self.windows_update = None
        if self.internet is not None:
            self.windows_update = WindowsUpdateService(self.pki, self.internet)
            # The msn.com probe target Stuxnet checks (§II.A).
            msn = HttpServer("msn")
            msn.route("/", lambda request: HttpResponse(200, b"<html>msn</html>"))
            self.internet.register_site("www.msn.com", msn)
        self.bluetooth = BluetoothNeighborhood(self.kernel)

    def make_host(self, hostname, **config_kwargs):
        return WindowsHost(self.kernel, hostname,
                           self.pki.make_trust_store(),
                           HostConfig(**config_kwargs))


def build_office_lan(world, name, host_count, os_version="7",
                     file_and_print_sharing=True, air_gapped=False,
                     docs_per_host=6, microphone_fraction=0.2,
                     bluetooth_fraction=0.2, hostname_prefix=None,
                     max_doc_size=None):
    """A typical organisation LAN of ``host_count`` seeded machines."""
    prefix = hostname_prefix or name.upper()
    lan = Lan(world.kernel, name,
              internet=None if air_gapped else world.internet,
              domain_name="%s.local" % name.lower())
    rng = world.kernel.rng.fork("lan:%s" % name)
    hosts = []
    for index in range(host_count):
        host = world.make_host(
            "%s-%04d" % (prefix, index),
            os_version=os_version,
            file_and_print_sharing=file_and_print_sharing,
            has_microphone=rng.chance(microphone_fraction),
            has_bluetooth=rng.chance(bluetooth_fraction),
        )
        lan.attach(host)
        if docs_per_host:
            seed_user_documents(host, rng.fork("docs:%d" % index),
                                docs_per_user=docs_per_host,
                                max_doc_size=max_doc_size)
        hosts.append(host)
    return lan, hosts


def place_bluetooth_neighborhood(world, hosts, devices_per_host=2,
                                 internet_connected_fraction=0.3):
    """Scatter personal devices near hosts that have bluetooth."""
    rng = world.kernel.rng.fork("bluetooth")
    placed = []
    for host in hosts:
        if not host.config.has_bluetooth:
            continue
        for index in range(devices_per_host):
            device = BluetoothDevice(
                "%s-phone-%d" % (host.hostname.lower(), index),
                kind=rng.choice(["phone", "phone", "laptop", "headset"]),
                owner="owner-of-%s" % host.hostname.lower(),
                internet_connected=rng.chance(internet_connected_fraction),
                address_book=["contact-%d" % i for i in range(rng.randint(3, 12))],
                sms_messages=["msg-%d" % i for i in range(rng.randint(0, 5))],
            )
            world.bluetooth.place_device(host, device)
            placed.append(device)
    return placed


def build_natanz_plant(world, centrifuge_count=984, workstation_count=3,
                       cascade_count=2):
    """The §II target: an air-gapped plant with a matching PLC setup.

    Returns a dict with the LAN, hosts, Step 7 app, PLC, bus, cascades,
    and safety system.  Drive vendors alternate Fararo Paya / Vacon so
    the Stuxnet fingerprint matches, as at the only site with reported
    damage.
    """
    kernel = world.kernel
    lan = Lan(kernel, "natanz-plant", internet=None,
              domain_name="plant.local")
    hosts = []
    for index in range(workstation_count):
        host = world.make_host("ENG-%02d" % index, os_version="xp",
                               file_and_print_sharing=True)
        lan.attach(host)
        hosts.append(host)
    engineering = hosts[0]
    step7 = Step7Application(engineering)
    project = step7.create_project("cascade-a24", "c:\\projects\\cascade-a24")

    bus = ProfibusBus()
    cascades = []
    per_cascade = centrifuge_count // cascade_count
    vendors = (FARARO_PAYA, VACON)
    for index in range(cascade_count):
        count = per_cascade if index < cascade_count - 1 else (
            centrifuge_count - per_cascade * (cascade_count - 1))
        cascade = CentrifugeCascade("A24-%d" % index, count,
                                    rng=kernel.rng.fork("cascade:%d" % index))
        bus.attach(FrequencyConverterDrive(
            "drv-%d" % index, vendors[index % len(vendors)], cascade,
            kernel.clock,
        ))
        cascades.append(cascade)
    plc = ProgrammableLogicController(kernel, "PLC-A24", bus).power_on()
    safety = DigitalSafetySystem(kernel, plc).arm()
    return {
        "lan": lan,
        "hosts": hosts,
        "engineering_host": engineering,
        "step7": step7,
        "project": project,
        "bus": bus,
        "cascades": cascades,
        "plc": plc,
        "safety": safety,
    }


def build_flame_infrastructure(world, domain_count=80, server_count=22,
                               default_domain_count=5):
    """The Fig. 4 platform: domains -> servers -> one attack center.

    Returns a dict with the attack center, domain pool, servers, and the
    default domain list a fresh client ships with.
    """
    kernel = world.kernel
    center = AttackCenter(kernel)
    pool = DomainPool(kernel.rng.fork("flame-domains"))
    server_ips = [world.internet.allocate_ip() for _ in range(server_count)]
    pool.register_many(domain_count, server_ips)
    servers = []
    for index, ip in enumerate(server_ips):
        domains = pool.domains_for_server(ip)
        server = CncServer(kernel, "cnc-%02d" % index,
                           center.coordinator_public_key,
                           extra_domains=domains[1:])
        center.provision_server(server, world.internet, domains, server_ip=ip)
        servers.append(server)
    default_domains = pool.domains()[:default_domain_count]
    return {
        "center": center,
        "pool": pool,
        "servers": servers,
        "default_domains": default_domains,
    }
