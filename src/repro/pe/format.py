"""Constants and low-level encoding helpers for the synthetic PE format."""

import struct

#: 32-bit x86 image.
MACHINE_I386 = 0x014C
#: 64-bit x86-64 image — Shamoon carries its x64 variant as a resource.
MACHINE_AMD64 = 0x8664

_MACHINE_NAMES = {MACHINE_I386: "x86", MACHINE_AMD64: "x64"}

DOS_MAGIC = b"MZ"
PE_MAGIC = b"PE\x00\x00"
#: Offset (within the DOS header) of the 4-byte pointer to the PE header.
PE_OFFSET_FIELD = 0x3C
DOS_HEADER_SIZE = 0x40

SIGNATURE_MAGIC = b"SIGN"

#: Flag bit marking a section as executable code.
SECTION_CODE = 0x0000_0020
#: Flag bit marking a section as initialised data.
SECTION_DATA = 0x0000_0040


class PeFormatError(Exception):
    """Raised when bytes cannot be parsed as a synthetic PE image."""


def machine_name(machine):
    """Human name for a machine constant ('x86', 'x64', or hex)."""
    return _MACHINE_NAMES.get(machine, "unknown(0x%04x)" % machine)


def pack_u16(value):
    return struct.pack("<H", value)


def pack_u32(value):
    return struct.pack("<I", value)


def pack_bytes(data):
    """Length-prefixed byte string (u32 length)."""
    return pack_u32(len(data)) + data


def pack_str(text):
    """Length-prefixed UTF-8 string (u16 length)."""
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise PeFormatError("string too long to encode: %d bytes" % len(raw))
    return pack_u16(len(raw)) + raw


class ByteReader:
    """Cursor over immutable bytes with bounds-checked reads."""

    def __init__(self, data):
        self._data = data
        self._pos = 0

    @property
    def position(self):
        return self._pos

    @property
    def remaining(self):
        return len(self._data) - self._pos

    def seek(self, position):
        if not 0 <= position <= len(self._data):
            raise PeFormatError("seek out of bounds: %d" % position)
        self._pos = position

    def read(self, count):
        if count < 0 or self._pos + count > len(self._data):
            raise PeFormatError(
                "truncated image: wanted %d bytes at offset %d, have %d"
                % (count, self._pos, len(self._data) - self._pos)
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u16(self):
        return struct.unpack("<H", self.read(2))[0]

    def u32(self):
        return struct.unpack("<I", self.read(4))[0]

    def length_prefixed_bytes(self):
        return self.read(self.u32())

    def length_prefixed_str(self):
        raw = self.read(self.u16())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise PeFormatError("malformed string: %s" % exc) from None
