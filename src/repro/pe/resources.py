"""Named resources embedded in a synthetic PE image.

Shamoon's dropper carries its wiper, reporter, and 64-bit variant as
XOR-encrypted resources (§IV); the builder/parser here preserve exactly
that structure: a resource has a name, a language id, raw data, and an
optional XOR key id recorded so the dissection tooling can tell
"encrypted" resources from plain ones.
"""

from repro.crypto.ciphers import xor_decrypt, xor_encrypt


class Resource:
    """One named resource inside a PE image."""

    __slots__ = ("name", "data", "language", "xor_key")

    def __init__(self, name, data, language=0x0409, xor_key=None):
        if not name:
            raise ValueError("resource name must be non-empty")
        self.name = name
        self.data = bytes(data)
        self.language = language
        self.xor_key = bytes(xor_key) if xor_key else None

    @property
    def encrypted(self):
        """True when the resource was stored XOR-encrypted."""
        return self.xor_key is not None

    @property
    def size(self):
        return len(self.data)

    @classmethod
    def encrypted_from_plaintext(cls, name, plaintext, xor_key, language=0x0409):
        """Build a resource whose stored bytes are XOR(plaintext, key)."""
        return cls(name, xor_encrypt(plaintext, xor_key), language, xor_key=xor_key)

    def decrypt(self, xor_key=None):
        """Return the plaintext bytes of the resource.

        An analyst who recovered the key can pass it explicitly; the
        malware itself uses the embedded key.  For an unencrypted
        resource this is just the stored data.
        """
        key = xor_key if xor_key is not None else self.xor_key
        if key is None:
            return self.data
        return xor_decrypt(self.data, key)

    def __repr__(self):
        flavor = "encrypted" if self.encrypted else "plain"
        return "Resource(%r, %d bytes, %s)" % (self.name, len(self.data), flavor)
