"""Builder producing synthetic PE images as bytes."""

from repro.pe.format import (
    DOS_HEADER_SIZE,
    DOS_MAGIC,
    MACHINE_AMD64,
    MACHINE_I386,
    PE_MAGIC,
    PE_OFFSET_FIELD,
    SECTION_CODE,
    SECTION_DATA,
    SIGNATURE_MAGIC,
    PeFormatError,
    pack_bytes,
    pack_str,
    pack_u16,
    pack_u32,
)
from repro.pe.resources import Resource

_OPT_MAGIC = {MACHINE_I386: 0x010B, MACHINE_AMD64: 0x020B}


class PeBuilder:
    """Assemble a synthetic PE image section by section.

    Example — the skeleton of a Shamoon-like dropper::

        builder = PeBuilder(machine=MACHINE_I386, timestamp=1344816000)
        builder.add_code_section(b"...dropper logic id...")
        builder.add_encrypted_resource("PKCS12", wiper_bytes, xor_key=b"\\xba")
        image = builder.build(target_size=900 * 1024)
    """

    def __init__(self, machine=MACHINE_I386, timestamp=0, subsystem=2, entry_point=0x1000):
        if machine not in _OPT_MAGIC:
            raise PeFormatError("unsupported machine: 0x%04x" % machine)
        self.machine = machine
        self.timestamp = timestamp
        self.subsystem = subsystem
        self.entry_point = entry_point
        self._sections = []
        self._resources = []
        self._imports = []
        self._signature_blob = None

    # -- content -----------------------------------------------------------

    def add_section(self, name, data, characteristics=SECTION_DATA):
        """Add a raw named section.  Names are at most 8 ASCII bytes."""
        raw_name = name.encode("ascii")
        if len(raw_name) > 8:
            raise PeFormatError("section name too long: %r" % name)
        if any(existing[0] == name for existing in self._sections):
            raise PeFormatError("duplicate section: %r" % name)
        self._sections.append((name, bytes(data), characteristics))
        return self

    def add_code_section(self, data, name=".text"):
        return self.add_section(name, data, SECTION_CODE)

    def add_resource(self, name, data, language=0x0409):
        """Add a plain (unencrypted) resource."""
        self._resources.append(Resource(name, data, language))
        return self

    def add_encrypted_resource(self, name, plaintext, xor_key, language=0x0409):
        """Add a resource stored XOR-encrypted, as Shamoon does."""
        self._resources.append(
            Resource.encrypted_from_plaintext(name, plaintext, xor_key, language)
        )
        return self

    def add_import(self, dll, functions):
        """Declare an imported DLL and the functions pulled from it."""
        self._imports.append((dll, list(functions)))
        return self

    def set_signature_blob(self, blob):
        """Attach an opaque signature produced by :mod:`repro.certs`."""
        self._signature_blob = bytes(blob) if blob is not None else None
        return self

    # -- encoding ----------------------------------------------------------

    def _encode_resources(self):
        out = [pack_u16(len(self._resources))]
        for res in self._resources:
            out.append(pack_str(res.name))
            out.append(pack_u16(res.language))
            if res.xor_key is None:
                out.append(b"\x00")
            else:
                out.append(b"\x01")
                out.append(pack_bytes(res.xor_key))
            out.append(pack_bytes(res.data))
        return b"".join(out)

    def _encode_imports(self):
        out = [pack_u16(len(self._imports))]
        for dll, functions in self._imports:
            out.append(pack_str(dll))
            out.append(pack_u16(len(functions)))
            for function in functions:
                out.append(pack_str(function))
        return b"".join(out)

    def build(self, target_size=None):
        """Serialise to bytes, optionally zero-padding to ``target_size``.

        Padding is added as a trailing ``.pad`` section *before* the
        signature blob so that signed images stay verifiable; it lets the
        Shamoon model reproduce the characteristic 900 KB file size.
        """
        sections = list(self._sections)
        if self._resources:
            sections.append((".rsrc", self._encode_resources(), SECTION_DATA))
        if self._imports:
            sections.append((".idata", self._encode_imports(), SECTION_DATA))

        body = self._assemble(sections)
        if target_size is not None:
            signature_size = 0
            if self._signature_blob is not None:
                signature_size = len(SIGNATURE_MAGIC) + 4 + len(self._signature_blob)
            pad = target_size - len(body) - signature_size
            # The .pad section costs a 20-byte table entry on top of its data.
            pad -= 20
            if pad < 0:
                raise PeFormatError(
                    "image (%d bytes) already exceeds target size %d"
                    % (len(body), target_size)
                )
            sections.append((".pad", b"\x00" * pad, SECTION_DATA))
            body = self._assemble(sections)

        if self._signature_blob is None:
            return body
        return body + SIGNATURE_MAGIC + pack_bytes(self._signature_blob)

    def _assemble(self, sections):
        header_size = (
            DOS_HEADER_SIZE
            + len(PE_MAGIC)
            + 10  # COFF: machine u16, nsections u16, timestamp u32, chars u16
            + 12  # optional header: magic u16, entry u32, subsystem u16, size u32
            + 20 * len(sections)
        )
        table = []
        blobs = []
        offset = header_size
        for name, data, characteristics in sections:
            table.append(
                name.encode("ascii").ljust(8, b"\x00")
                + pack_u32(offset)
                + pack_u32(len(data))
                + pack_u32(characteristics)
            )
            blobs.append(data)
            offset += len(data)

        size_of_image = offset
        dos = DOS_MAGIC + b"\x00" * (PE_OFFSET_FIELD - 2) + pack_u32(DOS_HEADER_SIZE)
        coff = (
            pack_u16(self.machine)
            + pack_u16(len(sections))
            + pack_u32(self.timestamp)
            + pack_u16(0x0102)
        )
        optional = (
            pack_u16(_OPT_MAGIC[self.machine])
            + pack_u32(self.entry_point)
            + pack_u16(self.subsystem)
            + pack_u32(size_of_image)
        )
        return b"".join([dos, PE_MAGIC, coff, optional] + table + blobs)
