"""Synthetic Portable Executable file format.

The paper dissects Shamoon's main file as "a 900KB Portable Executable
(PE) file with a number of encrypted resources" (§IV, Fig. 6), and every
driver-signing check in the Windows simulation operates on PE images.  We
define a compact but genuinely binary PE-like format with a builder and a
parser that round-trip: DOS header, COFF header, optional header,
sections, named resources, an import table, and an Authenticode-like
trailing signature blob.

The format is intentionally *not* byte-compatible with real PE — this
library never touches real executables — but it preserves the structural
features the paper's analysis relies on: machine type (x86/x64), named
sections, named (optionally encrypted) resources, and embedded digital
signatures whose validity the simulated OS enforces.
"""

from repro.pe.format import (
    MACHINE_AMD64,
    MACHINE_I386,
    PeFormatError,
    machine_name,
)
from repro.pe.resources import Resource
from repro.pe.builder import PeBuilder
from repro.pe.parser import PeFile, parse_pe

__all__ = [
    "MACHINE_AMD64",
    "MACHINE_I386",
    "PeBuilder",
    "PeFile",
    "PeFormatError",
    "Resource",
    "machine_name",
    "parse_pe",
]
