"""Parser turning bytes back into a structured synthetic PE image."""

from repro.pe.format import (
    DOS_MAGIC,
    PE_MAGIC,
    PE_OFFSET_FIELD,
    SIGNATURE_MAGIC,
    ByteReader,
    PeFormatError,
    machine_name,
)
from repro.pe.resources import Resource


class PeSection:
    """One parsed section: name, file offset, raw data, characteristics."""

    __slots__ = ("name", "offset", "data", "characteristics")

    def __init__(self, name, offset, data, characteristics):
        self.name = name
        self.offset = offset
        self.data = data
        self.characteristics = characteristics

    @property
    def size(self):
        return len(self.data)

    def __repr__(self):
        return "PeSection(%r, %d bytes @0x%x)" % (self.name, self.size, self.offset)


class PeFile:
    """A fully parsed synthetic PE image.

    ``signed_span`` is the byte range a digital signature covers (all
    bytes before the trailing signature blob), so signature verification
    in :mod:`repro.certs` can hash exactly what was signed.
    """

    def __init__(self, machine, timestamp, subsystem, entry_point, size_of_image,
                 sections, resources, imports, signature_blob, signed_span):
        self.machine = machine
        self.timestamp = timestamp
        self.subsystem = subsystem
        self.entry_point = entry_point
        self.size_of_image = size_of_image
        self.sections = sections
        self.resources = resources
        self.imports = imports
        self.signature_blob = signature_blob
        self.signed_span = signed_span

    @property
    def machine_label(self):
        return machine_name(self.machine)

    @property
    def is_signed(self):
        return self.signature_blob is not None

    def section(self, name):
        """Return the named section or raise ``KeyError``."""
        for sec in self.sections:
            if sec.name == name:
                return sec
        raise KeyError("no section named %r" % name)

    def resource(self, name):
        """Return the named resource or raise ``KeyError``."""
        for res in self.resources:
            if res.name == name:
                return res
        raise KeyError("no resource named %r" % name)

    def encrypted_resources(self):
        """Resources stored under a XOR key (Shamoon-style)."""
        return [res for res in self.resources if res.encrypted]

    def imported_functions(self):
        """Flat ``dll!function`` list — the dissection tooling keys on it."""
        return [
            "%s!%s" % (dll, function)
            for dll, functions in self.imports
            for function in functions
        ]

    def __repr__(self):
        return "PeFile(%s, %d sections, %d resources, signed=%s)" % (
            self.machine_label,
            len(self.sections),
            len(self.resources),
            self.is_signed,
        )


def _parse_resources(blob):
    reader = ByteReader(blob)
    resources = []
    for _ in range(reader.u16()):
        name = reader.length_prefixed_str()
        language = reader.u16()
        has_key = reader.read(1)
        xor_key = None
        if has_key == b"\x01":
            xor_key = reader.length_prefixed_bytes()
        elif has_key != b"\x00":
            raise PeFormatError("corrupt resource key flag: %r" % has_key)
        data = reader.length_prefixed_bytes()
        resources.append(Resource(name, data, language, xor_key=xor_key))
    return resources


def _parse_imports(blob):
    reader = ByteReader(blob)
    imports = []
    for _ in range(reader.u16()):
        dll = reader.length_prefixed_str()
        functions = [reader.length_prefixed_str() for _ in range(reader.u16())]
        imports.append((dll, functions))
    return imports


def parse_pe(image):
    """Parse ``image`` bytes into a :class:`PeFile`.

    Raises :class:`PeFormatError` on anything malformed — the static
    analysis tooling treats parse failures as a strong anomaly signal.
    """
    reader = ByteReader(image)
    if reader.read(2) != DOS_MAGIC:
        raise PeFormatError("missing MZ magic")
    reader.seek(PE_OFFSET_FIELD)
    pe_offset = reader.u32()
    reader.seek(pe_offset)
    if reader.read(4) != PE_MAGIC:
        raise PeFormatError("missing PE magic at offset 0x%x" % pe_offset)

    machine = reader.u16()
    section_count = reader.u16()
    timestamp = reader.u32()
    reader.u16()  # characteristics (unused on parse)
    reader.u16()  # optional-header magic
    entry_point = reader.u32()
    subsystem = reader.u16()
    size_of_image = reader.u32()

    table = []
    for _ in range(section_count):
        raw_name = reader.read(8).rstrip(b"\x00")
        offset = reader.u32()
        size = reader.u32()
        characteristics = reader.u32()
        table.append((raw_name.decode("ascii"), offset, size, characteristics))

    sections = []
    for name, offset, size, characteristics in table:
        if offset + size > len(image):
            raise PeFormatError("section %r extends past end of image" % name)
        sections.append(PeSection(name, offset, image[offset : offset + size], characteristics))

    resources = []
    imports = []
    for sec in sections:
        if sec.name == ".rsrc":
            resources = _parse_resources(sec.data)
        elif sec.name == ".idata":
            imports = _parse_imports(sec.data)

    body_end = max((offset + size for _, offset, size, _ in table), default=pe_offset + 26)
    signature_blob = None
    signed_span = len(image)
    marker = image.find(SIGNATURE_MAGIC, body_end)
    if marker != -1:
        sig_reader = ByteReader(image)
        sig_reader.seek(marker + len(SIGNATURE_MAGIC))
        signature_blob = sig_reader.length_prefixed_bytes()
        signed_span = marker

    return PeFile(
        machine=machine,
        timestamp=timestamp,
        subsystem=subsystem,
        entry_point=entry_point,
        size_of_image=size_of_image,
        sections=sections,
        resources=resources,
        imports=imports,
        signature_blob=signature_blob,
        signed_span=signed_span,
    )
