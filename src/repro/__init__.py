"""repro: an executable reproduction of "The Middle East under Malware
Attack: Dissecting Cyber Weapons" (Zhioua, ICDCS 2013).

A self-contained cyber-range simulator — Windows hosts, networks, PKI,
an enrichment plant, C&C infrastructure — with behavioural models of
Stuxnet, Flame, and Shamoon, and the analysis toolkit to dissect them.
Everything runs on in-memory simulated substrates; nothing in this
package can interact with a real machine, network, or file beyond this
process's own memory.

Quickstart::

    from repro import StuxnetNatanzCampaign

    result = StuxnetNatanzCampaign(seed=7, duration_days=180).run()
    print(result["centrifuges_destroyed"], "centrifuges destroyed,",
          "operator saw", result["operator_view_hz"], "Hz")
"""

from repro.core import (
    CampaignSpec,
    CampaignWorld,
    CheckpointStore,
    FlameEspionageCampaign,
    ShamoonWiperCampaign,
    StuxnetNatanzCampaign,
    build_flame_infrastructure,
    build_natanz_plant,
    build_office_lan,
    comparison_table,
    ensemble_table,
    resume_checkpointed,
    run_checkpointed,
    seed_user_documents,
)
from repro.epidemic import (
    EpidemicModel,
    FlameEpidemicCampaign,
    FullFidelityEpidemic,
    HostPool,
    StuxnetEpidemicCampaign,
    TransmissionProfile,
)
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    export_digest,
    merge_snapshots,
    prometheus_text,
    write_jsonl,
)
from repro.sim import (
    CheckpointError,
    Kernel,
    SweepConfig,
    restore_kernel,
    run_sweep,
    snapshot_kernel,
)

__version__ = "1.0.0"

__all__ = [
    "CampaignSpec",
    "CampaignWorld",
    "CheckpointError",
    "CheckpointStore",
    "EpidemicModel",
    "FlameEpidemicCampaign",
    "FlameEspionageCampaign",
    "FullFidelityEpidemic",
    "HostPool",
    "Kernel",
    "MetricsRegistry",
    "StuxnetEpidemicCampaign",
    "ShamoonWiperCampaign",
    "SpanRecorder",
    "StuxnetNatanzCampaign",
    "SweepConfig",
    "__version__",
    "build_flame_infrastructure",
    "build_natanz_plant",
    "build_office_lan",
    "comparison_table",
    "ensemble_table",
    "export_digest",
    "merge_snapshots",
    "prometheus_text",
    "restore_kernel",
    "resume_checkpointed",
    "run_checkpointed",
    "run_sweep",
    "seed_user_documents",
    "snapshot_kernel",
    "write_jsonl",
]
