"""CI chaos gate: supervised sweeps under injected failure.

This is the failure-domain twin of ``resume_equivalence.py``.  It runs
a quick supervised sweep with a :class:`ChaosPlan` that crashes one
worker mid-replica, hangs another past its wall-clock timeout, and
poisons a third replica outright, then asserts the supervision
contract:

* the crash and the timeout each cost one replica attempt — after
  retries, those replicas are byte-identical to the serial baseline;
* the poison replica is quarantined as a structured ``ReplicaFailure``
  persisted in the checkpoint manifest, and the degraded sweep still
  aggregates over the survivors (partial-result salvage);
* a ``--resume`` retry pass with the chaos gone completes the ensemble
  to a result byte-identical to the undisturbed serial run.

A machine-readable ``failure_report.json`` (quarantine records plus the
supervision report) is written into the output directory for CI to
upload as an artifact.

Usage::

    PYTHONPATH=src python scripts/sweep_chaos.py [OUTPUT_DIR]
"""

import json
import os
import sys

from repro import CampaignSpec, SweepConfig, run_sweep
from repro.core.resume import SweepCheckpoint
from repro.sim.supervisor import ChaosPlan, SupervisorConfig

BASE_SEED = 20130708
REPLICAS = 6
CRASH_ONCE = 1    # worker dies mid-replica; retry succeeds
HANG_ONCE = 2     # replica sleeps past its timeout; retry succeeds
POISON = 4        # crashes on every attempt; must be quarantined


def canonical(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def check(campaign, directory):
    spec = CampaignSpec.quick(campaign)

    def config():
        return SweepConfig(replicas=REPLICAS, workers=2,
                           mode="supervised", base_seed=BASE_SEED)

    baseline = run_sweep(spec, SweepConfig(
        replicas=REPLICAS, mode="serial", base_seed=BASE_SEED))

    chaos = ChaosPlan({
        CRASH_ONCE: ("crash",),
        HANG_ONCE: ("hang",),
        POISON: ("crash", "crash"),
    })
    supervision = SupervisorConfig(replica_timeout=20.0,
                                   max_replica_retries=1, chaos=chaos)
    degraded = run_sweep(spec, config(), checkpoint_dir=directory,
                         supervision=supervision)

    failures = []
    quarantined = degraded.quarantined()
    if quarantined != [POISON]:
        failures.append("expected replica %d quarantined, got %r"
                        % (POISON, quarantined))
    survivors = [r.index for r in degraded.replicas]
    if POISON in survivors or len(survivors) != REPLICAS - 1:
        failures.append("salvage returned wrong survivors: %r" % survivors)
    expected = [r.trace_digest for r in baseline.replicas
                if r.index != POISON]
    if [r.trace_digest for r in degraded.replicas] != expected:
        failures.append("surviving replicas not byte-identical to serial")
    if not degraded.aggregate():
        failures.append("degraded sweep produced no aggregate")
    if degraded.supervision["worker_restarts"] < 1:
        failures.append("supervisor recorded no worker restarts")
    on_disk = SweepCheckpoint.load(directory).failures()
    if set(on_disk) != {POISON}:
        failures.append("manifest quarantine records wrong: %r"
                        % sorted(on_disk))

    report_path = os.path.join(directory, "failure_report.json")
    with open(report_path, "w", encoding="utf-8") as stream:
        json.dump({"campaign": campaign,
                   "failures": [f.as_dict() for f in degraded.failures],
                   "supervision": degraded.supervision},
                  stream, indent=2, sort_keys=True, default=str)
        stream.write("\n")

    # Retry pass: chaos gone, quarantined replica re-runs from its pure
    # seed, and the completed ensemble matches the undisturbed baseline.
    resumed = run_sweep(spec, config(), checkpoint_dir=directory,
                        resume=True)
    if resumed.failures:
        failures.append("retry pass left failures: %r" % resumed.failures)
    if resumed.digests() != baseline.digests():
        failures.append("retry pass not byte-identical to serial baseline")
    for view in ("aggregate", "merged_metrics"):
        if canonical(getattr(resumed, view)()) \
                != canonical(getattr(baseline, view)()):
            failures.append("%s() differs after retry pass" % view)
    return failures


def main(output_dir="chaos"):
    os.makedirs(output_dir, exist_ok=True)
    broken = 0
    for campaign in ("shamoon", "flame"):
        directory = os.path.join(output_dir, campaign)
        failures = check(campaign, directory)
        if failures:
            broken += 1
            print("FAIL %s: %s" % (campaign, "; ".join(failures)))
        else:
            print("ok   %s: crash isolated, poison quarantined, salvage "
                  "resumed byte-identically" % campaign)
    if broken:
        print("%d chaos check(s) failed" % broken)
        return 1
    print("supervised sweeps survive injected crashes, hangs, and poison")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:2]))
