"""CI resume-equivalence gate: interrupt, resume, diff digests.

For each paper campaign this runs a quick checkpointed sweep, simulates
a crash by deleting a subset of the recorded replica files, resumes
from the surviving manifest, and diffs the resumed result against an
uninterrupted baseline — trace digests, per-measurement aggregates,
and merged metrics must all be byte-identical.  It also records an
interrupted single-campaign run and replay-verifies its checkpoint
chain.  The checkpoint directories are left in place for CI to upload
as artifacts.

Usage::

    PYTHONPATH=src python scripts/resume_equivalence.py [OUTPUT_DIR]
"""

import json
import os
import sys

from repro import CampaignSpec, SweepConfig, run_sweep
from repro.core.ensemble import CAMPAIGNS, QUICK_PARAMS
from repro.core.resume import interrupt_after, resume_checkpointed, \
    run_checkpointed

BASE_SEED = 20130708
REPLICAS = 6
DROP = (1, 3, 4)  # replica indexes deleted to simulate the crash


def canonical(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def check_sweep(campaign, directory):
    spec = CampaignSpec.quick(campaign)

    def config():
        return SweepConfig(replicas=REPLICAS, base_seed=BASE_SEED,
                           mode="serial")

    baseline = run_sweep(spec, config())
    run_sweep(spec, config(), checkpoint_dir=directory)
    for index in DROP:
        os.remove(os.path.join(directory, "replica-%04d.json" % index))
    resumed = run_sweep(spec, config(), checkpoint_dir=directory,
                        resume=True)
    failures = []
    if resumed.digests() != baseline.digests():
        failures.append("trace digests differ")
    for view in ("aggregate", "aggregate_metrics", "merged_metrics"):
        if canonical(getattr(resumed, view)()) \
                != canonical(getattr(baseline, view)()):
            failures.append("%s() differs" % view)
    return failures


def check_campaign(campaign, directory):
    def factory():
        return CAMPAIGNS[campaign](seed=BASE_SEED,
                                   **dict(QUICK_PARAMS[campaign]))

    meta = {"campaign": campaign, "seed": BASE_SEED}
    baseline = run_checkpointed(factory, directory, meta=meta)
    recorded = len(baseline.store.entries())
    interrupt_after(directory, keep=max(1, recorded // 2))
    report = resume_checkpointed(factory, directory, meta=meta)
    failures = []
    if canonical(report.result) != canonical(baseline.result):
        failures.append("campaign result differs after resume")
    if report.verified != max(1, recorded // 2):
        failures.append("resume verified %d checkpoints, expected %d"
                        % (report.verified, max(1, recorded // 2)))
    return failures


def main(output_dir="checkpoints"):
    os.makedirs(output_dir, exist_ok=True)
    broken = 0
    for campaign in sorted(CAMPAIGNS):
        for kind, check in (("sweep", check_sweep),
                            ("campaign", check_campaign)):
            directory = os.path.join(output_dir,
                                     "%s-%s" % (campaign, kind))
            failures = check(campaign, directory)
            if failures:
                broken += 1
                print("FAIL %s %s: %s"
                      % (campaign, kind, "; ".join(failures)))
            else:
                print("ok   %s %s: resumed run byte-identical"
                      % (campaign, kind))
    if broken:
        print("%d resume-equivalence check(s) failed" % broken)
        return 1
    print("all campaigns resume byte-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:2]))
