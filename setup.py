"""Shim so `pip install -e .` works on environments without the wheel
package (legacy setuptools develop path); all metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
