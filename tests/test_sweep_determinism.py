"""Golden determinism for the Monte-Carlo sweep engine.

Two pillars: (1) a campaign replica is a pure function of its seed —
the same seed yields an identical trace digest and identical
measurements run after run; (2) the parallel sweep path is bit-identical
to the serial fallback, replica for replica, regardless of worker count
or chunking.
"""

import pytest

from repro.core.ensemble import (
    CampaignSpec,
    replica_seed,
    run_replica,
    trace_digest,
)
from repro.sim.sweep import SweepConfig, run_sweep, shard_indices

CAMPAIGN_NAMES = ("stuxnet", "flame", "shamoon")


@pytest.mark.parametrize("name", CAMPAIGN_NAMES)
def test_same_seed_yields_identical_trace_digest(name):
    spec = CampaignSpec.quick(name)
    first = run_replica(spec, 0, base_seed=123)
    second = run_replica(spec, 0, base_seed=123)
    assert first.trace_digest == second.trace_digest
    assert first.measurements == second.measurements
    assert first.trace_records == second.trace_records
    assert first.events_dispatched == second.events_dispatched
    assert first.sim_seconds == second.sim_seconds


@pytest.mark.parametrize("name", ("flame", "shamoon"))
def test_different_seeds_perturb_measurements(name):
    """Replica seeds must actually reach the campaign's RNG streams."""
    spec = CampaignSpec.quick(name)
    results = [run_replica(spec, index, base_seed=7) for index in range(3)]
    distinct = {tuple(sorted((k, str(v)) for k, v in r.measurements.items()))
                for r in results}
    assert len(distinct) > 1


def test_replica_seed_is_a_pure_function_of_base_and_index():
    assert replica_seed(7, 3) == replica_seed(7, 3)
    assert replica_seed(7, 3) != replica_seed(7, 4)
    assert replica_seed(7, 3) != replica_seed(8, 3)
    # Index formatting must not collide across magnitudes.
    assert replica_seed(0, 1) != replica_seed(0, 10)


@pytest.mark.parametrize("name", CAMPAIGN_NAMES)
def test_serial_and_parallel_sweeps_are_bit_identical(name):
    spec = CampaignSpec.quick(name)
    serial = run_sweep(spec, SweepConfig(
        replicas=3, workers=1, mode="serial", base_seed=42))
    parallel = run_sweep(spec, SweepConfig(
        replicas=3, workers=2, mode="parallel", base_seed=42, chunk_size=1))
    assert serial.measurements() == parallel.measurements()
    assert serial.digests() == parallel.digests()
    assert [r.seed for r in serial.replicas] == \
        [r.seed for r in parallel.replicas]
    assert [r.index for r in parallel.replicas] == [0, 1, 2]


def test_serial_and_parallel_metric_snapshots_are_identical():
    """Metric snapshots ride home with each replica; both dispatch
    paths must produce the same snapshot per replica, and therefore
    the same ensemble merge."""
    spec = CampaignSpec.quick("shamoon")
    serial = run_sweep(spec, SweepConfig(
        replicas=3, workers=1, mode="serial", base_seed=11))
    parallel = run_sweep(spec, SweepConfig(
        replicas=3, workers=2, mode="parallel", base_seed=11,
        chunk_size=1))
    assert serial.metrics() == parallel.metrics()
    assert serial.merged_metrics() == parallel.merged_metrics()
    assert serial.aggregate_metrics() == parallel.aggregate_metrics()
    # The snapshots are real: the wiper's headline counter is in them.
    merged = serial.merged_metrics()
    assert merged["shamoon.hosts_wiped"]["value"] == sum(
        r.metrics["shamoon.hosts_wiped"]["value"] for r in serial.replicas)


def test_replica_metrics_survive_as_dict_round_trip():
    spec = CampaignSpec.quick("stuxnet")
    replica = run_replica(spec, 0, base_seed=3)
    rendered = replica.as_dict()
    assert rendered["metrics"] == replica.metrics
    assert rendered["metrics"]["sim.events_dispatched"]["value"] == \
        replica.events_dispatched


def test_chunk_size_does_not_affect_results():
    spec = CampaignSpec.quick("stuxnet")
    by_one = run_sweep(spec, SweepConfig(
        replicas=4, workers=2, mode="parallel", base_seed=9, chunk_size=1))
    by_three = run_sweep(spec, SweepConfig(
        replicas=4, workers=2, mode="parallel", base_seed=9, chunk_size=3))
    assert by_one.measurements() == by_three.measurements()
    assert by_one.digests() == by_three.digests()


def test_fault_profile_is_deterministic_and_visible_in_the_trace():
    spec = CampaignSpec.quick("flame", fault_profile="takedown-sweep")
    first = run_replica(spec, 0, base_seed=5)
    second = run_replica(spec, 0, base_seed=5)
    assert first.trace_digest == second.trace_digest
    assert first.measurements == second.measurements
    # The profile must change the trace relative to a clean run.
    clean = run_replica(CampaignSpec.quick("flame"), 0, base_seed=5)
    assert first.trace_digest != clean.trace_digest


def test_fault_profile_schedules_windows_for_campaign_domains():
    spec = CampaignSpec.quick("flame", fault_profile="takedown-sweep")
    campaign = spec.build(replica_seed(5, 0))
    windows = campaign.world.kernel.faults.windows()
    assert len(windows) == len(campaign.cnc_domains()) > 0
    assert {w.target for w in windows} == set(campaign.cnc_domains())


def test_shamoon_fault_epoch_anchors_to_the_campaign_window():
    spec = CampaignSpec.quick("shamoon", fault_profile="dns-blackout")
    campaign = spec.build(replica_seed(1, 0))
    window = campaign.world.kernel.faults.windows()[0]
    assert window.start >= campaign.fault_epoch() > 0


def test_trace_digest_reflects_trace_content(kernel):
    kernel.trace.record("a", "did", "x", value=1)
    before = trace_digest(kernel.trace)
    kernel.trace.record("a", "did", "y", value=2)
    assert trace_digest(kernel.trace) != before


def test_shard_indices_cover_every_replica_exactly_once():
    shards = shard_indices(10, 3)
    assert shards == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
    assert [i for shard in shard_indices(7, 2) for i in shard] == list(range(7))


def test_spec_rejects_pinned_seed_and_unknown_names():
    with pytest.raises(ValueError):
        CampaignSpec("stuxnet", params={"seed": 1})
    with pytest.raises(ValueError):
        CampaignSpec("conficker")
    with pytest.raises(ValueError):
        CampaignSpec("flame", fault_profile="meteor-strike")


def test_sweep_config_rejects_non_integral_pool_shape():
    """Regression: ``replicas=2.5`` used to pass the ``< 1`` check and
    then raise a bare TypeError from ``range()`` deep inside
    ``run_sweep``; the config now validates integral types up front."""
    with pytest.raises(TypeError):
        SweepConfig(replicas=2.5)
    with pytest.raises(TypeError):
        SweepConfig(replicas="8")
    with pytest.raises(TypeError):
        SweepConfig(replicas=True)
    with pytest.raises(TypeError):
        SweepConfig(workers=1.5)
    with pytest.raises(TypeError):
        SweepConfig(chunk_size=2.0)
    with pytest.raises(ValueError):
        SweepConfig(replicas=0)
    with pytest.raises(ValueError):
        SweepConfig(workers=-1)
    with pytest.raises(ValueError):
        SweepConfig(chunk_size=0)
    config = SweepConfig(replicas=4, workers=2, chunk_size=1)
    assert (config.replicas, config.workers, config.chunk_size) == (4, 2, 1)


def test_sweep_result_caches_aggregate_views():
    """``as_dict()`` (and the CLI, which renders the same aggregates
    several times) must not recompute the summary statistics."""
    spec = CampaignSpec.quick("shamoon")
    result = run_sweep(spec, SweepConfig(replicas=2, mode="serial",
                                         base_seed=5))
    assert result.aggregate() is result.aggregate()
    assert result.merged_metrics() is result.merged_metrics()
    assert result.aggregate_metrics() is result.aggregate_metrics()
    rendered = result.as_dict()
    assert rendered["aggregate"] is result.aggregate()
    assert rendered["metrics_merged"] is result.merged_metrics()
