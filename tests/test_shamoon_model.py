"""Shamoon end-to-end: dropper, spread, timed detonation, reporting."""

from datetime import datetime, timezone

import pytest

from repro.malware.shamoon import (
    DEFAULT_TRIGGER,
    Shamoon,
    ShamoonConfig,
    ShamoonReportSink,
    WIPER_NAME_POOL,
)
from repro.netsim import Internet, Lan


AUG_1 = datetime(2012, 8, 1, tzinfo=timezone.utc)
AUG_20 = datetime(2012, 8, 20, tzinfo=timezone.utc)


@pytest.fixture
def org(kernel, world, host_factory):
    internet = Internet(kernel)
    sink = ShamoonReportSink()
    internet.register_site("home.attacker.net", sink.server)
    lan = Lan(kernel, "aramco", internet=internet, domain_name="aramco.com")
    hosts = []
    for i in range(6):
        host = host_factory("WS-%02d" % i, file_and_print_sharing=True)
        host.vfs.write("c:\\users\\e\\documents\\doc-%d.docx" % i, b"D" * 4000)
        lan.attach(host)
        hosts.append(host)
    shamoon = Shamoon(kernel, world, lan.domain_admin_credential,
                      ShamoonConfig(report_domain="home.attacker.net"))
    return {"lan": lan, "hosts": hosts, "shamoon": shamoon, "sink": sink,
            "internet": internet}


def _advance_to(kernel, moment):
    kernel.run(until=kernel.clock.to_seconds(moment))


def test_dropper_installs_components_and_persistence(kernel, org):
    _advance_to(kernel, AUG_1)
    host = org["hosts"][0]
    org["shamoon"].infect(host, via="initial")
    system = host.system_dir
    assert host.vfs.exists(system + "\\trksvr.exe", raw=True)
    assert host.vfs.exists(system + "\\netinit.exe", raw=True)
    wiper_names = [f.name for f in host.vfs.list_dir(system)
                   if f.name[:-4] in WIPER_NAME_POOL]
    assert len(wiper_names) == 1
    assert host.services.exists("TrkSvr")
    assert host.tasks.exists("at1")


def test_spread_covers_lan_before_trigger(kernel, org):
    _advance_to(kernel, AUG_1)
    org["shamoon"].infect(org["hosts"][0], via="initial")
    kernel.run_for(86400.0)
    assert all(h.is_infected_by("shamoon") for h in org["hosts"])
    vectors = org["shamoon"].infections_by_vector()
    assert vectors.get("network-share") == 5


def test_detonation_waits_for_hardcoded_date(kernel, org):
    _advance_to(kernel, AUG_1)
    org["shamoon"].infect(org["hosts"][0], via="initial")
    _advance_to(kernel, datetime(2012, 8, 15, 8, 0, tzinfo=timezone.utc))
    assert all(h.usable() for h in org["hosts"])  # 8 minutes early
    _advance_to(kernel, datetime(2012, 8, 15, 8, 30, tzinfo=timezone.utc))
    assert not any(h.usable() for h in org["hosts"])
    first = kernel.trace.first(actor="shamoon", action="host-wiped")
    trigger_seconds = kernel.clock.to_seconds(DEFAULT_TRIGGER)
    assert first.time == pytest.approx(trigger_seconds, abs=1.0)


def test_infection_after_trigger_detonates_soon(kernel, org):
    _advance_to(kernel, datetime(2012, 8, 16, tzinfo=timezone.utc))
    host = org["hosts"][0]
    org["shamoon"].infect(host, via="late")
    kernel.run_for(3600.0)
    assert not host.usable()


def test_reports_reach_attacker(kernel, org):
    _advance_to(kernel, AUG_1)
    org["shamoon"].infect(org["hosts"][0], via="initial")
    _advance_to(kernel, AUG_20)
    sink = org["sink"]
    assert len(sink.reports) == 6
    report = sink.reports[0]
    assert report["domain"] == "aramco.com"
    assert report["files_overwritten"] > 0
    assert report["ip"].startswith("10.0.0.")
    assert ".docx" in report["f1_inf"]
    assert sink.total_files_reported() == 6


def test_destruction_summary(kernel, org):
    _advance_to(kernel, AUG_1)
    org["shamoon"].infect(org["hosts"][0], via="initial")
    _advance_to(kernel, AUG_20)
    summary = org["shamoon"].destruction_summary()
    assert summary["hosts_wiped"] == 6
    assert summary["hosts_unusable"] == 6
    assert summary["files_overwritten"] == 6
    assert 0 < summary["bytes_overwritten"] < summary["bytes_intended"]


def test_unpatched_bug_vs_fixed_wiper_fraction(kernel, world, host_factory):
    lan = Lan(kernel, "org", domain_name="org.com")
    a = host_factory("A", file_and_print_sharing=True)
    a.vfs.write("c:\\users\\e\\documents\\big.docx", b"D" * 100_000)
    lan.attach(a)
    sham = Shamoon(kernel, world, lan.domain_admin_credential,
                   ShamoonConfig(faithful_jpeg_bug=False))
    sham.infect(a, via="initial")
    sham.detonate(a)
    stats = sham.wiped_hosts["A"]
    assert stats["bytes_overwritten"] == stats["bytes_intended"]


def test_detonate_is_idempotent(kernel, org):
    _advance_to(kernel, AUG_1)
    host = org["hosts"][0]
    org["shamoon"].infect(host, via="initial")
    org["shamoon"].detonate(host)
    assert org["shamoon"].detonate(host) is None


def test_no_suicide_capability():
    """§V.F: Shamoon is the one family *without* an uninstall module."""
    assert not hasattr(Shamoon, "commit_suicide")
    assert not hasattr(Shamoon, "uninstall")
