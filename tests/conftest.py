"""Shared fixtures for the test suite."""

import pytest

from repro.certs import PkiWorld
from repro.sim import Kernel
from repro.winsim import HostConfig, WindowsHost


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden-trace conformance files under "
             "tests/golden/ from the current behaviour, instead of "
             "asserting against them")


@pytest.fixture
def update_golden(request):
    """Whether this run should rewrite the golden files."""
    # getoption with a default keeps collection alive even if this
    # conftest was not the one that registered the flag.
    return bool(request.config.getoption("--update-golden", default=False))


@pytest.fixture
def kernel():
    return Kernel(seed=1)


@pytest.fixture(scope="session")
def shared_pki():
    """PkiWorld is pure and deterministic; build it once per session.

    Key derivation is the slowest substrate operation, and nothing in
    the tests mutates the world itself (trust stores are per-host).
    """
    return PkiWorld()


@pytest.fixture
def world(shared_pki):
    return shared_pki


@pytest.fixture
def host_factory(kernel, world):
    """Factory for hosts bound to the test kernel and PKI."""

    def make(hostname="TEST-01", **config_kwargs):
        return WindowsHost(kernel, hostname, world.make_trust_store(),
                           HostConfig(**config_kwargs))

    return make


@pytest.fixture
def host(host_factory):
    return host_factory()
