"""Property-based tests: epidemic pool and model invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import CampaignWorld
from repro.epidemic import (
    EpidemicModel,
    HostPool,
    INFECTIOUS,
    RECOVERED,
    SUSCEPTIBLE,
    TransmissionProfile,
    demote_host,
    promote_host,
)
from repro.sim import Kernel
from repro.sim.checkpoint import canonical_json

REGIONS = (("alpha", 3.0), ("beta", 1.0), ("gamma", 0.5))

rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31)


def build_model(seed, usb, lan, c2, recovery, hosts, epochs,
                latency=1, initial=2):
    kernel = Kernel(seed=seed)
    profile = TransmissionProfile(
        "prop", usb_rate=usb, lan_rate=lan, c2_rate=c2,
        recovery_rate=recovery, latency_epochs=latency,
        region_weights=REGIONS)
    model = EpidemicModel(kernel, profile, hosts, epochs)
    model.seed_initial(initial)
    model.start()
    kernel.run(until=model.horizon_seconds())
    return model


@settings(max_examples=25, deadline=None)
@given(seed=seeds, usb=rates, lan=rates, c2=rates, recovery=rates,
       hosts=st.integers(min_value=3, max_value=60),
       epochs=st.integers(min_value=1, max_value=8))
def test_host_count_is_conserved(seed, usb, lan, c2, recovery, hosts,
                                 epochs):
    """Compartments partition the population at every epoch."""
    model = build_model(seed, usb, lan, c2, recovery, hosts, epochs)
    assert len(model.curve) == epochs + 1
    for point in model.curve:
        total = (point["susceptible"] + point["exposed"]
                 + point["infectious"] + point["recovered"])
        assert total == hosts
    assert sum(model.pool.counts) == hosts
    assert sum(model.pool.region_counts) == hosts


@settings(max_examples=25, deadline=None)
@given(seed=seeds, usb=rates, lan=rates, c2=rates, recovery=rates,
       hosts=st.integers(min_value=3, max_value=60),
       epochs=st.integers(min_value=1, max_value=8))
def test_cumulative_infections_never_decrease(seed, usb, lan, c2,
                                              recovery, hosts, epochs):
    """S only drains, so the cumulative curve is monotone — recovery
    removes infectiousness, never history."""
    model = build_model(seed, usb, lan, c2, recovery, hosts, epochs)
    cumulative = [point["cumulative"] for point in model.curve]
    susceptible = [point["susceptible"] for point in model.curve]
    assert cumulative == sorted(cumulative)
    assert susceptible == sorted(susceptible, reverse=True)
    for point in model.curve:
        assert point["cumulative"] == hosts - point["susceptible"]


@settings(max_examples=20, deadline=None)
@given(seed=seeds, hosts=st.integers(min_value=3, max_value=60),
       epochs=st.integers(min_value=1, max_value=8))
def test_zero_transmission_freezes_the_state(seed, hosts, epochs):
    """All-zero rates: nothing moves, and — the stronger claim — no
    randomness is consumed, so a dead epidemic costs no draws."""
    model = build_model(seed, 0.0, 0.0, 0.0, 0.0, hosts, epochs)
    fresh = Kernel(seed=seed).rng.fork("epidemic:prop")
    assert canonical_json(model.snapshot_state()["rng"]) == \
        canonical_json(fresh.getstate())
    first = model.curve[0]
    for point in model.curve[1:]:
        for key in ("susceptible", "exposed", "infectious", "recovered",
                    "cumulative"):
            assert point[key] == first[key]
        assert point["new_infections"] == 0


@settings(max_examples=15, deadline=None)
@given(seed=seeds, usb=rates, lan=rates, c2=rates, recovery=rates,
       hosts=st.integers(min_value=3, max_value=40),
       epochs=st.integers(min_value=1, max_value=6))
def test_same_seed_runs_are_identical(seed, usb, lan, c2, recovery,
                                      hosts, epochs):
    one = build_model(seed, usb, lan, c2, recovery, hosts, epochs)
    two = build_model(seed, usb, lan, c2, recovery, hosts, epochs)
    assert one.curve == two.curve
    assert canonical_json(one.snapshot_state()) == \
        canonical_json(two.snapshot_state())


@settings(max_examples=15, deadline=None)
@given(seed=seeds,
       hosts=st.integers(min_value=5, max_value=40),
       epochs=st.integers(min_value=1, max_value=6),
       picks=st.integers(min_value=1, max_value=4))
def test_promotion_round_trip_preserves_pool_state(seed, hosts, epochs,
                                                   picks):
    """Promote arbitrary rows to full hosts and demote them untouched:
    the pool snapshot must be bit-for-bit what it was."""
    world = CampaignWorld(seed=seed)
    profile = TransmissionProfile(
        "prop", usb_rate=0.4, lan_rate=0.3, recovery_rate=0.1,
        region_weights=REGIONS)
    model = EpidemicModel(world.kernel, profile, hosts, epochs)
    model.seed_initial(2)
    model.start()
    world.kernel.run(until=model.horizon_seconds())
    pool = model.pool
    before = canonical_json(pool.snapshot_state())
    rng = world.kernel.rng.fork("pick")
    for index in rng.sample(range(hosts), min(picks, hosts)):
        host = promote_host(world, pool, index, profile.name)
        expected = pool.state_of(index)
        # The promoted host answers infection checks like its row did.
        assert host.is_infected_by(profile.name) == \
            (expected not in (SUSCEPTIBLE, RECOVERED))
        assert demote_host(pool, host, profile.name) == expected
    assert canonical_json(pool.snapshot_state()) == before


@settings(max_examples=15, deadline=None)
@given(seed=seeds, count=st.integers(min_value=1, max_value=80))
def test_pool_snapshot_round_trips(seed, count):
    """load_state(snapshot_state()) reproduces the arrays and every
    derived counter, across a second pool instance."""
    kernel = Kernel(seed=seed)
    pool = HostPool(count, REGIONS, kernel.rng.fork("pool"))
    rng = kernel.rng.fork("mutate")
    for index in range(count):
        roll = rng.random()
        if roll < 0.2:
            pool.seed(index, epoch=0)
        elif roll < 0.5:
            pool.expose(index, epoch=1, vector="usb")
            if roll < 0.35:
                pool.activate(index)
                if roll < 0.25:
                    pool.recover(index)
    snapshot = pool.snapshot_state()
    clone = HostPool(count, REGIONS, Kernel(seed=seed).rng.fork("pool"))
    clone.load_state(snapshot)
    assert canonical_json(clone.snapshot_state()) == \
        canonical_json(snapshot)
    assert clone.counts == pool.counts
    assert clone.infectious_by_region == pool.infectious_by_region
    assert clone.vector_counts == pool.vector_counts
    assert clone.indices_in_state(INFECTIOUS) == \
        pool.indices_in_state(INFECTIOUS)
