"""Gauss: banking theft and the configuration-locked Godel payload."""

import pytest

from repro.malware.gauss import Gauss, GaussConfig, derive_godel_key
from repro.malware.gauss.gauss import GODEL_MAGIC, seal_godel_payload
from repro.usb import UsbDrive


def _banking_host(host_factory, name="BANK-PC", credentials=2):
    host = host_factory(name, os_version="xp")
    host.banking_credentials = [
        {"bank": "BeirutBank", "user": "u%d" % i, "secret": "s%d" % i}
        for i in range(credentials)
    ]
    return host


def test_usb_spread(kernel, world, host_factory):
    gauss = Gauss(kernel, world)
    victim = _banking_host(host_factory)
    victim.insert_usb(gauss.weaponize_drive(UsbDrive("stick")))
    assert victim.is_infected_by("gauss")
    assert gauss.infections_by_vector() == {"usb-lnk": 1}


def test_infected_host_weaponises_sticks(kernel, world, host_factory):
    gauss = Gauss(kernel, world)
    a = _banking_host(host_factory, "A")
    b = _banking_host(host_factory, "B")
    a.insert_usb(gauss.weaponize_drive(UsbDrive("first")))
    clean = UsbDrive("clean")
    a.insert_usb(clean, open_in_explorer=False)
    b.insert_usb(clean)
    assert b.is_infected_by("gauss")


def test_banking_credentials_stolen_incrementally(kernel, world, host_factory):
    gauss = Gauss(kernel, world)
    victim = _banking_host(host_factory, credentials=3)
    gauss.infect(victim, via="initial")
    kernel.run_for(2 * 86400.0)
    assert gauss.total_credentials_stolen() == 3
    # New credential appears; only the fresh one is added.
    victim.banking_credentials.append({"bank": "X", "user": "new",
                                       "secret": "n"})
    kernel.run_for(86400.0)
    assert gauss.total_credentials_stolen() == 4


def test_godel_key_depends_on_configuration(host_factory):
    plain = host_factory("PLAIN")
    special = host_factory("SPECIAL")
    special.installed_software.add("step7")
    special.vfs.write("c:\\program files\\targetapp\\app.exe", b"")
    assert derive_godel_key(plain) != derive_godel_key(special)
    # Same configuration -> same key (the attacker can precompute it).
    twin = host_factory("TWIN")
    assert derive_godel_key(plain) == derive_godel_key(twin)


def test_godel_payload_fires_only_on_target(kernel, world, host_factory):
    target = host_factory("THE-TARGET")
    target.installed_software.add("step7")
    target.vfs.write("c:\\program files\\targetapp\\app.exe", b"")
    warhead = seal_godel_payload(derive_godel_key(target),
                                 b"destructive logic")
    gauss = Gauss(kernel, world, GaussConfig(godel_ciphertext=warhead))

    bystander = host_factory("BYSTANDER")
    gauss.infect(bystander, via="initial")
    assert gauss.godel_detonations == []

    gauss.infect(target, via="initial")
    assert gauss.godel_detonations == ["THE-TARGET"]
    assert gauss.godel_attempts == 2
    record = kernel.trace.first(actor="THE-TARGET",
                                action="godel-payload-detonated")
    assert record is not None


def test_godel_ciphertext_reveals_nothing_off_target(host_factory):
    target = host_factory("T")
    target.installed_software.add("step7")
    warhead = seal_godel_payload(derive_godel_key(target), b"secret body")
    other = host_factory("O")
    from repro.crypto.ciphers import xor_stream

    wrong = xor_stream(warhead, derive_godel_key(other))
    assert not wrong.startswith(GODEL_MAGIC)
    assert b"secret body" not in wrong


def test_no_godel_configured_is_inert(kernel, world, host_factory):
    gauss = Gauss(kernel, world)
    gauss.infect(host_factory("H"), via="initial")
    assert gauss.godel_attempts == 0


def test_trend_artifacts_from_live_instance(kernel, world, host_factory):
    from repro.analysis.trends import gauss_artifacts

    target = host_factory("T")
    warhead = seal_godel_payload(derive_godel_key(target), b"x")
    gauss = Gauss(kernel, world, GaussConfig(godel_ciphertext=warhead))
    victim = _banking_host(host_factory, "V")
    victim.insert_usb(gauss.weaponize_drive(UsbDrive("s")))
    facts = gauss_artifacts(gauss)
    scores = facts.scores()
    assert facts.source == "measured"
    assert scores["usb_spreading"] >= 2
    assert scores["targeting"] >= 3  # cryptographic gating
