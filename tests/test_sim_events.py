"""Kernel event dispatch: ordering, cancellation, periodics, budgets."""

import pytest

from repro.sim import Kernel, ScheduleInPastError, SimulationError


def test_events_dispatch_in_time_order(kernel):
    seen = []
    kernel.call_later(5.0, lambda: seen.append("b"))
    kernel.call_later(1.0, lambda: seen.append("a"))
    kernel.call_later(9.0, lambda: seen.append("c"))
    kernel.run()
    assert seen == ["a", "b", "c"]
    assert kernel.now == 9.0


def test_simultaneous_events_keep_insertion_order(kernel):
    seen = []
    for label in "abcde":
        kernel.call_later(7.0, lambda l=label: seen.append(l))
    kernel.run()
    assert seen == list("abcde")


def test_cancelled_event_does_not_fire(kernel):
    seen = []
    event = kernel.call_later(1.0, lambda: seen.append("x"))
    event.cancel()
    kernel.run()
    assert seen == []


def test_cannot_schedule_in_the_past(kernel):
    kernel.call_later(1.0, lambda: None)
    kernel.run()
    with pytest.raises(ScheduleInPastError):
        kernel.call_at(0.5, lambda: None)
    with pytest.raises(ScheduleInPastError):
        kernel.call_later(-1.0, lambda: None)


def test_run_until_stops_and_advances_clock(kernel):
    seen = []
    kernel.call_later(10.0, lambda: seen.append("late"))
    kernel.run(until=5.0)
    assert seen == []
    assert kernel.now == 5.0
    kernel.run()
    assert seen == ["late"]


def test_events_scheduled_during_dispatch_run(kernel):
    seen = []

    def first():
        seen.append("first")
        kernel.call_later(1.0, lambda: seen.append("second"))

    kernel.call_later(1.0, first)
    kernel.run()
    assert seen == ["first", "second"]
    assert kernel.now == 2.0


def test_periodic_task_fires_until_stopped(kernel):
    ticks = []
    task = kernel.every(10.0, lambda: ticks.append(kernel.now))
    kernel.run(until=35.0)
    assert ticks == [10.0, 20.0, 30.0]
    task.stop()
    kernel.run_for(50.0)
    assert len(ticks) == 3
    assert task.stopped


def test_periodic_task_stopping_itself_mid_fire(kernel):
    ticks = []
    holder = {}

    def tick():
        ticks.append(kernel.now)
        if len(ticks) == 2:
            holder["task"].stop()

    holder["task"] = kernel.every(5.0, tick)
    kernel.run_for(100.0)
    assert len(ticks) == 2


def test_periodic_rejects_nonpositive_interval(kernel):
    with pytest.raises(ValueError):
        kernel.every(0.0, lambda: None)


def test_runaway_simulation_raises(kernel):
    def reschedule():
        kernel.call_later(0.1, reschedule)

    kernel.call_later(0.1, reschedule)
    with pytest.raises(SimulationError):
        kernel.run(max_events=100)


def test_call_at_datetime_uses_epoch(kernel):
    from datetime import datetime, timezone

    seen = []
    kernel.call_at_datetime(datetime(2010, 1, 1, 0, 1, tzinfo=timezone.utc),
                            lambda: seen.append(kernel.now))
    kernel.run()
    assert seen == [60.0]


def test_dispatched_and_pending_counters(kernel):
    kernel.call_later(1.0, lambda: None)
    kernel.call_later(2.0, lambda: None)
    assert kernel.pending_events == 2
    kernel.run(until=1.5)
    assert kernel.dispatched_events == 1
    assert kernel.pending_events == 1


def test_determinism_same_seed_same_trace():
    def build(seed):
        k = Kernel(seed=seed)
        for i in range(20):
            delay = k.rng.uniform(0, 100)
            k.call_later(delay, lambda i=i: k.trace.record("actor", "act-%d" % i))
        k.run()
        return [(r.time, r.action) for r in k.trace]

    assert build(99) == build(99)
    assert build(99) != build(100)


def test_call_at_and_call_later_reject_nan(kernel):
    """Regression: NaN compares False against every bound, so a
    NaN-scheduled event used to slip past both the in-past guard and
    ``run(until=...)``'s stop condition, corrupting heap order."""
    nan = float("nan")
    with pytest.raises(ValueError):
        kernel.call_at(nan, lambda: None)
    with pytest.raises(ValueError):
        kernel.call_later(nan, lambda: None)
    # The queue stayed clean: a bounded run still honours `until`.
    seen = []
    kernel.call_later(1.0, lambda: seen.append("ok"))
    kernel.run(until=5.0)
    assert seen == ["ok"]
    assert kernel.pending_events == 0


def test_budget_abort_leaves_the_next_event_queued(kernel):
    """The event that would exceed ``max_events`` stays dispatchable."""
    seen = []
    for index in range(5):
        kernel.call_later(float(index + 1), lambda i=index: seen.append(i))
    with pytest.raises(SimulationError):
        kernel.run(max_events=3)
    assert seen == [0, 1, 2]
    assert kernel.pending_events == 2
    kernel.run()
    assert seen == [0, 1, 2, 3, 4]
    assert kernel.dispatched_events == 5


def test_budget_equal_to_queue_size_drains_without_error(kernel):
    for index in range(4):
        kernel.call_later(1.0 + index, lambda: None)
    assert kernel.run(max_events=4) == 4


def test_event_queue_compacts_cancelled_backlog(kernel):
    """Mass cancellation (a campaign suicide) rebuilds the heap from
    the live events instead of letting cancelled entries linger."""
    events = [kernel.call_later(1000.0 + i, lambda: None, "doomed")
              for i in range(2000)]
    survivors = [kernel.call_later(10.0 + i, lambda: None, "live")
                 for i in range(10)]
    for event in events:
        event.cancel()
    queue = kernel._queue
    assert len(queue) == len(survivors)
    # The compaction keeps the heap within 2x of the live population.
    assert len(queue._heap) <= 2 * len(queue) + queue.COMPACT_MIN_GARBAGE
    assert kernel.run() == len(survivors)


def test_cancelling_a_dispatched_event_keeps_counts_consistent(kernel):
    event = kernel.call_later(1.0, lambda: None)
    kernel.call_later(2.0, lambda: None)
    kernel.run(until=1.5)
    event.cancel()  # already dispatched; must not double-decrement
    assert kernel.pending_events == 1
    assert kernel.run() == 1


def test_batched_dispatch_metric_matches_counter(kernel):
    for index in range(7):
        kernel.call_later(float(index + 1), lambda: None)
    kernel.run(until=3.5)
    assert kernel.metrics.value("sim.events_dispatched") == 3
    assert kernel.dispatched_events == 3
    kernel.run()
    assert kernel.metrics.value("sim.events_dispatched") == 7
    assert kernel.dispatched_events == 7
