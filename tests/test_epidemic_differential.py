"""Differential testing: the aggregate pool tier vs the full oracle.

Two same-seed kernels, two independent implementations of the epidemic
stepping spec — :class:`EpidemicModel` over a struct-of-arrays pool,
:class:`FullFidelityEpidemic` over real :class:`WindowsHost` objects
whose compartments are recounted from their infection registries each
epoch.  Everything observable must agree exactly: the per-epoch curve
(cumulative counts included), every individual host's compartment, the
transmission-vector attribution, the exposure epochs, and the response
to fault-engine C2 takedowns.  Populations stay at or under 200 hosts
— the oracle is deliberately O(objects).
"""

import pytest

from repro.core import CampaignWorld
from repro.epidemic import (
    EpidemicModel,
    FullFidelityEpidemic,
    STATE_NAMES,
    TransmissionProfile,
)
from repro.epidemic.scenarios import flame_profile, stuxnet_profile

HOSTS = 150
EPOCHS = 12
INITIAL = 3
DAY = 86400.0

PROFILES = {
    "stuxnet-epidemic": stuxnet_profile,
    "flame-epidemic": flame_profile,
}


def run_model(profile, seed, hosts=HOSTS, epochs=EPOCHS, faults=None):
    world = CampaignWorld(seed=seed)
    if faults is not None:
        faults(world)
    model = EpidemicModel(world.kernel, profile, hosts, epochs)
    model.seed_initial(INITIAL)
    model.start()
    world.kernel.run(until=model.horizon_seconds())
    return model


def run_oracle(profile, seed, hosts=HOSTS, epochs=EPOCHS, faults=None):
    world = CampaignWorld(seed=seed)
    if faults is not None:
        faults(world)
    oracle = FullFidelityEpidemic(world, profile, hosts, epochs)
    oracle.seed_initial(INITIAL)
    oracle.run()
    return oracle


@pytest.mark.parametrize("name", sorted(PROFILES))
def test_infection_curves_agree_exactly(name):
    """Both tiers emit the same curve record at every epoch."""
    model = run_model(PROFILES[name](), seed=401)
    oracle = run_oracle(PROFILES[name](), seed=401)
    assert len(model.curve) == len(oracle.curve) == EPOCHS + 1
    for ours, theirs in zip(model.curve, oracle.curve):
        assert ours == theirs
    # The epidemic actually happened — a frozen population would make
    # this differential vacuous.
    assert model.curve[-1]["cumulative"] > INITIAL


@pytest.mark.parametrize("name", sorted(PROFILES))
def test_cumulative_infections_agree_per_epoch(name):
    """The ISSUE's headline: cumulative infection counts per epoch."""
    model = run_model(PROFILES[name](), seed=77)
    oracle = run_oracle(PROFILES[name](), seed=77)
    ours = [point["cumulative"] for point in model.curve]
    theirs = [point["cumulative"] for point in oracle.curve]
    assert ours == theirs


def test_every_host_compartment_agrees():
    """Beyond aggregates: host *i* is in the same compartment in both
    tiers — the pool's rows and the oracle's objects are the same
    population, not just the same totals."""
    profile = stuxnet_profile()
    model = run_model(profile, seed=11)
    oracle = run_oracle(profile, seed=11)
    pool = model.pool
    for index in range(HOSTS):
        assert STATE_NAMES[pool.state_of(index)] == \
            oracle.host_state(index), "host %d diverged" % index


def test_vector_attribution_and_exposure_epochs_agree():
    """Resident infections carry the same vector and exposure epoch."""
    profile = flame_profile()
    model = run_model(profile, seed=23)
    oracle = run_oracle(profile, seed=23)
    pool = model.pool
    compared = 0
    for index, host in enumerate(oracle.hosts):
        infection = host.infections.get(profile.name)
        if infection is None:
            continue
        assert pool.vector_of(index) == infection.vector
        assert pool.exposed_epoch_of(index) == infection.exposed_epoch
        compared += 1
    assert compared > INITIAL


def test_region_assignment_is_shared_by_construction():
    profile = stuxnet_profile()
    model = run_model(profile, seed=31, epochs=1)
    oracle = run_oracle(profile, seed=31, epochs=1)
    assert list(model.pool.region_view()) == list(oracle._regions)


def test_curves_agree_under_c2_takedown():
    """Fault-engine damping is observed identically by both tiers."""
    profile = flame_profile()

    def takedown(world):
        for domain in profile.c2_domains[:2]:
            world.kernel.faults.inject_takedown(domain, at=3 * DAY)
        world.kernel.faults.inject_sinkhole(profile.c2_domains[2],
                                            at=6 * DAY)

    model = run_model(profile, seed=59, faults=takedown)
    oracle = run_oracle(profile, seed=59, faults=takedown)
    assert model.curve == oracle.curve
    availability = [point["c2_availability"] for point in model.curve]
    assert 0.25 in availability and 1.0 in availability


def test_takedown_actually_slows_a_c2_driven_epidemic():
    """A C2-only profile freezes when every domain is seized — the
    fault hook is load-bearing, not decorative."""
    profile = TransmissionProfile(
        "c2-only", c2_rate=0.6,
        c2_domains=("a.example", "b.example"),
        region_weights=(("world", 1.0),))

    def seize_all(world):
        for domain in profile.c2_domains:
            world.kernel.faults.inject_takedown(domain, at=0.0)

    undisturbed = run_model(profile, seed=7, hosts=80, epochs=8)
    seized = run_model(profile, seed=7, hosts=80, epochs=8,
                       faults=seize_all)
    assert undisturbed.curve[-1]["cumulative"] > INITIAL
    assert seized.curve[-1]["cumulative"] == INITIAL
    # And the oracle agrees about the frozen world too.
    oracle = run_oracle(profile, seed=7, hosts=80, epochs=8,
                        faults=seize_all)
    assert oracle.curve == seized.curve


def test_differential_holds_at_the_issue_ceiling():
    """One run at the full 200-host budget, more epochs than default."""
    profile = stuxnet_profile()
    model = run_model(profile, seed=2013, hosts=200, epochs=15)
    oracle = run_oracle(profile, seed=2013, hosts=200, epochs=15)
    assert model.curve == oracle.curve
