"""Virtual filesystem semantics."""

import pytest

from repro.winsim import FileNotFound, VfsError, VirtualFileSystem
from repro.winsim.vfs import normalize_path, split_path


@pytest.fixture
def vfs():
    return VirtualFileSystem()


def test_paths_are_case_insensitive(vfs):
    vfs.write("C:\\Windows\\System32\\WINSTA.EXE", b"x")
    assert vfs.exists("c:\\windows\\system32\\winsta.exe")
    assert vfs.read("c:\\WINDOWS\\system32\\WinSta.exe") == b"x"


def test_forward_slashes_normalised():
    assert normalize_path("c:/windows/temp") == "c:\\windows\\temp"
    assert normalize_path("c:\\\\double\\\\sep") == "c:\\double\\sep"
    assert split_path("c:\\a\\b") == ("c:\\a", "b")


def test_empty_path_rejected():
    with pytest.raises(VfsError):
        normalize_path("")


def test_write_creates_parent_directories(vfs):
    vfs.write("c:\\users\\bob\\documents\\deep\\file.txt", b"data")
    assert vfs.is_dir("c:\\users\\bob\\documents\\deep")
    assert vfs.is_dir("c:\\users\\bob")


def test_standard_skeleton_exists(vfs):
    assert vfs.is_dir("c:\\windows\\system32")
    assert vfs.is_dir("c:\\windows\\system32\\drivers")


def test_read_missing_raises(vfs):
    with pytest.raises(FileNotFound):
        vfs.read("c:\\nope.txt")


def test_delete(vfs):
    vfs.write("c:\\f.txt", b"1")
    assert vfs.delete("c:\\f.txt")
    assert not vfs.exists("c:\\f.txt")
    assert vfs.delete("c:\\f.txt", missing_ok=True) is False
    with pytest.raises(FileNotFound):
        vfs.delete("c:\\f.txt")


def test_rename_preserves_payload_and_content(vfs):
    marker = []
    vfs.write("c:\\windows\\system32\\s7otbxdx.dll", b"genuine",
              payload=lambda h, p: marker.append(1))
    record = vfs.rename("c:\\windows\\system32\\s7otbxdx.dll",
                        "c:\\windows\\system32\\s7otbxsx.dll")
    assert record.path.endswith("s7otbxsx.dll")
    assert not vfs.exists("c:\\windows\\system32\\s7otbxdx.dll")
    renamed = vfs.get("c:\\windows\\system32\\s7otbxsx.dll")
    assert renamed.data == b"genuine"
    assert renamed.payload is not None


def test_overwrite_data_partial_preserves_tail(vfs):
    vfs.write("c:\\doc.docx", b"A" * 100)
    vfs.overwrite_data("c:\\doc.docx", b"B" * 10)
    data = vfs.read("c:\\doc.docx")
    assert data[:10] == b"B" * 10
    assert data[10:] == b"A" * 90  # the Shamoon-bug shape


def test_overwrite_data_extends_when_longer(vfs):
    vfs.write("c:\\small.txt", b"ab")
    vfs.overwrite_data("c:\\small.txt", b"XYZW")
    assert vfs.read("c:\\small.txt") == b"XYZW"


def test_overwrite_data_at_offset(vfs):
    vfs.write("c:\\f.bin", b"0123456789")
    vfs.overwrite_data("c:\\f.bin", b"XX", offset=4)
    assert vfs.read("c:\\f.bin") == b"0123XX6789"


def test_overwrite_readonly_rejected(vfs):
    record = vfs.write("c:\\locked.txt", b"ro")
    record.attributes.readonly = True
    with pytest.raises(VfsError):
        vfs.overwrite_data("c:\\locked.txt", b"x")


def test_list_dir_only_direct_children(vfs):
    vfs.write("c:\\top\\a.txt", b"")
    vfs.write("c:\\top\\sub\\b.txt", b"")
    names = [r.name for r in vfs.list_dir("c:\\top")]
    assert names == ["a.txt"]


def test_list_dir_missing_raises(vfs):
    with pytest.raises(FileNotFound):
        vfs.list_dir("c:\\ghost")


def test_rootkit_hiding_api_vs_raw(vfs):
    vfs.write("c:\\windows\\system32\\mrxnet.sys", b"rk", origin="stuxnet")
    vfs.write("c:\\windows\\system32\\clean.dll", b"ok")
    vfs.hide_filters.append(lambda record: record.origin == "stuxnet")
    api_names = [r.name for r in vfs.list_dir("c:\\windows\\system32")]
    raw_names = [r.name for r in vfs.list_dir("c:\\windows\\system32", raw=True)]
    assert "mrxnet.sys" not in api_names
    assert "mrxnet.sys" in raw_names
    assert not vfs.exists("c:\\windows\\system32\\mrxnet.sys")
    assert vfs.exists("c:\\windows\\system32\\mrxnet.sys", raw=True)
    with pytest.raises(FileNotFound):
        vfs.get("c:\\windows\\system32\\mrxnet.sys")


def test_find_by_extension(vfs):
    vfs.write("c:\\users\\u\\documents\\a.docx", b"")
    vfs.write("c:\\users\\u\\documents\\b.DWG", b"")
    vfs.write("c:\\users\\u\\documents\\c.txt", b"")
    found = vfs.find_by_extension(["docx", ".dwg"])
    assert sorted(r.name for r in found) == ["a.docx", "b.dwg"]


def test_find_in_folders_named(vfs):
    vfs.write("c:\\users\\u\\my documents\\plan.docx", b"")
    vfs.write("c:\\users\\u\\downloads\\tool.zip", b"")
    vfs.write("c:\\users\\u\\other\\x.txt", b"")
    found = vfs.find_in_folders_named(["document", "download"])
    assert sorted(r.name for r in found) == ["plan.docx", "tool.zip"]


def test_walk_and_counts(vfs):
    base = vfs.file_count()
    vfs.write("c:\\a\\1.txt", b"123")
    vfs.write("c:\\a\\b\\2.txt", b"4567")
    assert vfs.file_count() == base + 2
    assert len(vfs.walk("c:\\a")) == 2
    assert vfs.total_bytes() >= 7


def test_extension_and_size_properties(vfs):
    record = vfs.write("c:\\archive.tar.gz", b"12345")
    assert record.extension == "gz"
    assert record.size == 5
    assert vfs.write("c:\\noext", b"").extension == ""
