"""Lua-subset lexing and parsing."""

import pytest

from repro.luavm import LuaSyntaxError
from repro.luavm.lexer import tokenize
from repro.luavm.parser import parse


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "eof"]


def test_tokenize_names_keywords_numbers():
    tokens = kinds("local x = 42")
    assert tokens == [("keyword", "local"), ("name", "x"), ("op", "="),
                      ("number", 42)]


def test_tokenize_floats_and_concat():
    tokens = kinds("1.5 .. 2")
    assert tokens == [("number", 1.5), ("op", ".."), ("number", 2)]


def test_numeric_range_followed_by_concat_disambiguates():
    # "1..2" must lex as 1 .. 2, not a malformed float.
    tokens = kinds('a = 1 .. 2')
    assert ("op", "..") in tokens


def test_tokenize_strings_with_escapes():
    tokens = kinds("'a\\nb' \"c\\\"d\"")
    assert tokens == [("string", "a\nb"), ("string", 'c"d')]


def test_unterminated_string_raises():
    with pytest.raises(LuaSyntaxError):
        tokenize("'open")
    with pytest.raises(LuaSyntaxError):
        tokenize("'line\nbreak'")


def test_comments_stripped():
    tokens = kinds("x = 1 -- comment here\ny = 2")
    values = [v for _, v in tokens]
    assert "comment" not in values
    assert values.count("=") == 2


def test_multichar_operators():
    tokens = kinds("a ~= b <= c >= d == e")
    ops = [v for k, v in tokens if k == "op"]
    assert ops == ["~=", "<=", ">=", "=="]


def test_unexpected_character_raises():
    with pytest.raises(LuaSyntaxError):
        tokenize("x = @")


def test_line_numbers_tracked():
    tokens = tokenize("a\nb\nc")
    assert [t.line for t in tokens[:3]] == [1, 2, 3]


def test_parse_statements_shape():
    block = parse("""
    local a = 1
    b = a + 2
    if b > 2 then c = 1 elseif b < 0 then c = 2 else c = 3 end
    while c > 0 do c = c - 1 end
    for i = 1, 10, 2 do d = i end
    """)
    tags = [node[0] for node in block]
    assert tags == ["local", "assign", "if", "while", "fornum"]


def test_parse_function_forms():
    block = parse("""
    function top(a, b) return a end
    local function helper() end
    obj = {}
    function obj.method(self) return 1 end
    f = function(x) return x end
    """)
    assert block[0][0] == "function"
    assert block[1][0] == "local_function"
    assert block[3][0] == "function" and block[3][1] == ["obj", "method"]
    assert block[4][2][0] == "function_expr"


def test_parse_table_constructors():
    block = parse('t = { 1, 2, name = "x", ["k"] = 9 }')
    items = block[0][2][1]
    assert len(items) == 4
    assert items[0][0] is None           # positional
    assert items[2][0] == ("string", "name")


def test_parse_calls_and_methods():
    block = parse("foo(1, 2) obj:method(3) table.insert(t, 1)")
    assert block[0][1][0] == "call"
    assert block[1][1][0] == "method"
    assert block[2][1][0] == "call"


def test_expression_alone_is_not_statement():
    with pytest.raises(LuaSyntaxError):
        parse("1 + 2")


def test_invalid_assignment_target():
    with pytest.raises(LuaSyntaxError):
        parse("f() = 3")


def test_missing_end_raises():
    with pytest.raises(LuaSyntaxError):
        parse("if x then y = 1")


def test_concat_right_associative():
    block = parse("x = 'a' .. 'b' .. 'c'")
    expr = block[0][2]
    assert expr[1] == ".."
    assert expr[3][0] == "binop"  # right side nests
