"""Signatures, IOC sweeps, and the AV arms-race model."""

import pytest

from repro.analysis import (
    AntivirusProduct,
    AvVendor,
    IocDatabase,
    Signature,
    SignatureEngine,
    default_iocs,
    default_signatures,
)


def test_signature_requires_some_pattern():
    with pytest.raises(ValueError):
        Signature("empty", "fam")


def test_signature_matching_modes():
    any_sig = Signature("s", "f", byte_patterns=[b"aaa", b"bbb"])
    assert any_sig.matches_bytes(b"xxbbbxx")
    all_sig = Signature("s2", "f", byte_patterns=[b"aaa", b"bbb"],
                        require_all=True)
    assert not all_sig.matches_bytes(b"xxbbbxx")
    assert all_sig.matches_bytes(b"aaabbb")
    name_sig = Signature("s3", "f", name_patterns=["trksvr"])
    assert name_sig.matches_name("C:\\Windows\\System32\\TrkSvr.exe")


def test_engine_scans_infected_host(host, world):
    from repro.malware.stuxnet import Stuxnet
    from repro.sim import Kernel

    stux = Stuxnet(host.kernel, world)
    stux.infect(host, via="initial")
    engine = SignatureEngine(default_signatures())
    forensic = engine.scan_host(host, raw=True)
    assert "stuxnet" in engine.families_found(forensic)


def test_rootkit_blinds_live_scan_but_not_forensics(host_factory, world, kernel):
    from repro.malware.stuxnet import Stuxnet

    victim = host_factory("XP", os_version="xp")
    stux = Stuxnet(kernel, world)
    stux.infect(victim, via="initial")
    assert victim.hostname in stux.rootkit_hosts
    engine = SignatureEngine(default_signatures())
    live = engine.scan_host(victim, raw=False)
    forensic = engine.scan_host(victim, raw=True)
    live_paths = {path for _, path in live}
    forensic_paths = {path for _, path in forensic}
    hidden = forensic_paths - live_paths
    assert any("winsta.exe" in p for p in hidden)


def test_release_gating_by_time():
    engine = SignatureEngine([
        Signature("old", "f", byte_patterns=[b"x"], released_at=0.0),
        Signature("new", "f", byte_patterns=[b"x"], released_at=100.0),
    ])
    assert len(engine.scan_bytes(b"x", at_time=50.0)) == 1
    assert len(engine.scan_bytes(b"x", at_time=150.0)) == 2
    assert len(engine.scan_bytes(b"x")) == 2  # no gate


def test_ioc_sweep_identifies_families(host, world, kernel):
    from repro.malware.stuxnet import Stuxnet

    stux = Stuxnet(kernel, world)
    stux.infect(host, via="initial")
    iocs = default_iocs()
    infected = iocs.infected_hosts([host])
    assert infected == {host.hostname: ["stuxnet"]}


def test_ioc_scans_registry_and_services(host_factory):
    host = host_factory("H")
    host.vfs.write("c:\\windows\\system32\\trksvr.exe", b"")
    host.services.create("TrkSvr", "c:\\windows\\system32\\trksvr.exe")
    hits = default_iocs().scan_host(host)
    kinds = {i.kind for i, _ in hits}
    assert "file-path" in kinds
    assert "service-name" in kinds


def test_ioc_scans_network_capture(kernel):
    from repro.netsim.packet import PacketCapture

    capture = PacketCapture(kernel.clock)
    capture.record("victim", "www.mypremierfutbol.com", "http", "GET /")
    capture.record("victim", "www.benign.com", "http", "GET /")
    hits = default_iocs().scan_capture(capture)
    assert len(hits) == 1
    assert hits[0][0].family == "stuxnet"


def test_ioc_unknown_kind_rejected():
    from repro.analysis.ioc import Indicator

    with pytest.raises(ValueError):
        Indicator("smell", "x", "f")


def test_av_vendor_ships_rule_after_lag(kernel):
    vendor = AvVendor(kernel, response_days=7.0)
    signature = vendor.submit_sample("flame", b"mssecmgr marker")
    assert signature is not None
    assert vendor.submit_sample("flame", b"mssecmgr marker") is None  # dup
    assert vendor.rules_active_now() == []
    kernel.clock.advance_to(8 * 86400.0)
    assert len(vendor.rules_active_now()) == 1


def test_av_product_detects_after_rule_release(kernel, host_factory):
    vendor = AvVendor(kernel, response_days=2.0)
    host = host_factory("EP")
    host.vfs.write("c:\\windows\\system32\\evil.ocx", b"unique evil marker")
    product = AntivirusProduct(kernel, host, vendor, scan_interval=3600.0)
    vendor.submit_sample("evilfam", b"unique evil marker")
    kernel.run_for(86400.0)
    assert product.detections == []  # rule not live yet
    kernel.run_for(2 * 86400.0)
    assert product.detections
    assert host.event_log.entries(source="antivirus", severity="warning")
    assert product.alert_count >= 1
    product.stop()


def test_av_product_misses_rootkit_hidden_files(kernel, host_factory):
    vendor = AvVendor(kernel, response_days=0.001)
    host = host_factory("EP2")
    host.vfs.write("c:\\windows\\system32\\hidden.ocx", b"evil marker",
                   origin="rk")
    host.vfs.hide_filters.append(lambda r: r.origin == "rk")
    vendor.submit_sample("fam", b"evil marker")
    product = AntivirusProduct(kernel, host, vendor, scan_interval=3600.0)
    kernel.run_for(86400.0)
    assert product.detections == []
