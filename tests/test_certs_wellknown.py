"""The shared PKI world: roots, vendors, and chains."""

import pytest

from repro.certs import (
    ELDOS,
    JMICRON,
    MICROSOFT_LICENSING_CA,
    MICROSOFT_ROOT,
    PkiWorld,
    REALTEK,
)


def test_every_vendor_has_usable_credentials(shared_pki):
    for vendor in (JMICRON, REALTEK, ELDOS):
        cert, keypair = shared_pki.vendor_credentials(vendor)
        assert cert.subject == vendor
        assert cert.allows("code-signing")
        signature = keypair.sign(b"probe")
        assert cert.public_key.verify(b"probe", signature)


def test_unknown_vendor_rejected(shared_pki):
    with pytest.raises(KeyError):
        shared_pki.vendor_credentials("Umbrella Corp")


def test_vendor_chains_verify_in_fresh_stores(shared_pki):
    store = shared_pki.make_trust_store()
    for vendor in (JMICRON, REALTEK, ELDOS):
        assert store.verify_chain(shared_pki.vendor_chain(vendor))


def test_update_signing_chain_verifies(shared_pki):
    store = shared_pki.make_trust_store()
    result = store.verify_chain(shared_pki.update_signing_chain())
    assert result
    assert result.signer == "Microsoft Windows Update Publisher"


def test_licensing_intermediate_signed_with_weak_hash(shared_pki):
    cert = shared_pki.licensing_ca_cert
    assert cert.subject == MICROSOFT_LICENSING_CA
    assert cert.issuer == MICROSOFT_ROOT
    assert cert.signature_algorithm == "weakmd5"
    assert cert.allows("ca")


def test_trust_stores_are_independent(shared_pki):
    a = shared_pki.make_trust_store()
    b = shared_pki.make_trust_store()
    cert, _ = shared_pki.vendor_credentials(JMICRON)
    a.revoke_serial(cert.serial)
    assert not a.verify_chain(shared_pki.vendor_chain(JMICRON))
    assert b.verify_chain(shared_pki.vendor_chain(JMICRON))


def test_world_keypair_helper(shared_pki):
    assert shared_pki.make_keypair("x").modulus == \
           shared_pki.make_keypair("x").modulus
