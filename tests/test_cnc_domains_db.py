"""Domain pool registrations and the MiniDatabase."""

import pytest

from repro.cnc import DomainPool, MiniDatabase
from repro.sim import DeterministicRandom


@pytest.fixture
def pool():
    pool = DomainPool(DeterministicRandom(5))
    pool.register_many(80, ["ip-%02d" % i for i in range(22)])
    return pool


def test_fig4_scale(pool):
    assert len(pool) == 80
    assert len(pool.server_ips()) == 22
    assert len(set(pool.domains())) == 80


def test_registrant_geography_biased_to_de_at(pool):
    histogram = pool.country_histogram()
    de_at = histogram.get("DE", 0) + histogram.get("AT", 0)
    assert de_at / len(pool) > 0.6


def test_variety_of_registrars(pool):
    assert pool.registrar_count() >= 3


def test_domains_for_server_partition(pool):
    total = sum(len(pool.domains_for_server(ip)) for ip in pool.server_ips())
    assert total == 80


def test_db_insert_select():
    db = MiniDatabase()
    db.insert("clients", client_id="a", client_type="FL")
    db.insert("clients", client_id="b", client_type="SP")
    assert db.count("clients") == 2
    assert db.select_one("clients", client_id="a")["client_type"] == "FL"
    assert db.select_one("clients", client_id="zz") is None
    assert db.select("clients", client_type="SP")[0]["client_id"] == "b"


def test_db_rows_are_copies():
    db = MiniDatabase()
    db.insert("t", value=1)
    row = db.select_one("t")
    row["value"] = 999
    assert db.select_one("t")["value"] == 1


def test_db_update():
    db = MiniDatabase()
    db.insert("packages", entry_id="e1", retrieved=False)
    changed = db.update("packages", {"entry_id": "e1"}, {"retrieved": True})
    assert changed == 1
    assert db.select_one("packages", entry_id="e1")["retrieved"] is True


def test_db_delete_variants():
    db = MiniDatabase()
    for i in range(5):
        db.insert("t", parity=i % 2)
    assert db.delete("t", parity=0) == 3
    assert db.delete_where("t", lambda row: row["parity"] == 1) == 2
    assert db.count("t") == 0


def test_db_drop_all():
    db = MiniDatabase()
    db.insert("a", x=1)
    db.drop_all()
    assert db.tables() == []
    assert db.select("a") == []


def test_db_rowids_unique_across_tables():
    db = MiniDatabase()
    r1 = db.insert("a", x=1)
    r2 = db.insert("b", x=1)
    assert r1 != r2
