"""Property-based tests: event kernel ordering invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim import Kernel


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       max_size=40))
def test_dispatch_order_is_nondecreasing(delays):
    kernel = Kernel(seed=0)
    seen = []
    for delay in delays:
        kernel.call_later(delay, lambda d=delay: seen.append(kernel.now))
    kernel.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
    if delays:
        assert kernel.now == max(delays)


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=30),
       cutoff=st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_run_until_dispatches_exactly_the_due_events(delays, cutoff):
    kernel = Kernel(seed=0)
    fired = []
    for index, delay in enumerate(delays):
        kernel.call_later(delay, lambda i=index: fired.append(i))
    kernel.run(until=cutoff)
    expected = {i for i, d in enumerate(delays) if d <= cutoff}
    assert set(fired) == expected
    assert kernel.now == cutoff


@settings(max_examples=30, deadline=None)
@given(interval=st.floats(min_value=0.5, max_value=1000.0,
                          allow_nan=False),
       horizon=st.floats(min_value=0.0, max_value=10_000.0,
                         allow_nan=False))
def test_periodic_fire_count_matches_floor(interval, horizon):
    kernel = Kernel(seed=0)
    ticks = []
    kernel.every(interval, lambda: ticks.append(kernel.now))
    kernel.run(until=horizon)
    # The kernel reschedules by repeated float addition, so the oracle
    # must accumulate the same way: `int(horizon / interval)` can be
    # off by one when the running sum drifts across the horizon (e.g.
    # interval=0.8, horizon≈784 fires 980 ticks where division says
    # 979).  The drift itself stays within one tick of the closed form.
    expected = 0
    when = interval
    while when <= horizon:
        expected += 1
        when += interval
    assert len(ticks) == expected
    assert abs(expected - int(horizon / interval)) <= 1


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       count=st.integers(min_value=0, max_value=30))
def test_trace_is_deterministic_per_seed(seed, count):
    def build():
        kernel = Kernel(seed=seed)
        for i in range(count):
            kernel.call_later(kernel.rng.uniform(0, 100),
                              lambda i=i: kernel.trace.record("a", "e%d" % i))
        kernel.run()
        return [(r.time, r.action) for r in kernel.trace]

    assert build() == build()
