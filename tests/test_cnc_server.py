"""C&C server: dead-drop folders, protocol, anti-forensics, cleanup."""

import json

import pytest

from repro.cnc import ADS_FOLDER, CncServer, ENTRIES_FOLDER, NEWS_FOLDER
from repro.cnc.server import decode_package, encode_package
from repro.crypto import generate_keypair
from repro.netsim.http import HttpRequest


@pytest.fixture
def coordinator_key():
    return generate_keypair("test-coordinator")


@pytest.fixture
def server(kernel, coordinator_key):
    return CncServer(kernel, "cnc-test", coordinator_key.public,
                     extra_domains=["extra1.com", "extra2.com"])


def _get_news(server, client_id="client-1", client_type="CLIENT_TYPE_FL"):
    request = HttpRequest("GET", "http://x/newsforyou", client=client_id,
                          params={"command": "GET_NEWS",
                                  "client_id": client_id,
                                  "client_type": client_type})
    response = server.http.handle(request)
    return json.loads(response.body.decode("utf-8"))


def test_package_wire_round_trip():
    package = {"name": "mod", "kind": "module", "payload": b"\x00\x01lua"}
    assert decode_package(encode_package(package)) == package


def test_admin_setup_runs_logwiper(kernel, server):
    assert server.logging_enabled
    server.admin_setup()
    assert not server.logging_enabled
    assert "/var/log/syslog" not in server.files
    assert "/root/LogWiper.sh" not in server.files  # deletes itself


def test_get_news_registers_client_and_expands_domains(server):
    payload = _get_news(server)
    assert payload["domains"] == ["extra1.com", "extra2.com"]
    clients = server.known_clients()
    assert len(clients) == 1
    assert clients[0]["client_type"] == "CLIENT_TYPE_FL"


def test_client_type_histogram(server):
    _get_news(server, "a", "CLIENT_TYPE_FL")
    _get_news(server, "b", "CLIENT_TYPE_SP")
    _get_news(server, "c", "CLIENT_TYPE_SP")
    assert server.client_type_histogram() == {
        "CLIENT_TYPE_FL": 1, "CLIENT_TYPE_SP": 2}


def test_ads_are_per_client_and_consumed_once(server):
    server.put_ad("client-1", {"name": "cmd", "kind": "command",
                               "payload": b"x"})
    other = _get_news(server, "client-2")
    assert other["packages"] == []
    mine = _get_news(server, "client-1")
    assert len(mine["packages"]) == 1
    again = _get_news(server, "client-1")
    assert again["packages"] == []  # consumed


def test_news_go_to_everyone_and_persist(server):
    server.put_news({"name": "SUICIDE", "kind": "command", "payload": b""})
    for client in ("a", "b"):
        payload = _get_news(server, client)
        names = [json.loads(p)["name"] for p in payload["packages"]]
        assert names == ["SUICIDE"]


def test_add_entry_stores_and_counts_bytes(kernel, server):
    request = HttpRequest("POST", "http://x/newsforyou", client="c",
                          params={"command": "ADD_ENTRY", "client_id": "c"},
                          body=b"sealed-blob-bytes")
    response = server.http.handle(request)
    assert response.ok
    assert server.pending_entry_count() == 1
    assert server.bytes_received == len(b"sealed-blob-bytes")


def test_collect_entries_marks_retrieved_and_cleanup_shreds(kernel, server):
    server.admin_setup()
    request = HttpRequest("POST", "http://x/newsforyou", client="c",
                          params={"command": "ADD_ENTRY", "client_id": "c"},
                          body=b"blob")
    server.http.handle(request)
    collected = server.collect_entries()
    assert len(collected) == 1
    # Second collection returns nothing new.
    assert server.collect_entries() == []
    # The 30-minute job shreds the retrieved entry.
    kernel.run_for(31 * 60)
    assert server.pending_entry_count() == 0


def test_uncollected_entries_survive_cleanup(kernel, server):
    server.admin_setup()
    request = HttpRequest("POST", "http://x/newsforyou", client="c",
                          params={"command": "ADD_ENTRY", "client_id": "c"},
                          body=b"blob")
    server.http.handle(request)
    kernel.run_for(3 * 3600)
    assert server.pending_entry_count() == 1


def test_unknown_command_rejected(server):
    request = HttpRequest("GET", "http://x/newsforyou",
                          params={"command": "EXPLODE"})
    assert server.http.handle(request).status == 400


def test_shutdown_refuses_connections(server):
    server.shutdown()
    request = HttpRequest("GET", "http://x/newsforyou",
                          params={"command": "GET_NEWS", "client_id": "c"})
    assert not server.http.handle(request).ok
    assert server.folders[ENTRIES_FOLDER] == {}
    assert server.folders[ADS_FOLDER] == {}
    assert server.folders[NEWS_FOLDER] == {}


def test_front_page_looks_ordinary(server):
    request = HttpRequest("GET", "http://x/")
    response = server.http.handle(request)
    assert response.ok
    assert b"It works!" in response.body
