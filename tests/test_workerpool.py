"""Pool lifecycle regressions for the warm sweep worker pool.

The warm pool trades per-sweep pool churn for a long-lived resource,
which creates exactly one new failure class: leaked worker processes.
These tests pin the lifecycle contract from
:func:`repro.sim.sweep._dispatch_warm_pool`:

* a *replica* error (caught worker-side) raises the typed
  :class:`SweepWorkerError` and leaves the warm pool healthy and
  reusable;
* anything escaping mid-dispatch — a manifest write raising,
  ``KeyboardInterrupt``, a worker *process* dying — terminates the
  pool outright, so no worker survives a failed sweep;
* the shared pool is genuinely reused across sweeps, and
  ``shutdown_shared_pool`` (the atexit hook) reaps it.
"""

import multiprocessing
import time

import pytest

from repro.core.ensemble import CampaignSpec, replica_seed, run_replica
from repro.core.resume import SweepCheckpoint
from repro.sim.errors import SweepWorkerError
from repro.sim.sweep import SweepConfig, run_sweep
from repro.sim.workerpool import (
    WarmPool,
    decode_replica_row,
    encode_replica_row,
    shutdown_shared_pool,
)

SPEC = CampaignSpec.quick("stuxnet-epidemic")

#: A spec whose replicas are guaranteed to raise inside the worker:
#: the fault profile rejects the unknown parameter at build time.
POISON_SPEC = CampaignSpec.quick("stuxnet", fault_profile="flaky-network",
                                 fault_params={"bogus": 1})


def warm_worker_count(timeout=3.0):
    """Live ``sweep-warm-*`` children, waiting briefly for reaping."""
    deadline = time.monotonic() + timeout
    while True:
        workers = [process for process in multiprocessing.active_children()
                   if process.name.startswith("sweep-warm-")]
        count = len(workers)
        if count == 0 or time.monotonic() >= deadline:
            return count
        time.sleep(0.05)


@pytest.fixture(autouse=True)
def reset_shared_pool():
    """Each test starts and ends with no shared pool (and no leaks)."""
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()
    assert warm_worker_count() == 0


def pool_config(**overrides):
    defaults = dict(replicas=4, workers=2, mode="parallel", base_seed=42,
                    fallback=False, chunk_size=1)
    defaults.update(overrides)
    return SweepConfig(**defaults)


# -- reuse ---------------------------------------------------------------------

def test_shared_pool_is_reused_across_sweeps():
    first = run_sweep(SPEC, pool_config())
    second = run_sweep(SPEC, pool_config())
    assert first.dispatch["pool_reused"] is False
    assert second.dispatch["pool_reused"] is True
    assert first.digests() == second.digests()
    # The pool is alive between sweeps — that is the whole point.
    assert warm_worker_count(timeout=0.0) == 2


def test_changing_the_key_swaps_the_pool_without_leaking():
    run_sweep(SPEC, pool_config())
    swapped = run_sweep(SPEC, pool_config(base_seed=43))
    assert swapped.dispatch["pool_reused"] is False
    # The stale pool was closed when the key changed: only the new
    # pool's workers remain.
    assert warm_worker_count(timeout=0.0) == 2


def test_private_pool_is_closed_with_its_sweep():
    result = run_sweep(SPEC, pool_config(pool_warm=False))
    assert result.dispatch["pool_reused"] is False
    assert warm_worker_count() == 0


# -- failure lifecycle ---------------------------------------------------------

def test_worker_replica_error_raises_typed_error_and_keeps_pool_warm():
    with pytest.raises(SweepWorkerError) as excinfo:
        run_sweep(POISON_SPEC, pool_config())
    error = excinfo.value
    assert error.kind == "TypeError"
    assert error.index in range(4)
    assert error.pool_broken is False
    # The workers caught the replica error at the chunk boundary and
    # stayed healthy: the warm pool survives for the next sweep.
    assert warm_worker_count(timeout=0.0) == 2


def test_record_callback_exception_terminates_pool(tmp_path, monkeypatch):
    original = SweepCheckpoint.record
    recorded = []

    def explode_on_second(self, replica):
        original(self, replica)
        recorded.append(replica.index)
        if len(recorded) == 2:
            raise RuntimeError("manifest write blew up")

    monkeypatch.setattr(SweepCheckpoint, "record", explode_on_second)
    with pytest.raises(RuntimeError):
        run_sweep(SPEC, pool_config(),
                  checkpoint_dir=str(tmp_path / "sweep"))
    monkeypatch.undo()
    # Chunks were in flight when the exception escaped: the pool must
    # be terminated, not left warm (its workers may be mid-replica).
    assert warm_worker_count() == 0
    # A fresh sweep after the failure builds a fresh pool and works.
    clean = run_sweep(SPEC, pool_config())
    assert clean.dispatch["pool_reused"] is False
    assert len(clean.replicas) == 4


def test_dead_worker_surfaces_as_pool_broken_error():
    pool = WarmPool(SPEC, 42, workers=2)
    try:
        for process in multiprocessing.active_children():
            if process.name.startswith("sweep-warm-"):
                process.kill()
                process.join()
        assert pool.alive() is False
        with pytest.raises(SweepWorkerError) as excinfo:
            pool.run([[0], [1]])
        assert excinfo.value.pool_broken is True
    finally:
        pool.terminate()
    assert warm_worker_count() == 0


def test_warm_pool_context_manager_reaps_on_error():
    with pytest.raises(KeyboardInterrupt):
        with WarmPool(SPEC, 42, workers=2) as pool:
            assert pool.alive()
            raise KeyboardInterrupt
    assert warm_worker_count() == 0


# -- direct pool use and the row codec -----------------------------------------

def stable_dict(replica):
    """``as_dict()`` minus the only wall-clock-bound field."""
    payload = replica.as_dict()
    payload.pop("wall_seconds")
    return payload


def test_warm_pool_run_matches_in_process_replicas():
    with WarmPool(SPEC, 7, workers=2) as pool:
        replicas = sorted(pool.run([[0, 1], [2]]),
                          key=lambda replica: replica.index)
        reference = [run_replica(SPEC, index, 7) for index in range(3)]
        assert [stable_dict(r) for r in replicas] == \
            [stable_dict(r) for r in reference]
        # A second dispatch on the same (still warm) pool works too.
        again = pool.run([[0]])
        assert stable_dict(again[0]) == stable_dict(reference[0])
    assert warm_worker_count() == 0


def test_closed_pool_refuses_dispatch():
    pool = WarmPool(SPEC, 7, workers=1)
    pool.close()
    with pytest.raises(RuntimeError):
        pool.run([[0]])


def test_replica_row_codec_round_trips_a_real_replica():
    replica = run_replica(SPEC, 3, 99)
    decoded = decode_replica_row(encode_replica_row(replica), 99)
    assert decoded.as_dict() == replica.as_dict()
    # The seed is recomputed, not shipped: decoding under the wrong
    # base seed is loudly visible rather than silently absorbed.
    wrong = decode_replica_row(encode_replica_row(replica), 100)
    assert wrong.seed != replica.seed
    assert wrong.seed == replica_seed(100, 3)
