"""Deterministic RNG behaviour."""

import pytest

from repro.sim import DeterministicRandom


def test_same_seed_same_stream():
    a = DeterministicRandom(7)
    b = DeterministicRandom(7)
    assert [a.randint(0, 100) for _ in range(10)] == \
           [b.randint(0, 100) for _ in range(10)]


def test_different_seeds_differ():
    a = DeterministicRandom(7)
    b = DeterministicRandom(8)
    assert [a.randint(0, 10**9) for _ in range(5)] != \
           [b.randint(0, 10**9) for _ in range(5)]


def test_fork_is_independent_of_parent_draw_order():
    parent_a = DeterministicRandom(1)
    child_a = parent_a.fork("x")
    first = child_a.randint(0, 10**9)

    parent_b = DeterministicRandom(1)
    parent_b.randint(0, 100)  # extra parent draw must not affect child
    child_b = parent_b.fork("x")
    assert child_b.randint(0, 10**9) == first


def test_fork_labels_differ():
    parent = DeterministicRandom(1)
    assert parent.fork("x").randint(0, 10**9) != \
           parent.fork("y").randint(0, 10**9)


def test_chance_bounds_validation():
    rng = DeterministicRandom(0)
    with pytest.raises(ValueError):
        rng.chance(1.5)
    with pytest.raises(ValueError):
        rng.chance(-0.1)
    assert rng.chance(1.0) is True
    assert rng.chance(0.0) is False


def test_chance_rate_roughly_matches():
    rng = DeterministicRandom(3)
    hits = sum(1 for _ in range(10_000) if rng.chance(0.3))
    assert 2700 < hits < 3300


def test_bytes_length_and_determinism():
    assert len(DeterministicRandom(5).bytes(1000)) == 1000
    assert DeterministicRandom(5).bytes(32) == DeterministicRandom(5).bytes(32)


def test_shuffle_returns_same_list_object():
    rng = DeterministicRandom(2)
    items = [1, 2, 3, 4, 5]
    result = rng.shuffle(items)
    assert result is items
    assert sorted(items) == [1, 2, 3, 4, 5]


def test_sample_and_choice():
    rng = DeterministicRandom(4)
    population = list(range(100))
    picked = rng.sample(population, 10)
    assert len(set(picked)) == 10
    assert rng.choice(population) in population
