"""CncClient domain rotation and the attack-center role separation."""

import pytest

from repro.cnc import AttackCenter, CncClient, CncServer
from repro.netsim import Internet, Lan


@pytest.fixture
def cnc_world(kernel, host_factory):
    internet = Internet(kernel)
    center = AttackCenter(kernel)
    server = CncServer(kernel, "cnc-01", center.coordinator_public_key,
                       extra_domains=["alt1.com", "alt2.com"])
    center.provision_server(server, internet,
                            ["primary.com", "alt1.com", "alt2.com"])
    lan = Lan(kernel, "victims", internet=internet)
    victim = host_factory("V-1")
    lan.attach(victim)
    return {"internet": internet, "center": center, "server": server,
            "lan": lan, "victim": victim}


def test_get_news_expands_domain_list(cnc_world):
    client = CncClient("uid-v-1", ["primary.com"])
    packages = client.get_news(cnc_world["lan"], cnc_world["victim"])
    assert packages == []
    assert set(client.domains) == {"primary.com", "alt1.com", "alt2.com"}
    assert client.contact_count == 1


def test_client_falls_back_across_dead_domains(cnc_world):
    client = CncClient("uid-v-1", ["dead1.com", "dead2.com", "primary.com"])
    packages = client.get_news(cnc_world["lan"], cnc_world["victim"])
    assert packages is not None
    assert client.failed_contacts == 2


def test_client_returns_none_when_all_domains_dead(cnc_world):
    client = CncClient("uid-v-1", ["dead1.com", "dead2.com"])
    assert client.get_news(cnc_world["lan"], cnc_world["victim"]) is None


def test_sinkholed_domain_rotation_resilience(cnc_world):
    """Takedown of the primary leaves rotation domains working."""
    cnc_world["internet"].dns.sinkhole("primary.com")
    client = CncClient("uid-v-1", ["primary.com", "alt1.com"])
    packages = client.get_news(cnc_world["lan"], cnc_world["victim"])
    assert packages is not None  # alt1 still reaches the real server
    assert client.failed_contacts >= 1


def test_add_entry_flows_to_coordinator_only(cnc_world):
    center = cnc_world["center"]
    client = CncClient("uid-v-1", ["primary.com"])
    assert client.add_entry(cnc_world["lan"], cnc_world["victim"],
                            b"the stolen file", center.coordinator_public_key)
    assert center.harvest() == 1
    # The operator holds sealed bytes only.
    _, _, blob = center.sealed_backlog[0]
    assert b"the stolen file" not in blob
    assert not center.operator_can_read(blob)
    # The coordinator opens them.
    assert center.coordinator_decrypt_backlog() == 1
    assert center.recovered_intelligence[0]["data"] == b"the stolen file"


def test_push_command_reaches_all_servers(kernel, cnc_world, host_factory):
    center = cnc_world["center"]
    second = CncServer(kernel, "cnc-02", center.coordinator_public_key)
    center.provision_server(second, cnc_world["internet"], ["second.com"])
    center.push_command("hello", b"payload")
    client_a = CncClient("a", ["primary.com"])
    client_b = CncClient("b", ["second.com"])
    pkgs_a = client_a.get_news(cnc_world["lan"], cnc_world["victim"])
    pkgs_b = client_b.get_news(cnc_world["lan"], cnc_world["victim"])
    assert [p["name"] for p in pkgs_a] == ["hello"]
    assert [p["name"] for p in pkgs_b] == ["hello"]


def test_targeted_ad_reaches_only_named_client(cnc_world):
    center = cnc_world["center"]
    center.push_command("steal", b"paths", client_id="uid-target")
    lan, victim = cnc_world["lan"], cnc_world["victim"]
    other = CncClient("uid-other", ["primary.com"])
    target = CncClient("uid-target", ["primary.com"])
    assert other.get_news(lan, victim) == []
    assert [p["name"] for p in target.get_news(lan, victim)] == ["steal"]


def test_suicide_broadcast_and_stats(cnc_world):
    center = cnc_world["center"]
    center.broadcast_suicide()
    client = CncClient("uid-v-1", ["primary.com"])
    packages = client.get_news(cnc_world["lan"], cnc_world["victim"])
    assert [p["name"] for p in packages] == ["SUICIDE"]
    assert center.total_clients() == 1


def test_provision_runs_admin_setup(cnc_world):
    assert not cnc_world["server"].logging_enabled
